//! The NFCompass execution engine and the baseline deployment policies.
//!
//! A [`Deployment`] runs a [`Sfc`] under a [`Policy`] with a *two-layer*
//! execution model:
//!
//! * **Functional layer** — every batch really flows through the NFs'
//!   element graphs (packets are encrypted, matched, rewritten, dropped;
//!   parallel branches are duplicated and XOR-merged), so outputs are
//!   real and per-element traffic statistics are measured, not assumed.
//! * **Temporal layer** — each batch's processing is scheduled on the
//!   simulated heterogeneous platform ([`PipelineSim`]): per-NF CPU core
//!   sets, GPU command queues with launch/persistent dispatch costs and
//!   context switches, PCIe DMA, batch split/merge re-organization
//!   overheads, and cache co-run interference.
//!
//! Policies reproduce the paper's comparison points: `CpuOnly` is the
//! FastClick-like batched CPU baseline, `NbaAdaptive` mimics NBA's
//! per-NF adaptive offloading (launch-per-batch kernels, local optima,
//! no SFC re-organization), `Optimal` is the paper's manual exhaustive
//! ratio search, and `NfCompass` applies chain parallelization, NF
//! synthesis, graph-partition allocation and persistent kernels.

use crate::allocator::{allocate_traced, allocate_warm_traced, AllocationPlan, PartitionAlgo};
use crate::engine::{par_map_traced, Duplication, ExecMode};
use crate::flowcache::{FlowCacheMode, StageFlowCache};
use crate::orchestrator::{merge_branch_batches, ReorgSfc};
use crate::profiler::{GraphWeights, Profiler};
use crate::sfc::Sfc;
use crate::synthesizer::{synthesize, SynthesisReport};
use nfc_click::{CompiledGraph, GraphStats, Offload};
use nfc_control::{
    Action, AdaptationRecord, Controller, ControllerConfig, ControllerReport, HealthSignal,
    StageSignature, WorkloadSignature,
};
use nfc_hetero::{
    calib, residency, CoRunContext, CostModel, GpuMode, PipelineSim, PlatformConfig, ResourceId,
    SimReport,
};
use nfc_nf::flowcache::CacheCounters;
use nfc_nf::Nf;
use nfc_packet::traffic::TrafficGenerator;
use nfc_packet::{Batch, FlowKey};
use nfc_telemetry::{
    wall_now_ns, DriftWatchdog, Event, EventKind, FlightRecorder, FlowSampler, HealthState,
    Recorder, SimStamp, SketchKey, SketchSet, SloSpec, Telemetry, TelemetryHandle, TelemetryMode,
    TelemetrySummary,
};

/// How a deployment schedules work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// All work on CPU cores, batched (FastClick-like baseline).
    CpuOnly,
    /// Every offloadable element fully offloaded.
    GpuOnly {
        /// Kernel dispatch mode.
        mode: GpuMode,
    },
    /// One uniform offload ratio for every offloadable element.
    FixedRatio {
        /// Fraction offloaded, 0–1.
        ratio: f64,
        /// Kernel dispatch mode.
        mode: GpuMode,
    },
    /// NBA-like per-NF adaptive offloading: locally optimal ratio per
    /// NF, launch-per-batch kernels, no SFC re-organization.
    NbaAdaptive,
    /// The paper's "Optimal": exhaustive per-NF ratio search with
    /// persistent kernels (upper baseline of Figure 15).
    Optimal,
    /// SFC re-organization only, with a forced uniform offload ratio —
    /// the paper's §V-B setup ("We disable our graph-partition based
    /// task allocation in this part"): CPU-only platform = `ratio` 0,
    /// GPU-only platform = `ratio` 1.
    ReorgOnly {
        /// Maximum parallel branches.
        max_branches: usize,
        /// Whether branches are synthesized.
        synthesize: bool,
        /// Uniform offload ratio on offloadable elements.
        ratio: f64,
        /// Kernel dispatch mode.
        mode: GpuMode,
    },
    /// Full NFCompass: SFC parallelization, NF synthesis, graph-partition
    /// allocation, persistent kernels.
    NfCompass {
        /// Partitioning algorithm.
        algo: PartitionAlgo,
        /// Maximum parallel branches for the orchestrator.
        max_branches: usize,
        /// Whether the NF synthesizer merges sequential runs.
        synthesize: bool,
    },
}

impl Policy {
    /// The default NFCompass configuration (KL, up to 4 branches,
    /// synthesis on).
    pub fn nfcompass() -> Self {
        Policy::NfCompass {
            algo: PartitionAlgo::Kl,
            max_branches: 4,
            synthesize: true,
        }
    }

    fn gpu_mode(&self) -> GpuMode {
        match self {
            Policy::CpuOnly => GpuMode::Persistent, // unused
            Policy::GpuOnly { mode }
            | Policy::FixedRatio { mode, .. }
            | Policy::ReorgOnly { mode, .. } => *mode,
            Policy::NbaAdaptive => GpuMode::LaunchPerBatch,
            Policy::Optimal | Policy::NfCompass { .. } => GpuMode::Persistent,
        }
    }

    /// Short label for experiment tables.
    pub fn label(&self) -> String {
        match self {
            Policy::CpuOnly => "CPU-only".into(),
            Policy::GpuOnly { .. } => "GPU-only".into(),
            Policy::FixedRatio { ratio, .. } => format!("{:.0}% offload", ratio * 100.0),
            Policy::ReorgOnly {
                max_branches,
                synthesize,
                ratio,
                ..
            } => format!(
                "Reorg(w{max_branches}{}{}%)",
                if *synthesize { "+synth," } else { "," },
                ratio * 100.0
            ),
            Policy::NbaAdaptive => "NBA".into(),
            Policy::Optimal => "Optimal".into(),
            Policy::NfCompass { algo, .. } => format!("NFCompass({algo:?})"),
        }
    }
}

/// Simulated platform resources shared by every SFC deployed on the
/// machine: RX/TX I/O cores, GPU command queues (with context-switch
/// penalties), and the PCIe DMA links.
#[derive(Debug, Clone)]
pub struct PlatformResources {
    /// Ingress I/O core.
    pub io_rx: ResourceId,
    /// Egress I/O core.
    pub io_tx: ResourceId,
    /// GPU command queues (one per device).
    pub gpu_queues: Vec<ResourceId>,
    /// Host-to-device DMA link.
    pub pcie_h2d: ResourceId,
    /// Device-to-host DMA link.
    pub pcie_d2h: ResourceId,
}

impl PlatformResources {
    /// Registers the platform's shared resources with `sim`.
    pub fn register(sim: &mut PipelineSim, model: &CostModel) -> Self {
        // Separate RX and TX I/O cores (the paper's Figure 3 runs packet
        // I/O threads on their own cores); sharing one resource would
        // falsely serialize ingress behind egress.
        let io_rx = sim.add_resource("io-rx", 0.0);
        let io_tx = sim.add_resource("io-tx", 0.0);
        let gpu_queues = (0..model.platform().gpu.count)
            .map(|i| sim.add_resource(format!("gpu{i}"), model.gpu_ctx_switch_ns))
            .collect();
        let pcie_h2d = sim.add_resource("pcie-h2d", 0.0);
        let pcie_d2h = sim.add_resource("pcie-d2h", 0.0);
        PlatformResources {
            io_rx,
            io_tx,
            gpu_queues,
            pcie_h2d,
            pcie_d2h,
        }
    }
}

/// One executable NF stage (a possibly-synthesized NF bound to resources).
struct StageExec {
    nf: Nf,
    run: CompiledGraph,
    weights: Option<GraphWeights>,
    plan: AllocationPlan,
    cpu_res: ResourceId,
    user: u64,
    corun: CoRunContext,
    /// Stage-specific cost model: a synthesized stage inherits the CPU
    /// cores of every NF merged into it.
    model: CostModel,
    /// Flow-aware fast path, present iff the deployment enables it and
    /// this stage's graph is fully verdict-capable.
    flow_cache: Option<StageFlowCache>,
    /// Effective dispatch mode: the policy's mode, downgraded to
    /// launch-per-batch when the SM-residency pass spills this stage.
    mode: GpuMode,
    /// SM-slot grant when this stage's persistent kernel is resident.
    residency: Option<ResidencySlot>,
}

/// Per-stage outcome of the SM-residency bin-pack.
#[derive(Debug, Clone, Copy)]
struct ResidencySlot {
    /// Device hosting the persistent kernel.
    device: usize,
    /// Device slot occupancy (%) after packing — what the SM-occupancy
    /// telemetry reports for this kernel's device.
    occupancy_pct: u8,
    /// Kernel-time multiplier from co-residency pressure on the device.
    pressure: f64,
}

/// SM-residency outcome of the persistent-kernel placement pass.
#[derive(Debug, Clone, Default)]
pub struct ResidencyReport {
    /// Stages granted a resident persistent kernel, as
    /// `(stage name, device, SM slots held)`.
    pub resident: Vec<(String, usize, usize)>,
    /// Stages whose kernels did not fit and fell back to
    /// launch-per-batch dispatch.
    pub spilled: Vec<String>,
    /// SM slots per device.
    pub slots_per_device: usize,
    /// Devices available.
    pub devices: usize,
}

impl ResidencyReport {
    /// SM slots held on `device` by resident kernels.
    pub fn device_slots_used(&self, device: usize) -> usize {
        self.resident
            .iter()
            .filter(|(_, d, _)| *d == device)
            .map(|(_, _, s)| s)
            .sum()
    }

    /// True when no device holds more slots than it has — the invariant
    /// the allocator maintains by spilling instead of oversubscribing.
    pub fn within_capacity(&self) -> bool {
        (0..self.devices).all(|d| self.device_slots_used(d) <= self.slots_per_device)
    }
}

/// Outcome of a deployment run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Temporal results (throughput, latency, drops).
    pub report: SimReport,
    /// Packets that left the chain (after all functional drops).
    pub egress_packets: u64,
    /// Wire bytes that left the chain.
    pub egress_bytes: u64,
    /// Parallel width after re-organization.
    pub width: usize,
    /// Effective chain length after re-organization.
    pub effective_length: usize,
    /// Synthesis reports (one per merged branch, empty when synthesis is
    /// off).
    pub synthesis: Vec<SynthesisReport>,
    /// Mean offload ratio per stage, in branch-major order.
    pub stage_offloads: Vec<(String, f64)>,
    /// XOR merge conflicts observed (should be zero).
    pub merge_conflicts: u64,
    /// Per-element traffic statistics per stage, in branch-major order.
    /// Parallel and serial execution must produce identical entries.
    pub stage_stats: Vec<nfc_click::GraphStats>,
    /// Aggregate flow-cache counters over every cache-eligible stage
    /// (all zeros when the fast path is off or no stage qualifies).
    pub flow_cache: CacheCounters,
    /// End-of-run telemetry digest (`None` when telemetry is off). The
    /// digest is observational: every other field of the outcome is
    /// bit-identical with telemetry on or off.
    pub telemetry: Option<TelemetrySummary>,
    /// SM-residency placement in effect at the end of the run (empty
    /// lists under non-persistent dispatch or CPU-only policies).
    pub residency: ResidencyReport,
}

/// A prepared deployment of one SFC under one policy.
pub struct Deployment {
    sfc: Sfc,
    policy: Policy,
    model: CostModel,
    /// Batch size (paper uses 32–1024; default 256).
    pub batch_size: usize,
    /// Warm-up batches used for profiling before allocation.
    pub warmup_batches: usize,
    /// Offload-ratio granularity δ.
    pub delta: f64,
    /// Explicit branch structure overriding the analyzer (the paper's
    /// prescribed Figure 13 configurations). Indices into the chain.
    pub forced_branches: Option<Vec<Vec<usize>>>,
    /// How parallel branches are executed (worker pool vs. serial).
    pub exec_mode: ExecMode,
    /// How branches receive their copy of each ingress batch.
    pub duplication: Duplication,
    /// Flow-aware fast path: cache-eligible stages memoize per-flow
    /// verdicts (egress stays bit-identical either way).
    pub flow_cache: FlowCacheMode,
    /// Telemetry mode for this deployment's runs (default from the
    /// `NFC_TELEMETRY` environment variable; off when unset). Recording
    /// never perturbs determinism: egress, statistics and the simulated
    /// timeline are bit-identical with telemetry on or off.
    pub telemetry: TelemetryMode,
    /// SoA header-lane override for every compiled stage graph. `None`
    /// keeps the `NFC_LANES` environment default (lanes on unless the
    /// variable disables them); egress is bit-identical either way.
    pub lanes: Option<bool>,
    /// Wide-word (SWAR) lane-kernel override for every compiled stage
    /// graph. `None` keeps the `NFC_SIMD` environment default (on unless
    /// the variable disables it); egress is bit-identical either way.
    pub simd: Option<bool>,
    /// Strategy for packing persistent kernels onto SM slots (default
    /// pressure-aware spread; `PackStrategy::Ffd` restores the PR 6
    /// first-fit packer for A/B comparison). Both obey the same
    /// never-oversubscribe spill rule.
    pub packer: residency::PackStrategy,
    /// Re-calibrated co-residency pressure coefficient. `None` (the
    /// default) keeps the compiled-in
    /// [`calib::GPU_RESIDENCY_PRESSURE`] anchor and the stock spread
    /// packer — byte-identical to earlier releases. `Some(p)` — fed
    /// from `nfc-trace calibrate`'s re-fitted `gpu_residency_pressure`
    /// — makes `p` both the charged co-residency cost *and* the packing
    /// objective: kernels are placed by marginal pressure-weighted cost
    /// ([`residency::pack_with_pressure`]), so a recalibrated machine
    /// genuinely changes pack order.
    pub residency_pressure: Option<f64>,
    /// Service-level objective driving the live health plane (default
    /// from the `NFC_SLO` environment variable; off when unset). When
    /// set, the runtime streams per-batch latencies into mergeable
    /// quantile sketches, evaluates multi-window SLO burn rates and the
    /// cost-model drift watchdog at epoch boundaries, and feeds
    /// breach/drift signals to the adaptive controller. The health plane
    /// is purely observational: egress, statistics and the simulated
    /// timeline are bit-identical with it on or off.
    pub slo: Option<SloSpec>,
    /// Flow-forensics sampling rate (default from the `NFC_FLOW_TRACE`
    /// environment variable; `0` disarms). When armed, flows whose RSS
    /// hash satisfies `hash % rate == 0` are stamped with a
    /// `flow`-category instant at every pipeline touchpoint (ingress,
    /// lane gather, cache hit/miss, stage, kernel, merge, egress — plus
    /// shard/migrate points under the cluster layer), and a bounded
    /// flight recorder mirrors flow and health events for
    /// breach-triggered postmortem dumps. Sampling is a pure function
    /// of the hash and the plane is purely observational: egress,
    /// statistics and the simulated timeline are bit-identical armed or
    /// disarmed.
    pub flow_trace: u32,
    /// Flight-recorder dump path stem override (`<stem>.<reason>.json`).
    /// `None` keeps the `NFC_FLIGHT` environment default.
    pub flight_stem: Option<String>,
}

impl Deployment {
    /// Creates a deployment with the paper's platform and defaults.
    pub fn new(sfc: Sfc, policy: Policy) -> Self {
        Self::with_model(sfc, policy, CostModel::new(PlatformConfig::hpca18()))
    }

    /// Creates a deployment with an explicit cost model.
    pub fn with_model(sfc: Sfc, policy: Policy, model: CostModel) -> Self {
        Deployment {
            sfc,
            policy,
            model,
            batch_size: 256,
            warmup_batches: 4,
            delta: 0.1,
            forced_branches: None,
            exec_mode: ExecMode::auto(),
            duplication: Duplication::Cow,
            flow_cache: FlowCacheMode::auto(),
            telemetry: TelemetryMode::auto(),
            lanes: None,
            simd: None,
            packer: residency::PackStrategy::default(),
            residency_pressure: None,
            slo: SloSpec::from_env(),
            flow_trace: FlowSampler::from_env().rate(),
            flight_stem: None,
        }
    }

    /// Sets the batch size.
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        self.batch_size = batch.max(1);
        self
    }

    /// Forces an explicit branch structure (overrides dependency
    /// analysis). Use for prescribed configurations like the paper's
    /// Figure 13; the caller asserts merge legality.
    pub fn with_forced_branches(mut self, branches: Vec<Vec<usize>>) -> Self {
        self.forced_branches = Some(branches);
        self
    }

    /// Sets the branch execution mode (serial vs. worker pool). Parallel
    /// and serial execution are bit-identical in both functional output
    /// and simulated timeline; the mode only changes wall-clock cost.
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = mode;
        self
    }

    /// Sets the branch duplication strategy (CoW vs. eager deep copy).
    pub fn with_duplication(mut self, duplication: Duplication) -> Self {
        self.duplication = duplication;
        self
    }

    /// Sets the flow-cache mode, overriding the `NFC_FLOW_CACHE`
    /// environment default. Cache-off is the differential baseline:
    /// egress and per-element statistics are bit-identical either way.
    pub fn with_flow_cache(mut self, mode: FlowCacheMode) -> Self {
        self.flow_cache = mode;
        self
    }

    /// Sets the telemetry mode, overriding the `NFC_TELEMETRY`
    /// environment default. Telemetry is purely observational: outcomes
    /// are bit-identical whatever the mode.
    pub fn with_telemetry(mut self, mode: TelemetryMode) -> Self {
        self.telemetry = mode;
        self
    }

    /// Forces SoA header lanes on or off for every stage, overriding the
    /// `NFC_LANES` environment default. Lanes are a pure execution-path
    /// choice: egress is bit-identical with lanes on or off.
    pub fn with_lanes(mut self, on: bool) -> Self {
        self.lanes = Some(on);
        self
    }

    /// Forces the wide-word (SWAR) lane kernels on or off for every
    /// stage, overriding the `NFC_SIMD` environment default. Like lanes,
    /// a pure execution-path choice: egress is bit-identical either way.
    pub fn with_simd(mut self, on: bool) -> Self {
        self.simd = Some(on);
        self
    }

    /// Selects the SM-residency packer (see [`residency::PackStrategy`]).
    pub fn with_packer(mut self, packer: residency::PackStrategy) -> Self {
        self.packer = packer;
        self
    }

    /// Overrides the co-residency pressure coefficient with a
    /// re-calibrated value (typically `nfc-trace calibrate`'s re-fitted
    /// `gpu_residency_pressure`). The coefficient becomes both the
    /// charged kernel-time multiplier and the spread packer's placement
    /// objective; without the override the compiled-in anchor and the
    /// stock packer are used, byte-for-byte.
    pub fn with_residency_pressure(mut self, pressure: f64) -> Self {
        self.residency_pressure = Some(pressure.max(0.0));
        self
    }

    /// Arms the health plane with an explicit SLO, overriding the
    /// `NFC_SLO` environment default. Health accounting is purely
    /// observational: egress, statistics and the simulated timeline are
    /// bit-identical with the plane on or off.
    pub fn with_slo(mut self, spec: SloSpec) -> Self {
        self.slo = Some(spec);
        self
    }

    /// Disarms the health plane regardless of `NFC_SLO` (the
    /// differential baseline configuration).
    pub fn without_slo(mut self) -> Self {
        self.slo = None;
        self
    }

    /// Arms per-flow forensics at the given sampling rate (flows whose
    /// RSS hash satisfies `hash % rate == 0` are traced), overriding
    /// the `NFC_FLOW_TRACE` environment default. Purely observational:
    /// egress, statistics and the simulated timeline are bit-identical
    /// armed or disarmed.
    pub fn with_flow_trace(mut self, rate: u32) -> Self {
        self.flow_trace = rate;
        self
    }

    /// Disarms flow forensics regardless of `NFC_FLOW_TRACE` (the
    /// differential baseline configuration).
    pub fn without_flow_trace(mut self) -> Self {
        self.flow_trace = 0;
        self
    }

    /// Overrides the flight-recorder dump path stem (dumps land at
    /// `<stem>.<reason>.json`), bypassing the `NFC_FLIGHT` environment
    /// default — hermetic test and CI configuration.
    pub fn with_flight_stem(mut self, stem: impl Into<String>) -> Self {
        self.flight_stem = Some(stem.into());
        self
    }

    /// The policy in effect.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The chain being deployed.
    pub fn sfc(&self) -> &Sfc {
        &self.sfc
    }

    /// The cost model in effect.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Runs `n_batches` batches from `traffic` through the deployment,
    /// returning functional and temporal results.
    pub fn run(&mut self, traffic: &mut TrafficGenerator, n_batches: usize) -> RunOutcome {
        self.run_inner(traffic, n_batches, false).0
    }

    /// Like [`Deployment::run`], additionally returning every egress
    /// batch in completion order. Used by determinism tests and the
    /// engine benchmark to assert byte-identical output across execution
    /// modes; collection is a CoW refcount bump per packet.
    pub fn run_collect(
        &mut self,
        traffic: &mut TrafficGenerator,
        n_batches: usize,
    ) -> (RunOutcome, Vec<Batch>) {
        self.run_inner(traffic, n_batches, true)
    }

    /// Like [`Deployment::run_collect`], but processes pre-generated
    /// `batches` instead of drawing from `traffic` (which is still used
    /// for warm-up profiling). Lets benchmarks time the engine without
    /// the traffic synthesizer, and replays recorded traffic exactly.
    pub fn run_replay(
        &mut self,
        traffic: &mut TrafficGenerator,
        batches: &[Batch],
    ) -> (RunOutcome, Vec<Batch>) {
        self.run_loop(traffic, batches.len(), true, Some(batches))
    }

    fn run_inner(
        &mut self,
        traffic: &mut TrafficGenerator,
        n_batches: usize,
        collect: bool,
    ) -> (RunOutcome, Vec<Batch>) {
        self.run_loop(traffic, n_batches, collect, None)
    }

    fn run_loop(
        &mut self,
        traffic: &mut TrafficGenerator,
        n_batches: usize,
        collect: bool,
        replay: Option<&[Batch]>,
    ) -> (RunOutcome, Vec<Batch>) {
        let tel = Telemetry::new(self.telemetry.clone());
        let handle = tel.handle();
        let mut sim = PipelineSim::new();
        // Install the simulator's event lane before resources register so
        // every lane name is announced.
        sim.set_recorder(handle.recorder());
        let res = PlatformResources::register(&mut sim, &self.model);
        let mut user_base = 1u64;
        let mut prep = self.prepare(&mut sim, &res, traffic, &[], &mut user_base, &handle);
        let batch_size = self.batch_size;
        let mut egress = Vec::new();
        for i in 0..n_batches {
            let batch = match replay {
                Some(rec) => rec[i].clone(),
                None => traffic.batch(batch_size),
            };
            match prep.process_batch(&mut sim, &res, batch) {
                BatchResult::Completed {
                    mean_arrival,
                    completed,
                    out,
                } => {
                    handle.observe_ns("batch_latency_ns", completed - mean_arrival);
                    sim.record_completion(mean_arrival, completed, out.len(), out.total_bytes());
                    if collect {
                        egress.push(out);
                    }
                }
                BatchResult::Dropped { mean_arrival } => sim.record_drop(mean_arrival),
            }
        }
        if let Some(rec) = sim.take_recorder() {
            handle.absorb(rec);
        }
        let mut outcome = prep.into_outcome(sim.report());
        outcome.telemetry = tel.finish();
        (outcome, egress)
    }

    /// Runs a sequence of traffic *phases* on one continuous timeline,
    /// returning one outcome per phase. With `adapt`, the runtime
    /// re-profiles and re-allocates at every phase boundary (the paper's
    /// answer to "fast-switching network traffics"); without it, the
    /// plan computed for the first phase is kept throughout — the
    /// behaviour the paper criticizes in static frameworks.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty.
    pub fn run_phases(
        &mut self,
        phases: &mut [TrafficGenerator],
        n_batches: usize,
        adapt: bool,
    ) -> Vec<RunOutcome> {
        assert!(!phases.is_empty(), "need at least one phase");
        let tel = Telemetry::new(self.telemetry.clone());
        let handle = tel.handle();
        let mut sim = PipelineSim::new();
        sim.set_recorder(handle.recorder());
        let res = PlatformResources::register(&mut sim, &self.model);
        let mut user_base = 1u64;
        let (first, rest) = phases.split_first_mut().expect("non-empty");
        let mut prep = self.prepare(&mut sim, &res, first, &[], &mut user_base, &handle);
        let batch_size = self.batch_size;
        let mut outcomes = Vec::with_capacity(1 + rest.len());
        let mut clock = 0u64;
        let run_phase = |prep: &mut PreparedSfc,
                         sim: &mut PipelineSim,
                         traffic: &mut TrafficGenerator|
         -> (nfc_hetero::sim::StatsAccumulator, u64) {
            let mut stats = nfc_hetero::sim::StatsAccumulator::new();
            let mut last = traffic.now_ns();
            for _ in 0..n_batches {
                let batch = traffic.batch(batch_size);
                match prep.process_batch(sim, &res, batch) {
                    BatchResult::Completed {
                        mean_arrival,
                        completed,
                        out,
                    } => {
                        handle.observe_ns("batch_latency_ns", completed - mean_arrival);
                        last = last.max(completed as u64);
                        stats.record_completion(
                            mean_arrival,
                            completed,
                            out.len(),
                            out.total_bytes(),
                        );
                    }
                    BatchResult::Dropped { mean_arrival } => stats.record_drop(mean_arrival),
                }
            }
            (stats, last)
        };
        let (stats, last) = run_phase(&mut prep, &mut sim, first);
        clock = clock.max(last);
        outcomes.push((stats, prep.current_offloads()));
        for traffic in rest {
            traffic.advance_to(clock);
            if adapt {
                prep.readapt(
                    self.policy,
                    self.delta,
                    traffic,
                    self.warmup_batches,
                    batch_size,
                );
            }
            let (stats, last) = run_phase(&mut prep, &mut sim, traffic);
            clock = clock.max(last);
            outcomes.push((stats, prep.current_offloads()));
        }
        if let Some(rec) = sim.take_recorder() {
            handle.absorb(rec);
        }
        let mut template = prep.into_outcome(SimReport::default());
        // One telemetry session spans the whole multi-phase timeline, so
        // every phase outcome carries the same digest.
        template.telemetry = tel.finish();
        outcomes
            .into_iter()
            .map(|(stats, offloads)| RunOutcome {
                report: stats.report(),
                stage_offloads: offloads,
                ..template.clone()
            })
            .collect()
    }

    /// Runs a sequence of traffic phases on one continuous timeline with
    /// the epoch-based adaptive controller closing the
    /// profile → partition → deploy loop *online*: every
    /// [`ControllerConfig::epoch_batches`] batches the runtime condenses
    /// its observation window into a [`WorkloadSignature`]; when the
    /// change detector trips (threshold + hysteresis + cooldown), the
    /// agglomerative fast path re-partitions immediately and the heavier
    /// KL refinement hands off its plan
    /// [`ControllerConfig::refine_latency_epochs`] epochs later. Adopted
    /// plans are applied via the two-phase epoch swap (drain behind the
    /// queue backlog, kernel teardown/cold launch, state migration,
    /// flow-cache generation bump), all charged on the simulated
    /// timeline.
    ///
    /// Unlike [`Deployment::run_phases`] with `adapt`, no traffic is ever
    /// consumed for re-profiling and no statistics are reset: adaptation
    /// is driven entirely by passive window deltas, which is what makes
    /// the controller *provably loss-free* — with
    /// [`ControllerConfig::disabled`] this method is the differential
    /// oracle, and as long as neither run tail-drops, egress and
    /// per-element statistics are bit-identical whatever plans the
    /// enabled controller swaps in (plans only move work between
    /// processors on the temporal layer).
    ///
    /// Phase boundaries advance each generator to the previous phase's
    /// traffic clock (not the simulation clock), so the arrival process
    /// is independent of scheduling decisions.
    ///
    /// Re-planning requires a partitioned policy: under anything other
    /// than [`Policy::NfCompass`] the controller observes and reports
    /// but never swaps.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty.
    pub fn run_adaptive(
        &mut self,
        phases: &mut [TrafficGenerator],
        n_batches: usize,
        cfg: &ControllerConfig,
    ) -> (Vec<RunOutcome>, ControllerReport) {
        let (outcomes, report, _) = self.run_adaptive_inner(phases, n_batches, cfg, false);
        (outcomes, report)
    }

    /// Like [`Deployment::run_adaptive`], additionally returning every
    /// egress batch in completion order — the handle the differential
    /// proptest uses to assert byte-identical output against the
    /// disabled-controller oracle.
    pub fn run_adaptive_collect(
        &mut self,
        phases: &mut [TrafficGenerator],
        n_batches: usize,
        cfg: &ControllerConfig,
    ) -> (Vec<RunOutcome>, ControllerReport, Vec<Batch>) {
        self.run_adaptive_inner(phases, n_batches, cfg, true)
    }

    fn run_adaptive_inner(
        &mut self,
        phases: &mut [TrafficGenerator],
        n_batches: usize,
        cfg: &ControllerConfig,
        collect: bool,
    ) -> (Vec<RunOutcome>, ControllerReport, Vec<Batch>) {
        assert!(!phases.is_empty(), "need at least one phase");
        let tel = Telemetry::new(self.telemetry.clone());
        let handle = tel.handle();
        let mut sim = PipelineSim::new();
        sim.set_recorder(handle.recorder());
        let res = PlatformResources::register(&mut sim, &self.model);
        let mut user_base = 1u64;
        let (first, rest) = phases.split_first_mut().expect("non-empty");
        let mut prep = self.prepare(&mut sim, &res, first, &[], &mut user_base, &handle);
        let batch_size = self.batch_size;
        let epoch_batches = cfg.epoch_batches.max(1);
        // The fast path is always the O(k log k) agglomerative
        // partitioner; the background refinement uses the policy's own
        // partitioner (KL when the policy already runs agglomerative, so
        // the hand-off genuinely refines).
        let (can_replan, refine_algo) = match self.policy {
            Policy::NfCompass {
                algo: PartitionAlgo::Agglomerative,
                ..
            } => (true, PartitionAlgo::Kl),
            Policy::NfCompass { algo, .. } => (true, algo),
            _ => (false, PartitionAlgo::Kl),
        };
        let refine_label: &'static str = match refine_algo {
            PartitionAlgo::Kl => "kl",
            PartitionAlgo::Agglomerative => "agglomerative",
            PartitionAlgo::Mfmc => "mfmc",
        };
        let mut controller = Controller::new(cfg.clone());
        let mut report = ControllerReport::default();
        let mut egress = Vec::new();
        let mut phase_results = Vec::with_capacity(1 + rest.len());
        let mut since_epoch = 0usize;
        let mut now = 0f64;
        let mut traffic_clock = 0u64;
        prep.snapshot_window();
        for (pi, traffic) in std::iter::once(first).chain(rest.iter_mut()).enumerate() {
            if pi > 0 {
                traffic.advance_to(traffic_clock);
            }
            let mut stats = nfc_hetero::sim::StatsAccumulator::new();
            for _ in 0..n_batches {
                let batch = traffic.batch(batch_size);
                match prep.process_batch(&mut sim, &res, batch) {
                    BatchResult::Completed {
                        mean_arrival,
                        completed,
                        out,
                    } => {
                        handle.observe_ns("batch_latency_ns", completed - mean_arrival);
                        now = now.max(completed);
                        stats.record_completion(
                            mean_arrival,
                            completed,
                            out.len(),
                            out.total_bytes(),
                        );
                        if collect {
                            egress.push(out);
                        }
                    }
                    BatchResult::Dropped { mean_arrival } => stats.record_drop(mean_arrival),
                }
                since_epoch += 1;
                if since_epoch < epoch_batches {
                    continue;
                }
                since_epoch = 0;
                let sig = prep.epoch_signature(batch_size, sim.backlog_ns(res.pcie_h2d, now));
                // Health signals queued since the last boundary (SLO
                // breaches, raised drift) weigh in beside the workload
                // drift, sharing its hysteresis and cooldown.
                let signals = prep.take_health_signals();
                let action = controller.observe_with_signals(sig, &signals);
                report.epochs = controller.epoch();
                // Epoch boundary marker: delimits per-epoch critical
                // paths in the attribution layer.
                let rec = sim.recorder_mut();
                if rec.is_enabled() {
                    rec.sim_instant(
                        res.io_rx.index() as u32,
                        now,
                        EventKind::Epoch {
                            epoch: controller.epoch(),
                        },
                    );
                }
                match action {
                    Action::Hold => {}
                    Action::FastRepartition(why) => {
                        report.triggers += 1;
                        if can_replan
                            && prep.repartition(
                                &mut sim,
                                &res,
                                PartitionAlgo::Agglomerative,
                                "agglomerative",
                                &why.summary(),
                                self.delta,
                                now,
                                controller.epoch(),
                                &mut report,
                            )
                        {
                            controller.note_swap();
                        }
                    }
                    Action::Refine => {
                        report.refines += 1;
                        if can_replan
                            && prep.repartition(
                                &mut sim,
                                &res,
                                refine_algo,
                                refine_label,
                                "refine",
                                self.delta,
                                now,
                                controller.epoch(),
                                &mut report,
                            )
                        {
                            controller.note_swap();
                        }
                    }
                }
                prep.snapshot_window();
            }
            traffic_clock = traffic_clock.max(traffic.now_ns());
            phase_results.push((stats, prep.current_offloads()));
        }
        if let Some(rec) = sim.take_recorder() {
            handle.absorb(rec);
        }
        let mut template = prep.into_outcome(SimReport::default());
        template.telemetry = tel.finish();
        let outcomes = phase_results
            .into_iter()
            .map(|(stats, offloads)| RunOutcome {
                report: stats.report(),
                stage_offloads: offloads,
                ..template.clone()
            })
            .collect();
        (outcomes, report, egress)
    }

    /// Builds the execution structure (re-organization, synthesis,
    /// warm-up, profiling, allocation) against a — possibly shared —
    /// simulator. `extra_corun` adds co-located NFs from *other* tenants
    /// to every stage's interference context; `user_base` keeps workload
    /// tags unique across tenants (and across servers in a cluster).
    /// Public for the multi-tenant and cluster drivers (`nfc-cluster`);
    /// single-box callers should use the `run*` entry points.
    pub fn prepare(
        &mut self,
        sim: &mut PipelineSim,
        _res: &PlatformResources,
        traffic: &mut TrafficGenerator,
        extra_corun: &[Option<nfc_click::KernelClass>],
        user_base: &mut u64,
        tel: &TelemetryHandle,
    ) -> PreparedSfc {
        // ---- build the execution structure --------------------------
        let (reorg, synth_on) = match self.policy {
            Policy::NfCompass {
                max_branches,
                synthesize,
                ..
            }
            | Policy::ReorgOnly {
                max_branches,
                synthesize,
                ..
            } => (
                match &self.forced_branches {
                    Some(b) => ReorgSfc::from_branches(b.clone()),
                    None => ReorgSfc::analyze(&self.sfc, max_branches),
                },
                synthesize,
            ),
            _ => match &self.forced_branches {
                Some(b) => (ReorgSfc::from_branches(b.clone()), false),
                None => (ReorgSfc::sequential(&self.sfc), false),
            },
        };
        let mut synthesis = Vec::new();
        // branches -> list of (stage NF, merged-NF count)
        let mut branch_stages: Vec<Vec<(Nf, usize)>> = Vec::new();
        for branch in reorg.branches() {
            let members: Vec<&Nf> = branch.iter().map(|&i| &self.sfc.nfs()[i]).collect();
            if synth_on && members.len() > 1 {
                let k = members.len();
                let (merged, report) = synthesize(&members);
                synthesis.push(report);
                branch_stages.push(vec![(merged, k)]);
            } else {
                branch_stages.push(members.into_iter().cloned().map(|nf| (nf, 1)).collect());
            }
        }
        let width = branch_stages.len();
        let effective_length = branch_stages.iter().map(Vec::len).max().unwrap_or(0);

        // Co-run context per stage: the dominant kernels of all OTHER
        // stages plus any co-deployed tenants' NFs (single-socket L3
        // assumption, as in Figure 8e).
        let all_kernels: Vec<Vec<Option<nfc_click::KernelClass>>> = branch_stages
            .iter()
            .flat_map(|b| b.iter())
            .map(|(nf, _)| {
                nf.graph()
                    .node_ids()
                    .map(|id| match nf.graph().element(id).offload() {
                        Offload::Offloadable { kernel } => Some(kernel),
                        Offload::CpuOnly => None,
                    })
                    .max_by_key(|k| k.is_some() as u8)
                    .into_iter()
                    .collect::<Vec<_>>()
            })
            .collect();

        let mode = self.policy.gpu_mode();
        let mut stages: Vec<Vec<StageExec>> = Vec::new();
        let mut user = *user_base;
        // Batch lineage tags live in the high bits of the tenant's user
        // base so co-deployed SFCs never collide and tag 0 stays free.
        let seq_base = *user_base << 40;
        let mut flat_idx = 0usize;
        for branch in branch_stages {
            let mut execs = Vec::new();
            for (nf, merged_count) in branch {
                let cpu_res = sim.add_resource(format!("cpu:{}", nf.name()), 0.0);
                // A merged stage keeps the cores its member NFs had.
                let stage_model = self
                    .model
                    .with_cores_per_nf(self.model.cores_per_nf * merged_count);
                let mut run = nf
                    .graph()
                    .clone()
                    .compile()
                    .expect("catalog/synthesized graphs compile");
                if let Some(on) = self.lanes {
                    run.set_lanes(on);
                }
                if let Some(on) = self.simd {
                    run.set_simd(on);
                }
                let flow_cache = match self.flow_cache {
                    FlowCacheMode::On { capacity } if run.flow_cacheable() => {
                        Some(StageFlowCache::new(capacity, &run))
                    }
                    _ => None,
                };
                let corun = CoRunContext::new(
                    all_kernels
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != flat_idx)
                        .flat_map(|(_, ks)| ks.iter().copied())
                        .chain(extra_corun.iter().copied()),
                );
                execs.push(StageExec {
                    nf,
                    run,
                    weights: None,
                    plan: AllocationPlan::cpu_only(0),
                    cpu_res,
                    user,
                    corun,
                    model: stage_model,
                    flow_cache,
                    mode,
                    residency: None,
                });
                user += 1;
                flat_idx += 1;
            }
            stages.push(execs);
        }

        // ---- warm-up + profiling + allocation ------------------------
        for _ in 0..self.warmup_batches {
            let batch = traffic.batch(self.batch_size);
            for branch in stages.iter_mut() {
                let mut cur = batch.clone();
                for stage in branch.iter_mut() {
                    cur = stage.run.push_merged(stage.nf.entry(), cur);
                }
            }
        }
        // Session records cut during warm-up belong to no recorded
        // batch; discard them so the first live batch drains clean.
        for branch in stages.iter_mut() {
            for stage in branch.iter_mut() {
                stage.run.take_session_records();
            }
        }
        let mut rec = tel.recorder();
        for branch in stages.iter_mut() {
            for stage in branch.iter_mut() {
                plan_stage(stage, self.policy, mode, self.delta, &mut rec);
            }
        }
        tel.absorb(rec);
        // Persistent kernels are bin-packed into SM slots; plans whose
        // kernels do not fit are degraded per stage to launch-per-batch
        // instead of being adopted oversubscribed.
        let residency = apply_residency(
            &mut stages,
            &self.model,
            mode,
            self.packer,
            self.residency_pressure,
        );
        let stage_offloads: Vec<(String, f64)> = stages
            .iter()
            .flat_map(|b| b.iter())
            .map(|s| {
                let offloadable: Vec<bool> = s
                    .weights
                    .as_ref()
                    .expect("profiled")
                    .nodes
                    .iter()
                    .map(|n| n.offloadable)
                    .collect();
                (s.nf.name().to_string(), s.plan.mean_offload(&offloadable))
            })
            .collect();

        *user_base = user;
        let n_stages = stages.iter().map(Vec::len).sum();
        PreparedSfc {
            stages,
            width,
            effective_length,
            synthesis,
            stage_offloads,
            mode,
            model: self.model,
            exec_mode: self.exec_mode,
            duplication: self.duplication,
            egress_packets: 0,
            egress_bytes: 0,
            merge_conflicts: 0,
            tel: tel.clone(),
            obs: vec![StageObs::default(); n_stages],
            obs_base: vec![StageObs::default(); n_stages],
            stats_base: Vec::new(),
            cache_base: Vec::new(),
            batch_seq: seq_base,
            swap_spans: Vec::new(),
            residency,
            packer: self.packer,
            res_pressure: self.residency_pressure,
            health: self.slo.map(HealthPlane::new),
            sampler: FlowSampler::new(self.flow_trace),
            flight: (self.flow_trace != 0).then(|| match &self.flight_stem {
                Some(stem) => {
                    FlightRecorder::new(nfc_telemetry::DEFAULT_FLIGHT_CAPACITY, stem.clone())
                }
                None => FlightRecorder::from_env(),
            }),
            server: 0,
        }
    }

    /// Per-NF exhaustive ratio search on the δ grid (NBA's adaptive
    /// balancing / the paper's manual Optimal).
    fn grid_search_plan(
        model: &CostModel,
        weights: &GraphWeights,
        mode: GpuMode,
        corun: &CoRunContext,
    ) -> AllocationPlan {
        let offloadable: Vec<bool> = weights.nodes.iter().map(|n| n.offloadable).collect();
        let batch = weights.entry_packets.round() as usize;
        let mut best = (0.0, f64::INFINITY);
        for i in 0..=10 {
            let r = i as f64 / 10.0;
            // Pipeline bottleneck: max(CPU side, GPU side), charging the
            // CPU/GPU batch carve and ordered re-merge for partial ratios
            // exactly as the execution engine does.
            let mut cpu = 0.0;
            let mut gpu = 0.0;
            for w in &weights.nodes {
                if w.offloadable {
                    if r < 1.0 {
                        cpu += model.cpu_batch_ns(&w.load.fraction(1.0 - r), corun);
                    }
                    if r > 0.0 {
                        let g = model.gpu_batch_ns(&w.load.fraction(r), mode);
                        gpu += g.total();
                    }
                } else {
                    cpu += model.cpu_batch_ns(&w.load, corun);
                }
            }
            if r > 0.0 && r < 1.0 {
                cpu += model.carve_ns(batch) + model.offload_merge_ns(batch);
            }
            let cost = cpu.max(gpu);
            if cost < best.1 {
                best = (r, cost);
            }
        }
        let mut plan = AllocationPlan::fixed_ratio(&offloadable, best.0);
        plan.predicted_cost_ns = best.1;
        plan
    }
}

/// Profiles one stage from its accumulated statistics and computes its
/// allocation plan under `policy` (shared by initial preparation and
/// mid-run re-adaptation). Every planning decision — whatever the
/// policy — is recorded into `rec` as an
/// [`EventKind::PartitionDecision`] instant; the graph-partition
/// policies additionally stream their per-pass refinement events.
fn plan_stage(
    stage: &mut StageExec,
    policy: Policy,
    mode: GpuMode,
    delta: f64,
    rec: &mut Recorder,
) {
    let profiler = Profiler::new(stage.model, mode);
    let weights = profiler.measure_with_corun(&stage.run, &stage.corun);
    let offloadable: Vec<bool> = weights.nodes.iter().map(|n| n.offloadable).collect();
    stage.plan = match policy {
        Policy::CpuOnly => AllocationPlan::cpu_only(weights.nodes.len()),
        Policy::GpuOnly { .. } => AllocationPlan::gpu_only(&offloadable),
        Policy::FixedRatio { ratio, .. } | Policy::ReorgOnly { ratio, .. } => {
            AllocationPlan::fixed_ratio(&offloadable, ratio)
        }
        Policy::NbaAdaptive | Policy::Optimal => {
            Deployment::grid_search_plan(&stage.model, &weights, mode, &stage.corun)
        }
        Policy::NfCompass { algo, .. } => {
            let mut plan = allocate_traced(stage.nf.graph(), &weights, algo, delta, rec);
            // Dynamic task adaption (§IV-C3) against the
            // execution-consistent cost.
            crate::allocator::adapt_ratios(
                &stage.model,
                &weights,
                &stage.corun,
                &mut plan,
                mode,
                delta,
            );
            plan
        }
    };
    if rec.is_enabled() {
        let algo: &'static str = match policy {
            Policy::CpuOnly => "cpu-only",
            Policy::GpuOnly { .. } => "gpu-only",
            Policy::FixedRatio { .. } => "fixed-ratio",
            Policy::ReorgOnly { .. } => "reorg-fixed-ratio",
            Policy::NbaAdaptive => "nba-adaptive",
            Policy::Optimal => "grid-search",
            Policy::NfCompass {
                algo: PartitionAlgo::Kl,
                ..
            } => "kl",
            Policy::NfCompass {
                algo: PartitionAlgo::Agglomerative,
                ..
            } => "agglomerative",
            Policy::NfCompass {
                algo: PartitionAlgo::Mfmc,
                ..
            } => "mfmc",
        };
        let predicted = stage.plan.predicted_cost_ns;
        rec.instant(EventKind::PartitionDecision {
            algo,
            stage: stage.nf.name().to_string(),
            predicted_cost_ns: if predicted.is_finite() {
                predicted
            } else {
                0.0
            },
            mean_ratio: stage.plan.mean_offload(&offloadable),
        });
    }
    stage.run.reset_stats();
    stage.weights = Some(weights);
}

/// Estimated packets this stage ships to the device per batch under its
/// current plan: the largest per-element offloaded packet count, exactly
/// the quantity [`exec_stage_functional`] charges as `gpu_packets`.
fn stage_gpu_packets(stage: &StageExec) -> usize {
    let Some(weights) = stage.weights.as_ref() else {
        return 0;
    };
    let mut packets = 0usize;
    for (i, w) in weights.nodes.iter().enumerate() {
        let r = stage.plan.ratios.get(i).copied().unwrap_or(0.0);
        if r > 0.0 {
            packets = packets.max(w.load.fraction(r).packets);
        }
    }
    packets
}

/// SM-residency pass: bin-packs every offloading stage's persistent
/// kernel into SM slots ([`residency::bin_pack`]), granting resident
/// placements and downgrading the spillover to launch-per-batch
/// dispatch. Run after every (re-)planning step so the constraint holds
/// for the plans actually in effect; a no-op (all stages keep `mode`)
/// under non-persistent dispatch.
fn apply_residency(
    stages: &mut [Vec<StageExec>],
    model: &CostModel,
    mode: GpuMode,
    packer: residency::PackStrategy,
    pressure: Option<f64>,
) -> ResidencyReport {
    let gpu = model.platform().gpu;
    let mut report = ResidencyReport {
        resident: Vec::new(),
        spilled: Vec::new(),
        slots_per_device: gpu.sm_count,
        devices: gpu.count,
    };
    let mut flat: Vec<&mut StageExec> = stages.iter_mut().flat_map(|b| b.iter_mut()).collect();
    for stage in flat.iter_mut() {
        stage.mode = mode;
        stage.residency = None;
    }
    if mode != GpuMode::Persistent {
        return report;
    }
    let mut idx = Vec::new();
    let mut demands = Vec::new();
    for (fi, stage) in flat.iter().enumerate() {
        let packets = stage_gpu_packets(stage);
        if packets > 0 {
            idx.push(fi);
            demands.push(residency::slot_demand(packets));
        }
    }
    // With a recalibrated coefficient the pack objective and the charged
    // multiplier both use it; without, the stock packer and the
    // compiled-in anchor apply, byte-for-byte.
    let pack = match pressure {
        Some(p) => residency::pack_with_pressure(&demands, &gpu, packer, p),
        None => residency::pack(&demands, &gpu, packer),
    };
    for (k, &fi) in idx.iter().enumerate() {
        match pack.placements[k] {
            residency::Placement::Resident { device, slots } => {
                let used = pack.device_slots_used(device);
                let occupancy_pct = (used * 100 / gpu.sm_count.max(1)).min(100) as u8;
                let util = pack.device_utilization(device);
                flat[fi].residency = Some(ResidencySlot {
                    device,
                    occupancy_pct,
                    pressure: match pressure {
                        Some(p) => residency::pressure_multiplier_with(p, util),
                        None => residency::pressure_multiplier(util),
                    },
                });
                report
                    .resident
                    .push((flat[fi].nf.name().to_string(), device, slots));
            }
            residency::Placement::Spill => {
                flat[fi].mode = GpuMode::LaunchPerBatch;
                report.spilled.push(flat[fi].nf.name().to_string());
            }
        }
    }
    report
}

/// Result of pushing one batch through a prepared SFC.
pub enum BatchResult {
    /// Batch completed; record `(mean_arrival, completed)` with the
    /// output batch.
    Completed {
        /// Mean packet arrival time, ns.
        mean_arrival: f64,
        /// Completion time, ns.
        completed: f64,
        /// Surviving packets.
        out: Batch,
    },
    /// Batch tail-dropped at ingress.
    Dropped {
        /// Mean packet arrival time, ns.
        mean_arrival: f64,
    },
}

/// An SFC prepared for execution: re-organized, synthesized, profiled and
/// allocated, with its stages bound to simulator resources. Produced by
/// [`Deployment::prepare`]; shared-platform multi-tenant runs and the
/// `nfc-cluster` rack driver drive several of these against one
/// simulator.
pub struct PreparedSfc {
    stages: Vec<Vec<StageExec>>,
    width: usize,
    effective_length: usize,
    synthesis: Vec<SynthesisReport>,
    stage_offloads: Vec<(String, f64)>,
    mode: GpuMode,
    model: CostModel,
    exec_mode: ExecMode,
    duplication: Duplication,
    egress_packets: u64,
    egress_bytes: u64,
    merge_conflicts: u64,
    tel: TelemetryHandle,
    /// Cumulative per-stage charge observation (branch-major flat order),
    /// maintained by every run path; the adaptive controller reads it in
    /// windowed deltas. Purely additive bookkeeping: it never feeds back
    /// into execution unless a controller acts on it.
    obs: Vec<StageObs>,
    /// [`PreparedSfc::obs`] snapshot at the last epoch boundary.
    obs_base: Vec<StageObs>,
    /// Per-stage [`GraphStats`] snapshots at the last epoch boundary, so
    /// re-profiling measures one observation window via
    /// [`GraphStats::delta`] without ever resetting live counters.
    stats_base: Vec<GraphStats>,
    /// Per-stage flow-cache counters at the last epoch boundary.
    cache_base: Vec<CacheCounters>,
    /// Monotonic batch lineage tag; seeded from the tenant's user base
    /// (shifted high) so tags stay unique across co-deployed SFCs and
    /// `0` stays reserved for "untagged".
    batch_seq: u64,
    /// Simulated-time windows during which a live reconfiguration was
    /// in flight (pushed by [`PreparedSfc::repartition`] while
    /// recording); waiting that overlaps them is attributed to the
    /// `drain` bucket instead of generic queueing.
    swap_spans: Vec<(f64, f64)>,
    /// SM-residency placement currently in effect; refreshed whenever
    /// plans change (initial preparation, re-adaptation, live swaps).
    residency: ResidencyReport,
    /// Packer strategy the deployment selected; re-used verbatim by
    /// every re-pack (re-adaptation, live repartitions).
    packer: residency::PackStrategy,
    /// Recalibrated pressure coefficient carried from the deployment so
    /// every re-pack keeps the same objective (`None` = stock anchor).
    res_pressure: Option<f64>,
    /// Live health plane (`None` when no SLO is armed): streaming
    /// quantile sketches, multi-window SLO burn accounting, and the
    /// cost-model drift watchdog. Strictly observational — it reads the
    /// same timestamps the stats accumulator reads and only ever emits
    /// telemetry instants and gauges, so egress, statistics and the
    /// simulated timeline are bit-identical with the plane on or off.
    health: Option<HealthPlane>,
    /// Deterministic per-flow sampler driving the forensics plane
    /// (disarmed = zero rate, one branch per touchpoint).
    sampler: FlowSampler,
    /// Always-on bounded ring of recent flow-tagged and health events,
    /// dumped to a postmortem trace on an SLO breach or drift raise
    /// (`Some` only while the sampler is armed).
    flight: Option<FlightRecorder>,
    /// Server id stamped into this chain's flow points (0 for a
    /// standalone deployment; the cluster layer sets the shard's id so
    /// cross-server timelines stitch).
    server: u32,
}

/// Cumulative temporal-charge observation for one stage.
#[derive(Debug, Clone, Copy, Default)]
struct StageObs {
    batches: u64,
    packets: u64,
    bytes: u64,
    cpu_ns: f64,
    kernel_ns: f64,
    gpu_packets: u64,
}

/// Health-plane state carried by a prepared SFC.
///
/// Sketches are recorded lock-free: each pool worker fills a private
/// per-batch [`SketchSet`] shard inside the functional closure, and the
/// shards are folded into the registry here in deterministic
/// branch-major order after the join — no shared mutable state is ever
/// touched concurrently. Epochs close every
/// [`SloSpec::epoch_batches`] processed batches, independent of the
/// adaptive controller's cadence; breach/drift signals accumulate in
/// `pending` until the controller's next boundary drains them.
struct HealthPlane {
    /// Multi-window SLO burn-rate accounting.
    state: HealthState,
    /// Predicted-vs-observed latency residual watchdog.
    watchdog: DriftWatchdog,
    /// Merged sketch registry (chain e2e, drift ratios, per-stage times).
    sketches: SketchSet,
    /// Health epochs closed so far.
    epoch: u64,
    /// Batches (completed or dropped) since the last epoch boundary.
    since_epoch: usize,
    /// Current-epoch sum of model-predicted busy time, ns.
    pred_sum: f64,
    /// Current-epoch sum of observed end-to-end latency, ns.
    obs_sum: f64,
    /// Batches contributing to `pred_sum`/`obs_sum` this epoch.
    drift_batches: u64,
    /// Cumulative epochs with a raised drift verdict (gauge).
    drift_raised: u64,
    /// Signals awaiting the adaptive controller's next epoch boundary.
    pending: Vec<HealthSignal>,
}

impl HealthPlane {
    fn new(spec: SloSpec) -> Self {
        HealthPlane {
            state: HealthState::new(spec),
            watchdog: DriftWatchdog::new(spec.drift_threshold, spec.drift_hysteresis_epochs),
            sketches: SketchSet::new(nfc_telemetry::DEFAULT_SKETCH_ALPHA),
            epoch: 0,
            since_epoch: 0,
            pred_sum: 0.0,
            obs_sum: 0.0,
            drift_batches: 0,
            drift_raised: 0,
            pending: Vec::new(),
        }
    }
}

/// Emits one flow-forensics instant on the main recorder and mirrors a
/// copy into the flight-recorder ring (when armed). A free function so
/// call sites can split-borrow `PreparedSfc` fields while iterating
/// stages.
#[allow(clippy::too_many_arguments)]
fn stamp_flow_point(
    rec: &mut Recorder,
    flight: &mut Option<FlightRecorder>,
    seq: u64,
    track: u32,
    at: f64,
    flow: u32,
    point: &'static str,
    server: u32,
    packets: u32,
) {
    let kind = EventKind::FlowPoint {
        flow,
        point,
        server,
        packets,
    };
    rec.sim_instant(track, at, kind.clone());
    if let Some(f) = flight.as_mut() {
        f.record(Event {
            wall_ns: wall_now_ns(),
            wall_dur_ns: 0,
            sim: Some(SimStamp {
                start_ns: at,
                end_ns: at,
            }),
            track,
            batch: seq,
            kind,
        });
    }
}

/// Mirrors one health-plane instant into the flight-recorder ring so a
/// later dump carries the breach evidence alongside the flow stamps.
fn mirror_health_event(flight: &mut Option<FlightRecorder>, track: u32, at: f64, kind: EventKind) {
    if let Some(f) = flight.as_mut() {
        f.record(Event {
            wall_ns: wall_now_ns(),
            wall_dur_ns: 0,
            sim: Some(SimStamp {
                start_ns: at,
                end_ns: at,
            }),
            track,
            batch: 0,
            kind,
        });
    }
}

/// Dumps the flight ring as a postmortem trace for `reason` (first
/// occurrence per reason only) and emits a `flight_dump` instant naming
/// the file's evidence size on the main recorder.
fn trigger_flight_dump(
    flight: &mut Option<FlightRecorder>,
    sim: &mut PipelineSim,
    track: u32,
    at: f64,
    reason: &'static str,
) {
    let Some(f) = flight.as_mut() else { return };
    let events = f.len() as u32;
    match f.dump(reason) {
        Ok(Some(_)) => {
            sim.recorder_mut()
                .sim_instant(track, at, EventKind::FlightDump { reason, events });
        }
        Ok(None) => {}
        Err(e) => eprintln!("flight-recorder dump ({reason}) failed: {e}"),
    }
}

/// Detector-facing label for a breached SLO objective.
fn slo_signal_metric(objective: &'static str) -> &'static str {
    match objective {
        "p99_latency" => "slo:p99_latency",
        "throughput" => "slo:throughput",
        "drops" => "slo:drops",
        _ => "slo:objective",
    }
}

impl PreparedSfc {
    /// Pushes one batch through the prepared SFC, scheduling its costs on
    /// the shared simulator.
    pub fn process_batch(
        &mut self,
        sim: &mut PipelineSim,
        res: &PlatformResources,
        batch: Batch,
    ) -> BatchResult {
        let first_arrival = batch.get(0).map(|p| p.meta.arrival_ns).unwrap_or(0) as f64;
        let arrival = batch.iter().last().map(|p| p.meta.arrival_ns).unwrap_or(0) as f64;
        let mean_arrival = (first_arrival + arrival) / 2.0;
        // Ingress tail-drop: bounded backlog at the first busy resource
        // of any branch (NIC ring semantics).
        let worst_backlog = self
            .stages
            .iter()
            .filter_map(|b| b.first())
            .map(|s| sim.backlog_ns(s.cpu_res, arrival))
            .fold(sim.backlog_ns(res.io_rx, arrival), f64::max);
        if worst_backlog > sim.max_queue_ns {
            if self.health.is_some() {
                if let Some(h) = &mut self.health {
                    h.state.observe_drop();
                }
                self.health_epoch_tick(sim, res, arrival);
            }
            return BatchResult::Dropped { mean_arrival };
        }
        // Lineage tag: every event recorded while this batch is in
        // flight carries `seq`, which is what lets the attribution
        // layer re-join spans, ingress/egress markers and the bucket
        // decomposition after the fact. Tag 0 stays reserved for
        // untagged (out-of-batch) events.
        self.batch_seq += 1;
        let seq = self.batch_seq;
        let recording = sim.recorder_mut().is_enabled();
        if recording {
            let rec = sim.recorder_mut();
            rec.set_batch(seq);
            rec.sim_instant(
                res.io_rx.index() as u32,
                mean_arrival,
                EventKind::BatchIngress {
                    seq,
                    packets: batch.len() as u32,
                    wire_bytes: batch.total_bytes() as u64,
                },
            );
        }
        // Flow forensics: sampled flows present in this batch, keyed by
        // RSS hash with a representative FlowKey for cache probes. The
        // disarmed path costs the one `armed()` branch; the armed path
        // pays one hash-mod per packet plus key extraction for sampled
        // packets only.
        let forensics = recording && self.sampler.armed();
        let mut flows: Vec<(FlowKey, u32)> = Vec::new();
        if forensics {
            for p in batch.iter() {
                if self.sampler.sampled(p.meta.flow_hash) {
                    if let Ok(key) = FlowKey::of(p) {
                        match flows.iter_mut().find(|(k, _)| k.hash() == key.hash()) {
                            Some((_, n)) => *n += 1,
                            None => flows.push((key, 1)),
                        }
                    }
                }
            }
        }
        // Pure pre-dispatch cache probes (no counters, no CLOCK bits
        // touched): whether each sampled flow will hit each cached
        // stage. Stamped during temporal replay at the stage's start.
        let mut cache_probes: Vec<Vec<(u32, u32, bool)>> = Vec::new();
        if forensics && !flows.is_empty() {
            for branch in &self.stages {
                for stage in branch {
                    cache_probes.push(match stage.flow_cache.as_ref() {
                        Some(cache) => flows
                            .iter()
                            .map(|(k, n)| (k.hash(), *n, cache.probe(k)))
                            .collect(),
                        None => Vec::new(),
                    });
                }
            }
            let rx = res.io_rx.index() as u32;
            for (k, n) in &flows {
                stamp_flow_point(
                    sim.recorder_mut(),
                    &mut self.flight,
                    seq,
                    rx,
                    mean_arrival,
                    k.hash(),
                    "ingress",
                    self.server,
                    *n,
                );
            }
        }
        // Ingress I/O.
        let io_span = sim.schedule_span(res.io_rx, arrival, self.model.io_batch_ns(batch.len()), 0);
        let t0 = io_span.1;
        // Duplication cost for parallel branches (packet copies).
        let (split_span, t0) = if self.width > 1 {
            let s = sim.schedule_span(
                res.io_rx,
                t0,
                self.model.split_ns(batch.len(), self.width),
                0,
            );
            (Some(s), s.1)
        } else {
            (None, t0)
        };
        // Branches: the functional phase touches only branch-local state
        // (each branch's element graphs and its CoW duplicate of the
        // batch), so the worker pool runs branches concurrently. Charges
        // are collected per stage and replayed below.
        let dup = self.duplication;
        // With lanes enabled, gather the columnar header view once at
        // ingress: CoW duplicates share the memo by refcount, so every
        // read-only branch sweeps the same columns instead of each
        // paying its own gather.
        let mut batch = batch;
        if self.width > 1
            && dup == Duplication::Cow
            && self
                .stages
                .first()
                .and_then(|b| b.first())
                .is_some_and(|s| s.run.lanes())
        {
            batch.shared_lanes();
        }
        if forensics
            && !flows.is_empty()
            && self
                .stages
                .first()
                .and_then(|b| b.first())
                .is_some_and(|s| s.run.lanes())
        {
            // Columnar header lanes will be gathered for this batch
            // (here for shared CoW branches, inside the first stage
            // otherwise) — the flow's headers now live in SoA columns.
            let rx = res.io_rx.index() as u32;
            for (k, n) in &flows {
                stamp_flow_point(
                    sim.recorder_mut(),
                    &mut self.flight,
                    seq,
                    rx,
                    t0,
                    k.hash(),
                    "lanes",
                    self.server,
                    *n,
                );
            }
        }
        let tel = &self.tel;
        // Worker-local sketch shards: when the health plane is armed,
        // each branch closure records its per-stage wall times into a
        // private shard (lock-free by ownership) returned with the
        // batch; the shards merge into the registry below in fixed
        // branch order, so the merged sketches are deterministic in
        // shape whatever thread interleaving occurred.
        let health_on = self.health.is_some();
        let sketch_alpha = nfc_telemetry::DEFAULT_SKETCH_ALPHA;
        let branch_refs: Vec<&mut Vec<StageExec>> = self.stages.iter_mut().collect();
        let results: Vec<(Batch, Vec<StageCharge>, Option<SketchSet>)> =
            par_map_traced(self.exec_mode, branch_refs, tel, |bi, branch, rec| {
                rec.set_batch(seq);
                let mut cur = match dup {
                    Duplication::Cow => batch.clone(),
                    Duplication::DeepCopy => batch.deep_clone(),
                };
                let mut charges = Vec::with_capacity(branch.len());
                let mut shard = health_on.then(|| SketchSet::new(sketch_alpha));
                for (si, stage) in branch.iter_mut().enumerate() {
                    let packets = cur.len();
                    let t = rec.start();
                    let wall = shard.is_some().then(std::time::Instant::now);
                    let (out, charge) = exec_stage_functional(stage, cur, rec);
                    if let (Some(shard), Some(wall)) = (shard.as_mut(), wall) {
                        let device = if charge.gpu_packets > 0 { "gpu" } else { "cpu" };
                        shard.record(
                            SketchKey::stage(
                                "stage_wall_ns",
                                ((bi as u32) << 8) | si as u32,
                                device,
                            ),
                            wall.elapsed().as_nanos() as f64,
                        );
                    }
                    if rec.is_enabled() {
                        rec.wall_span(
                            t,
                            EventKind::Stage {
                                branch: bi as u32,
                                stage: si as u32,
                                name: stage.nf.name().to_string(),
                                packets: packets as u32,
                            },
                        );
                    }
                    cur = out;
                    charges.push(charge);
                }
                (cur, charges, shard)
            });
        // Temporal replay: sequential, in fixed branch-major stage order —
        // exactly the order the serial engine schedules in, so the
        // simulated timeline is bit-identical regardless of ExecMode.
        let mut branch_outputs: Vec<Batch> = Vec::with_capacity(self.width);
        let mut t_join = t0;
        let mut t_b0 = t0;
        // Reference chain for the bucket decomposition: branch 0's
        // dominating spans, classified compute vs PCIe transfer. Only
        // populated while recording — the disabled path pays nothing.
        let mut hops: Vec<((f64, f64), bool)> = Vec::new();
        let mut flat = 0usize;
        for (bi, (branch, (out, charges, shard))) in self.stages.iter().zip(results).enumerate() {
            if let (Some(h), Some(shard)) = (self.health.as_mut(), shard.as_ref()) {
                h.sketches.merge_from(shard);
            }
            let mut t = t0;
            for (si, (stage, charge)) in branch.iter().zip(&charges).enumerate() {
                let o = &mut self.obs[flat];
                o.batches += 1;
                o.packets += charge.in_packets as u64;
                o.bytes += charge.in_wire_bytes;
                o.cpu_ns += charge.cpu_ns;
                o.kernel_ns += charge.kernel_ns;
                o.gpu_packets += charge.gpu_packets as u64;
                flat += 1;
                let rp = replay_stage(
                    sim,
                    stage,
                    charge,
                    t,
                    &res.gpu_queues,
                    res.pcie_h2d,
                    res.pcie_d2h,
                );
                if recording && bi == 0 {
                    // The stage's latency contribution follows whichever
                    // side released last: the PCIe/kernel chain when the
                    // device was the straggler, the CPU span otherwise.
                    match rp.gpu {
                        Some([h, k, d]) if d.1 >= rp.cpu.1 => {
                            hops.push((h, true));
                            hops.push((k, false));
                            hops.push((d, true));
                        }
                        _ => hops.push((rp.cpu, false)),
                    }
                }
                if let Some(h) = self.health.as_mut() {
                    // Simulated per-stage latency (ready → released),
                    // keyed by the same stage id as the wall shard.
                    let device = if charge.gpu_packets > 0 { "gpu" } else { "cpu" };
                    h.sketches.record(
                        SketchKey::stage("stage_sim_ns", ((bi as u32) << 8) | si as u32, device),
                        rp.end - t,
                    );
                }
                if forensics && !flows.is_empty() {
                    // Per-flow stamps on this stage's timeline: the
                    // pre-dispatch cache probe at replay start, the
                    // element verdict at stage release, and the kernel
                    // span end when the stage offloaded.
                    let track = stage.cpu_res.index() as u32;
                    for &(flow, n, hit) in
                        cache_probes.get(flat - 1).map(Vec::as_slice).unwrap_or(&[])
                    {
                        let point = if hit { "cache_hit" } else { "cache_miss" };
                        stamp_flow_point(
                            sim.recorder_mut(),
                            &mut self.flight,
                            seq,
                            track,
                            t,
                            flow,
                            point,
                            self.server,
                            n,
                        );
                    }
                    for (k, n) in &flows {
                        if let Some([_, kernel, _]) = rp.gpu {
                            stamp_flow_point(
                                sim.recorder_mut(),
                                &mut self.flight,
                                seq,
                                track,
                                kernel.1,
                                k.hash(),
                                "kernel",
                                self.server,
                                *n,
                            );
                        }
                        stamp_flow_point(
                            sim.recorder_mut(),
                            &mut self.flight,
                            seq,
                            track,
                            rp.end,
                            k.hash(),
                            "stage",
                            self.server,
                            *n,
                        );
                    }
                }
                t = rp.end;
            }
            if bi == 0 {
                t_b0 = t;
            }
            t_join = t_join.max(t);
            branch_outputs.push(out);
        }
        // Merge parallel branches (XOR) or take the single output.
        let (out, t_done, merge_span) = if self.width > 1 {
            let (merged, conflicts) = merge_branch_batches(&batch, &branch_outputs);
            self.merge_conflicts += conflicts;
            let m = sim.schedule_span(res.io_tx, t_join, self.model.merge_ns(batch.len()), 0);
            (merged, m.1, Some(m))
        } else {
            (branch_outputs.pop().expect("one branch"), t_join, None)
        };
        // Egress I/O.
        let egress_span =
            sim.schedule_span(res.io_tx, t_done, self.model.io_batch_ns(out.len()), 0);
        let completed = egress_span.1;
        self.egress_packets += out.len() as u64;
        self.egress_bytes += out.total_bytes() as u64;
        if forensics && !flows.is_empty() {
            let tx = res.io_tx.index() as u32;
            if merge_span.is_some() {
                for (k, n) in &flows {
                    stamp_flow_point(
                        sim.recorder_mut(),
                        &mut self.flight,
                        seq,
                        tx,
                        t_done,
                        k.hash(),
                        "merge",
                        self.server,
                        *n,
                    );
                }
            }
            // Egress recounts the flow from the egress batch, so an
            // enforced drop shows up as a shrunk (or zero) packet count
            // against the flow's ingress stamp.
            for (k, _) in &flows {
                let n_out = out.iter().filter(|p| p.meta.flow_hash == k.hash()).count() as u32;
                stamp_flow_point(
                    sim.recorder_mut(),
                    &mut self.flight,
                    seq,
                    tx,
                    completed,
                    k.hash(),
                    "egress",
                    self.server,
                    n_out,
                );
            }
        }
        if recording {
            self.attribute_batch(
                sim,
                res,
                seq,
                mean_arrival,
                io_span,
                split_span,
                &hops,
                t_b0,
                t_join,
                merge_span,
                egress_span,
                &out,
            );
            sim.recorder_mut().set_batch(0);
        }
        if self.health.is_some() {
            if let Some(h) = &mut self.health {
                let e2e = completed - mean_arrival;
                h.state
                    .observe_batch(e2e, out.total_bytes() as u64, mean_arrival, completed);
                h.sketches.record(SketchKey::chain("e2e_ns"), e2e);
            }
            self.health_epoch_tick(sim, res, completed);
        }
        BatchResult::Completed {
            mean_arrival,
            completed,
            out,
        }
    }

    /// Advances the health epoch counter by one processed batch and, at
    /// the [`SloSpec::epoch_batches`] boundary, closes the epoch:
    /// evaluates SLO burn rates and the drift watchdog, queues
    /// controller signals for breaches/raises, and (while recording)
    /// emits `health`-category instants and publishes the live gauges.
    fn health_epoch_tick(&mut self, sim: &mut PipelineSim, res: &PlatformResources, now: f64) {
        let Some(h) = &mut self.health else {
            return;
        };
        h.since_epoch += 1;
        if h.since_epoch < h.state.spec().epoch_batches.max(1) {
            return;
        }
        h.since_epoch = 0;
        h.epoch += 1;
        let epoch = h.epoch;
        let verdicts = h.state.epoch();
        let drift = h.watchdog.epoch();
        let recording = sim.recorder_mut().is_enabled();
        let tx = res.io_tx.index() as u32;
        for v in &verdicts {
            if v.breached {
                h.pending.push(HealthSignal {
                    metric: slo_signal_metric(v.objective),
                    drift: v.fast_burn,
                });
            }
            if recording {
                let kind = EventKind::SloBurn {
                    epoch,
                    objective: v.objective,
                    fast_burn: v.fast_burn,
                    slow_burn: v.slow_burn,
                    breached: v.breached,
                };
                sim.recorder_mut().sim_instant(tx, now, kind.clone());
                mirror_health_event(&mut self.flight, tx, now, kind);
                if v.breached {
                    trigger_flight_dump(&mut self.flight, sim, tx, now, "slo_burn");
                }
                self.tel.set_gauge(
                    &format!(
                        "health_slo_burn{{objective=\"{}\",window=\"fast\"}}",
                        v.objective
                    ),
                    v.fast_burn,
                );
                self.tel.set_gauge(
                    &format!(
                        "health_slo_burn{{objective=\"{}\",window=\"slow\"}}",
                        v.objective
                    ),
                    v.slow_burn,
                );
            }
        }
        if let Some(d) = &drift {
            if d.raised {
                h.drift_raised += 1;
                h.pending.push(HealthSignal {
                    metric: "model_drift",
                    drift: d.drift,
                });
            }
            if recording {
                let n = h.drift_batches.max(1) as f64;
                let kind = EventKind::ModelDrift {
                    epoch,
                    predicted_ns: h.pred_sum / n,
                    observed_ns: h.obs_sum / n,
                    drift: d.drift,
                    raised: d.raised,
                };
                sim.recorder_mut().sim_instant(tx, now, kind.clone());
                mirror_health_event(&mut self.flight, tx, now, kind);
                if d.raised {
                    trigger_flight_dump(&mut self.flight, sim, tx, now, "model_drift");
                }
            }
        }
        h.pred_sum = 0.0;
        h.obs_sum = 0.0;
        h.drift_batches = 0;
        if recording {
            if let Some(s) = h.sketches.sketch(&SketchKey::chain("e2e_ns")) {
                for q in [0.5, 0.95, 0.99, 0.999] {
                    self.tel
                        .set_gauge(&format!("health_e2e_ns{{quantile=\"{q}\"}}"), s.quantile(q));
                }
            }
            if let Some(s) = h.sketches.sketch(&SketchKey::chain("drift_ratio")) {
                for q in [0.5, 0.99] {
                    self.tel.set_gauge(
                        &format!("health_drift_ratio{{quantile=\"{q}\"}}"),
                        s.quantile(q),
                    );
                }
            }
            self.tel
                .set_gauge("health_model_drift_raised", h.drift_raised as f64);
        }
    }

    /// Drains the breach/drift signals queued since the adaptive
    /// controller's last epoch boundary. Empty when no SLO is armed.
    pub fn take_health_signals(&mut self) -> Vec<HealthSignal> {
        self.health
            .as_mut()
            .map(|h| std::mem::take(&mut h.pending))
            .unwrap_or_default()
    }

    /// Whether the forensics sampler traces the flow with this RSS hash
    /// (false when disarmed) — the cluster layer asks before stamping
    /// shard/migration points.
    pub fn flow_sampled(&self, hash: u32) -> bool {
        self.sampler.sampled(hash)
    }

    /// Sets the server id stamped into this chain's flow points so
    /// cross-server timelines stitch (the cluster layer assigns shard
    /// ids; standalone deployments stay at 0).
    pub fn set_server(&mut self, server: u32) {
        self.server = server;
    }

    /// Emits one flow-forensics instant (and its flight-ring mirror)
    /// from outside the batch pipeline — the cluster layer's hook for
    /// shard-routing and migration points.
    pub fn stamp_flow_point(
        &mut self,
        sim: &mut PipelineSim,
        track: u32,
        at: f64,
        flow: u32,
        point: &'static str,
        packets: u32,
    ) {
        if !sim.recorder_mut().is_enabled() || !self.sampler.armed() {
            return;
        }
        let seq = sim.recorder_mut().batch();
        stamp_flow_point(
            sim.recorder_mut(),
            &mut self.flight,
            seq,
            track,
            at,
            flow,
            point,
            self.server,
            packets,
        );
    }

    /// On-demand flight-recorder dump (reason `manual` by convention):
    /// writes the retained ring as a postmortem trace and returns the
    /// path, or `None` when the recorder is disarmed, empty, or this
    /// reason already dumped.
    pub fn dump_flight(&mut self, reason: &'static str) -> Option<String> {
        self.flight
            .as_mut()
            .and_then(|f| f.dump(reason).ok().flatten())
    }

    /// Flight-recorder dump files written so far, in order (empty when
    /// the forensics plane is disarmed).
    pub fn flight_dumps(&self) -> Vec<String> {
        self.flight
            .as_ref()
            .map(|f| f.dumps().to_vec())
            .unwrap_or_default()
    }

    /// Total stateful-NF state held by this prepared chain, in bytes —
    /// what a shard migration must ship over the inter-server link when
    /// flow ownership moves off this server.
    pub fn state_bytes(&self) -> usize {
        self.stages
            .iter()
            .flat_map(|b| b.iter())
            .map(|s| s.run.state_bytes())
            .sum()
    }

    /// Bumps every stage flow-cache generation so no stale per-flow
    /// verdict survives a shard-ownership change (the cluster rebalance
    /// analogue of the invalidation [`PreparedSfc::repartition`] does
    /// for plan swaps). Invalidation events are recorded through the
    /// chain's telemetry handle; a no-op when no stage caches.
    pub fn invalidate_flow_caches(&mut self) {
        let mut rec = self.tel.recorder();
        for branch in self.stages.iter_mut() {
            for stage in branch.iter_mut() {
                if let Some(cache) = stage.flow_cache.as_mut() {
                    cache.invalidate(&stage.run, &mut rec);
                }
            }
        }
        self.tel.absorb(rec);
    }

    /// Computes the five-bucket latency decomposition for one completed
    /// batch and emits the egress/attribution instants. Walks the
    /// reference chain (ingress I/O → split → branch-0 dominating spans
    /// → join → merge → egress I/O): busy time lands in compute or
    /// transfer, the merge barrier is charged as `merge_wait`, gap time
    /// overlapping a live reconfiguration window becomes `drain`, and
    /// queueing is the exact residual — so the buckets reconstruct the
    /// end-to-end latency bit-for-bit.
    #[allow(clippy::too_many_arguments)]
    fn attribute_batch(
        &mut self,
        sim: &mut PipelineSim,
        res: &PlatformResources,
        seq: u64,
        mean_arrival: f64,
        io_span: (f64, f64),
        split_span: Option<(f64, f64)>,
        hops: &[((f64, f64), bool)],
        t_b0: f64,
        t_join: f64,
        merge_span: Option<(f64, f64)>,
        egress_span: (f64, f64),
        out: &Batch,
    ) {
        let completed = egress_span.1;
        let e2e = completed - mean_arrival;
        let mut compute = 0.0f64;
        let mut transfer = 0.0f64;
        let mut gaps: Vec<(f64, f64)> = Vec::new();
        let mut frontier = mean_arrival;
        let mut walk = |span: (f64, f64), is_transfer: bool, frontier: &mut f64| {
            if span.0 > *frontier {
                gaps.push((*frontier, span.0));
            }
            if is_transfer {
                transfer += span.1 - span.0;
            } else {
                compute += span.1 - span.0;
            }
            *frontier = span.1;
        };
        walk(io_span, false, &mut frontier);
        if let Some(s) = split_span {
            walk(s, false, &mut frontier);
        }
        for &(span, is_transfer) in hops {
            walk(span, is_transfer, &mut frontier);
        }
        // The merge barrier: branch 0's output sat from its own finish
        // until the slowest sibling released the join.
        let merge_wait = t_join - t_b0;
        frontier = t_join;
        if let Some(m) = merge_span {
            walk(m, false, &mut frontier);
        }
        walk(egress_span, false, &mut frontier);
        // Gap time spent behind an in-flight reconfiguration is drain;
        // prune spans that can no longer overlap any future batch.
        self.swap_spans.retain(|&(_, se)| se > mean_arrival);
        let mut drain = 0.0f64;
        for &(gs, ge) in &gaps {
            for &(ss, se) in &self.swap_spans {
                let lo = gs.max(ss);
                let hi = ge.min(se);
                if hi > lo {
                    drain += hi - lo;
                }
            }
        }
        // Queueing is the residual, so the five buckets telescope to
        // the end-to-end latency exactly (modulo float rounding).
        let queue = (e2e - compute - transfer - merge_wait - drain).max(0.0);
        // Drift watchdog: the model's prediction for this batch is the
        // busy time it generated (compute + transfer); everything else
        // (queueing, merge barriers, drain) is emergent platform
        // behaviour the model must have budgeted for. A sustained
        // observed/predicted ratio above the threshold means the cost
        // constants no longer describe the platform.
        if let Some(h) = &mut self.health {
            let predicted = compute + transfer;
            h.watchdog.observe(predicted, e2e, &mut h.sketches);
            if predicted > 0.0 && e2e.is_finite() {
                h.pred_sum += predicted;
                h.obs_sum += e2e;
                h.drift_batches += 1;
            }
        }
        let rec = sim.recorder_mut();
        let tx = res.io_tx.index() as u32;
        rec.sim_instant(
            tx,
            completed,
            EventKind::BatchEgress {
                seq,
                packets: out.len() as u32,
                bytes: out.total_bytes() as u64,
            },
        );
        rec.sim_instant(
            tx,
            completed,
            EventKind::BatchAttribution {
                seq,
                e2e_ns: e2e,
                compute_ns: compute,
                transfer_ns: transfer,
                queue_ns: queue,
                drain_ns: drain,
                merge_wait_ns: merge_wait,
            },
        );
    }

    /// Re-profiles every stage against fresh traffic and recomputes its
    /// allocation — the mid-run adaptation the paper motivates with
    /// "fast-switching network traffics". Consumes `warmup` batches
    /// functionally (they are not scheduled or counted).
    pub fn readapt(
        &mut self,
        policy: Policy,
        delta: f64,
        traffic: &mut TrafficGenerator,
        warmup: usize,
        batch_size: usize,
    ) {
        for branch in self.stages.iter_mut() {
            for stage in branch.iter_mut() {
                stage.run.reset_stats();
                stage.run.begin_profile_window();
            }
        }
        for _ in 0..warmup {
            let batch = traffic.batch(batch_size);
            for branch in self.stages.iter_mut() {
                let mut cur = batch.clone();
                for stage in branch.iter_mut() {
                    cur = stage.run.push_merged(stage.nf.entry(), cur);
                }
            }
        }
        // Discard session records cut by the re-profiling batches (they
        // are consumed functionally, outside the recorded timeline).
        for branch in self.stages.iter_mut() {
            for stage in branch.iter_mut() {
                stage.run.take_session_records();
            }
        }
        let mode = self.mode;
        let mut rec = self.tel.recorder();
        for branch in self.stages.iter_mut() {
            for stage in branch.iter_mut() {
                plan_stage(stage, policy, mode, delta, &mut rec);
            }
        }
        self.tel.absorb(rec);
        // Fresh plans mean fresh slot demands: re-pack, re-granting or
        // spilling each stage against the policy's requested mode.
        self.residency = apply_residency(
            &mut self.stages,
            &self.model,
            mode,
            self.packer,
            self.res_pressure,
        );
    }

    /// Mean offload ratio per stage (branch-major), refreshed after
    /// re-adaptation.
    pub fn current_offloads(&self) -> Vec<(String, f64)> {
        self.stages
            .iter()
            .flat_map(|b| b.iter())
            .map(|s| {
                let offloadable: Vec<bool> = s
                    .weights
                    .as_ref()
                    .map(|w| w.nodes.iter().map(|n| n.offloadable).collect())
                    .unwrap_or_default();
                (s.nf.name().to_string(), s.plan.mean_offload(&offloadable))
            })
            .collect()
    }

    /// Opens a fresh observation window: snapshots the cumulative charge
    /// observations, per-stage statistics and flow-cache counters so the
    /// next [`PreparedSfc::epoch_signature`] and re-profiling read
    /// windowed deltas, never cumulative state (and never reset live
    /// counters — resetting would perturb the differential oracle).
    pub fn snapshot_window(&mut self) {
        self.obs_base = self.obs.clone();
        self.stats_base = self
            .stages
            .iter()
            .flat_map(|b| b.iter())
            .map(|s| s.run.stats().clone())
            .collect();
        self.cache_base = self
            .stages
            .iter()
            .flat_map(|b| b.iter())
            .map(|s| {
                s.flow_cache
                    .as_ref()
                    .map(|c| c.counters())
                    .unwrap_or_default()
            })
            .collect();
    }

    /// Condenses the observation window since the last
    /// [`PreparedSfc::snapshot_window`] into a per-stage
    /// [`WorkloadSignature`]: mean CPU/kernel charges per batch, batch
    /// fill and packet size from the traffic actually seen, live content
    /// factors read from the elements, the SM-occupancy proxy, the DMA
    /// backlog sampled at the boundary, and the flow-cache hit rate.
    pub fn epoch_signature(&self, batch_size: usize, dma_backlog_ns: f64) -> WorkloadSignature {
        let mut sigs = Vec::with_capacity(self.obs.len());
        for (flat, stage) in self.stages.iter().flat_map(|b| b.iter()).enumerate() {
            let o = self.obs[flat];
            let b = self.obs_base.get(flat).copied().unwrap_or_default();
            let batches = (o.batches.saturating_sub(b.batches)).max(1) as f64;
            let packets = o.packets.saturating_sub(b.packets) as f64;
            let bytes = o.bytes.saturating_sub(b.bytes) as f64;
            let g = stage.run.graph();
            let n = g.node_count().max(1) as f64;
            let mut match_factor = 0.0;
            let mut divergence = 0.0;
            for id in g.node_ids() {
                let el = g.element(id);
                match_factor += el.content_factor();
                divergence += el.divergence();
            }
            let (hits, misses) = match stage.flow_cache.as_ref() {
                Some(c) => {
                    let cur = c.counters();
                    let base = self.cache_base.get(flat).copied().unwrap_or_default();
                    (
                        cur.hits.saturating_sub(base.hits) as f64,
                        cur.misses.saturating_sub(base.misses) as f64,
                    )
                }
                None => (0.0, 0.0),
            };
            let lookups = hits + misses;
            sigs.push(StageSignature {
                cpu_ns: (o.cpu_ns - b.cpu_ns) / batches,
                kernel_ns: (o.kernel_ns - b.kernel_ns) / batches,
                batch_fill: packets / (batches * batch_size.max(1) as f64),
                mean_pkt_bytes: bytes / packets.max(1.0),
                match_factor: match_factor / n,
                divergence: divergence / n,
                sm_occupancy: (o.gpu_packets.saturating_sub(b.gpu_packets) as f64 / batches)
                    / calib::GPU_PARALLEL_WIDTH as f64,
                dma_backlog_ns,
                cache_hit_rate: if lookups > 0.0 { hits / lookups } else { 0.0 },
            });
        }
        WorkloadSignature { stages: sigs }
    }

    /// Re-profiles every stage over the current observation window and
    /// re-runs the partitioner warm-started from the plan in effect,
    /// adopting a stage's new plan only when its execution-consistent
    /// cost beats the carried plan. Adopted plans are applied via the
    /// two-phase epoch swap, charged on the simulated timeline at `now`:
    ///
    /// 1. **Drain** — swap work is scheduled *behind* the existing
    ///    backlog of the stage's GPU queue and the DMA link, so every
    ///    in-flight batch finishes under the old plan first (the
    ///    simulator's resource semantics are the drain barrier).
    /// 2. **Reconfigure** — persistent-kernel teardown, stateful-NF
    ///    state migration over PCIe, and the cold launch of the new
    ///    kernel are charged at calibrated costs; the stage's flow-cache
    ///    generation is bumped so no stale verdict survives the swap.
    ///
    /// Returns `true` when at least one stage adopted a new plan. Every
    /// evaluated stage is appended to `report` (with `applied: false`
    /// when the warm re-partition kept the carried plan), and recorded as
    /// an [`EventKind::ControllerDecision`] telemetry instant.
    #[allow(clippy::too_many_arguments)]
    pub fn repartition(
        &mut self,
        sim: &mut PipelineSim,
        res: &PlatformResources,
        algo: PartitionAlgo,
        algo_label: &'static str,
        reason: &str,
        delta: f64,
        now: f64,
        epoch: u64,
        report: &mut ControllerReport,
    ) -> bool {
        let mut rec = self.tel.recorder();
        let mut any = false;
        let mut flat = 0usize;
        let mut swap_end = now;
        for branch in self.stages.iter_mut() {
            for stage in branch.iter_mut() {
                // Evaluate against the stage's *effective* mode: a stage
                // the residency pass spilled is re-planned as
                // launch-per-batch until a re-pack re-grants its slots.
                let mode = stage.mode;
                let base = self.stats_base.get(flat).cloned().unwrap_or_default();
                let window = stage.run.stats().delta(&base);
                let profiler = Profiler::new(stage.model, mode);
                let weights = profiler.measure_stats_with_corun(&stage.run, &window, &stage.corun);
                let offloadable: Vec<bool> = weights.nodes.iter().map(|n| n.offloadable).collect();
                let old_ratio = stage.plan.mean_offload(&offloadable);
                let plan = allocate_warm_traced(
                    stage.nf.graph(),
                    &weights,
                    &stage.plan.ratios,
                    algo,
                    delta,
                    &stage.model,
                    &stage.corun,
                    mode,
                    &mut rec,
                );
                let new_ratio = plan.mean_offload(&offloadable);
                let applied = plan.ratios != stage.plan.ratios;
                let mut swap_ns = 0.0;
                if applied {
                    let was = stage.plan.ratios.iter().any(|&r| r > 0.0);
                    let will = plan.ratios.iter().any(|&r| r > 0.0);
                    let gpu = match mode {
                        GpuMode::Persistent => match stage.residency {
                            Some(slot) => res.gpu_queues[slot.device % res.gpu_queues.len()],
                            None => res.gpu_queues[(stage.user as usize) % res.gpu_queues.len()],
                        },
                        GpuMode::LaunchPerBatch => res.gpu_queues[0],
                    };
                    let mut t = now;
                    if was {
                        t = sim.schedule(gpu, t, stage.model.kernel_teardown_ns(), stage.user);
                    }
                    let state = stage.run.state_bytes();
                    if state > 0 && (was || will) {
                        t = sim.schedule(
                            res.pcie_h2d,
                            t,
                            stage.model.state_migration_ns(state),
                            stage.user,
                        );
                    }
                    if will {
                        t = sim.schedule(
                            gpu,
                            t,
                            stage.model.kernel_cold_launch_ns(mode),
                            stage.user,
                        );
                    }
                    swap_ns = t - now;
                    swap_end = swap_end.max(t);
                    if let Some(cache) = stage.flow_cache.as_mut() {
                        cache.invalidate(&stage.run, &mut rec);
                    }
                    stage.plan = plan;
                    stage.weights = Some(weights);
                    any = true;
                }
                if rec.is_enabled() {
                    rec.instant(EventKind::ControllerDecision {
                        epoch,
                        reason: reason.to_string(),
                        stage: stage.nf.name().to_string(),
                        old_ratio,
                        new_ratio,
                        swap_ns,
                    });
                }
                report.adaptations.push(AdaptationRecord {
                    epoch,
                    reason: reason.to_string(),
                    algo: algo_label,
                    stage: stage.nf.name().to_string(),
                    old_ratio,
                    new_ratio,
                    swap_ns,
                    applied,
                });
                flat += 1;
            }
        }
        // One merged drain window per reconfiguration (per-stage swap
        // charges overlap — they all start at `now` — so recording them
        // individually would double-count drain in the bucket walk).
        if rec.is_enabled() && any && swap_end > now {
            match self.swap_spans.last_mut() {
                Some(last) if last.1 >= now => last.1 = last.1.max(swap_end),
                _ => self.swap_spans.push((now, swap_end)),
            }
        }
        self.tel.absorb(rec);
        if any {
            // Adopted plans shift slot demands; re-pack against the
            // policy's requested mode so spilled stages can win their
            // residency back (and newly heavy ones spill).
            self.residency = apply_residency(
                &mut self.stages,
                &self.model,
                self.mode,
                self.packer,
                self.res_pressure,
            );
        }
        any
    }

    /// Finalizes the run into a [`RunOutcome`] with the given temporal
    /// report.
    pub fn into_outcome(self, report: SimReport) -> RunOutcome {
        RunOutcome {
            report,
            egress_packets: self.egress_packets,
            egress_bytes: self.egress_bytes,
            width: self.width,
            effective_length: self.effective_length,
            synthesis: self.synthesis,
            stage_offloads: self.stage_offloads,
            merge_conflicts: self.merge_conflicts,
            stage_stats: self
                .stages
                .iter()
                .flat_map(|b| b.iter())
                .map(|s| s.run.stats().clone())
                .collect(),
            flow_cache: self
                .stages
                .iter()
                .flat_map(|b| b.iter())
                .filter_map(|s| s.flow_cache.as_ref())
                .map(|c| c.counters())
                .fold(CacheCounters::default(), CacheCounters::merge),
            telemetry: None,
            residency: self.residency,
        }
    }
}

/// Temporal cost of one stage's processing of one batch, computed during
/// the functional phase and replayed onto the simulator afterwards. The
/// charge depends only on the batch and the stage's profile/plan — never
/// on simulator state — which is what lets branches run functionally in
/// parallel while the timeline stays bit-identical to serial execution.
struct StageCharge {
    cpu_ns: f64,
    kernel_ns: f64,
    gpu_bytes: f64,
    /// Largest per-element packet count shipped to the device (drives
    /// the SM-occupancy telemetry proxy).
    gpu_packets: usize,
    any_offload: bool,
    /// Offloaded elements aggregated into the device span (per-element
    /// kernel dispatches; `calibrate` fits dispatch overhead only on
    /// single-dispatch samples).
    gpu_kernels: u32,
    /// Packets entering the stage this batch (controller observation).
    in_packets: usize,
    /// Wire bytes entering the stage this batch (controller observation).
    in_wire_bytes: u64,
}

/// Executes one NF stage functionally (packets through the element
/// graph) and computes its [`StageCharge`]. Touches only stage-local
/// state; safe to run concurrently across branches. Telemetry (element
/// spans, flow-cache instants) goes to `rec`, which is branch-local
/// during parallel execution.
fn exec_stage_functional(
    stage: &mut StageExec,
    batch: Batch,
    rec: &mut Recorder,
) -> (Batch, StageCharge) {
    // Per-stage dispatch mode: the residency pass may have downgraded
    // this stage to launch-per-batch while siblings stay persistent.
    let mode = stage.mode;
    let in_packets = batch.len();
    let in_wire_bytes = batch.total_bytes() as u64;
    let in_splits = batch.lineage.splits;
    let in_merges = batch.lineage.merges;
    // Functional execution: flow-aware fast path when this stage has a
    // cache, slow path otherwise. Egress is bit-identical either way;
    // only the temporal charge shrinks (hits are charged nothing — the
    // verdict replay is orders of magnitude below element cost).
    let StageExec {
        nf,
        run,
        weights,
        plan,
        corun,
        model,
        flow_cache,
        ..
    } = stage;
    let model = *model;
    let (out, charged_packets, charged_bytes, lineage_delta) = match flow_cache.as_mut() {
        Some(cache) => {
            let cr = cache.process_traced(run, nf.entry(), batch, rec);
            if cr.fell_back {
                (cr.out, in_packets, None, None)
            } else {
                (
                    cr.out,
                    cr.misses as usize,
                    Some(cr.miss_bytes as f64),
                    Some((cr.miss_new_splits, cr.miss_new_merges)),
                )
            }
        }
        None => (
            run.push_merged_traced(nf.entry(), batch, rec),
            in_packets,
            None,
            None,
        ),
    };
    // Drain structured session records cut by session-logging elements
    // into `session`-category events (wall instants: sessions are
    // observations about traffic, not scheduled work). Elements bound
    // their own buffers, so the disabled path pays nothing here beyond
    // the recording branch.
    if rec.is_enabled() {
        for r in run.take_session_records() {
            rec.instant(EventKind::Session {
                state: r.state.label(),
                flow: r.flow,
                packets: r.packets,
                bytes: r.bytes,
            });
        }
    }
    let (new_splits, new_merges) = lineage_delta.unwrap_or_else(|| {
        (
            out.lineage.splits.saturating_sub(in_splits),
            out.lineage.merges.saturating_sub(in_merges),
        )
    });
    let weights = weights.as_ref().expect("profiled before run");
    let in_bytes = charged_bytes.unwrap_or_else(|| {
        out.total_bytes() as f64
            + (charged_packets.saturating_sub(out.len())) as f64
                * (out.total_bytes() as f64 / out.len().max(1) as f64)
    });
    let pscale = if weights.entry_packets > 0.0 {
        (charged_packets as f64 / weights.entry_packets).min(4.0)
    } else {
        1.0
    };
    let bscale = if weights.entry_bytes > 0.0 {
        (in_bytes / weights.entry_bytes).min(64.0)
    } else {
        1.0
    };
    // CPU portion + GPU portion, to be overlapped at replay.
    let mut cpu_ns = 0.0;
    let mut kernel_ns = 0.0;
    let mut gpu_bytes = 0.0f64;
    let mut gpu_packets = 0usize;
    let mut gpu_kernels = 0u32;
    let mut any_offload = false;
    let mut partial = false;
    for (i, w) in weights.nodes.iter().enumerate() {
        let r = plan.ratios.get(i).copied().unwrap_or(0.0);
        // Scale the profiled per-batch load to this batch: packet
        // count and byte volume scale independently so packet-size
        // shifts are charged honestly.
        let mut load = w.load;
        load.packets = (load.packets as f64 * pscale).round() as usize;
        load.bytes = (load.bytes as f64 * bscale).round() as usize;
        // Traffic-content factors are read live from the element so
        // charged costs track the current traffic, not the profiling
        // window (the paper's fast-switching-traffic concern).
        let el = run.graph().element(nfc_click::NodeId(i));
        load.match_factor = el.content_factor();
        load.divergence = el.divergence();
        if r < 1.0 {
            let cpu_part = load.fraction(1.0 - r);
            cpu_ns += model.cpu_batch_ns(&cpu_part, corun);
        }
        if r > 0.0 {
            let gpu_part = load.fraction(r);
            let g = model.gpu_batch_ns(&gpu_part, mode);
            kernel_ns += g.kernel_ns + g.dispatch_ns;
            gpu_bytes = gpu_bytes.max(gpu_part.bytes as f64);
            gpu_packets = gpu_packets.max(gpu_part.packets);
            gpu_kernels += 1;
            any_offload = true;
        }
        if r > 0.0 && r < 1.0 {
            partial = true;
        }
    }
    // Batch re-organization from functional splits (Figure 5) plus
    // the CPU/GPU carve when partially offloaded. Under the fast path
    // only the miss partition is re-organized.
    if new_splits > 0 {
        cpu_ns += new_splits as f64 * model.split_ns(charged_packets, 2);
    }
    if new_merges > 0 {
        cpu_ns += new_merges as f64 * model.merge_ns(charged_packets);
    }
    if partial {
        cpu_ns += model.carve_ns(charged_packets) + model.offload_merge_ns(charged_packets);
    }
    (
        out,
        StageCharge {
            cpu_ns,
            kernel_ns,
            gpu_bytes,
            gpu_packets,
            any_offload,
            gpu_kernels,
            in_packets,
            in_wire_bytes,
        },
    )
}

/// Timeline placement of one stage's replay: the CPU-side span always,
/// plus the h2d → kernel → d2h chain when the stage offloads. `end` is
/// the ordered-release completion (max of both sides); the spans feed
/// the per-batch bucket walk in [`PreparedSfc::process_batch`].
struct StageReplay {
    end: f64,
    cpu: (f64, f64),
    gpu: Option<[(f64, f64); 3]>,
}

/// Replays one stage's charge onto the shared simulator, returning the
/// placed spans and the stage completion time.
fn replay_stage(
    sim: &mut PipelineSim,
    stage: &StageExec,
    charge: &StageCharge,
    t: f64,
    gpu_queues: &[ResourceId],
    pcie_h2d: ResourceId,
    pcie_d2h: ResourceId,
) -> StageReplay {
    let model = stage.model;
    let cpu = sim.schedule_span(stage.cpu_res, t, charge.cpu_ns, stage.user);
    if charge.any_offload {
        // Persistent kernels run on the device the residency pass placed
        // them on (one queue per device); launch-per-batch kernels run
        // in the default stream and serialize the whole device — the
        // root of the paper's aggregated offloading overhead (Figure 7).
        let gpu = match stage.mode {
            GpuMode::Persistent => match stage.residency {
                Some(slot) => gpu_queues[slot.device % gpu_queues.len()],
                None => gpu_queues[(stage.user as usize) % gpu_queues.len()],
            },
            GpuMode::LaunchPerBatch => gpu_queues[0],
        };
        // Co-residency pressure: kernel time stretches once the hosting
        // device's SM slots pass half utilization.
        let kernel_ns = charge.kernel_ns * stage.residency.map_or(1.0, |s| s.pressure);
        let dma = |bytes: f64| {
            model.platform().pcie.dma_latency_ns + bytes / model.platform().pcie.bw_gbs
        };
        let h = sim.schedule_span(pcie_h2d, t, dma(charge.gpu_bytes), stage.user);
        let k = sim.schedule_span(gpu, h.1, kernel_ns, stage.user);
        let d = sim.schedule_span(pcie_d2h, k.1, dma(charge.gpu_bytes), stage.user);
        let rec = sim.recorder_mut();
        if rec.is_enabled() {
            // Semantic GPU events on the simulated timeline, alongside
            // the generic resource-busy spans `schedule` already emits.
            // These mirror the busy intervals (not request → release),
            // so their durations are pure transfer/execution time —
            // which is what lets `calibrate` re-fit the cost constants
            // from a trace regardless of congestion.
            let queue = gpu.index() as u32;
            let bytes = charge.gpu_bytes as u64;
            rec.sim_span(
                pcie_h2d.index() as u32,
                h.0,
                h.1,
                EventKind::Dma {
                    to_device: true,
                    bytes,
                },
            );
            rec.sim_span(
                queue,
                k.0,
                k.1,
                EventKind::KernelLaunch {
                    queue,
                    user: stage.user,
                    bytes,
                    packets: charge.gpu_packets as u32,
                    kernels: charge.gpu_kernels,
                },
            );
            rec.sim_span(
                pcie_d2h.index() as u32,
                d.0,
                d.1,
                EventKind::Dma {
                    to_device: false,
                    bytes,
                },
            );
            // Resident kernels report their device's slot occupancy from
            // the bin-pack; unplaced offloads keep the lane-width proxy.
            let occupancy_pct = match stage.residency {
                Some(slot) => slot.occupancy_pct,
                None => (charge.gpu_packets * 100 / calib::GPU_PARALLEL_WIDTH).min(100) as u8,
            };
            rec.sim_instant(
                queue,
                k.1,
                EventKind::SmOccupancy {
                    queue,
                    occupancy_pct,
                },
            );
        }
        // Ordered release (completion-queue) once both sides finish.
        StageReplay {
            end: cpu.1.max(d.1),
            cpu,
            gpu: Some([h, k, d]),
        }
    } else {
        StageReplay {
            end: cpu.1,
            cpu,
            gpu: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfc_packet::traffic::{SizeDist, TrafficSpec};

    fn traffic(pkt: usize, seed: u64) -> TrafficGenerator {
        TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(pkt)), seed)
    }

    fn run(sfc: Sfc, policy: Policy, pkt: usize, batches: usize) -> RunOutcome {
        let mut dep = Deployment::new(sfc, policy).with_batch_size(256);
        dep.run(&mut traffic(pkt, 42), batches)
    }

    fn ipsec_chain(n: usize) -> Sfc {
        Sfc::new(
            "ipsec-chain",
            (0..n).map(|i| Nf::ipsec(format!("ipsec{i}"))).collect(),
        )
    }

    #[test]
    fn cpu_only_single_nf_runs() {
        let out = run(ipsec_chain(1), Policy::CpuOnly, 256, 30);
        assert!(out.report.throughput_gbps > 0.0);
        assert!(out.egress_packets > 0);
        assert_eq!(out.width, 1);
        assert_eq!(out.effective_length, 1);
        assert!(out.stage_offloads.iter().all(|(_, r)| *r == 0.0));
    }

    #[test]
    fn optimal_ipsec_uses_partial_offload_and_beats_extremes() {
        let cpu = run(ipsec_chain(1), Policy::CpuOnly, 256, 30);
        let gpu = run(
            ipsec_chain(1),
            Policy::GpuOnly {
                mode: GpuMode::Persistent,
            },
            256,
            30,
        );
        let opt = run(ipsec_chain(1), Policy::Optimal, 256, 30);
        let r = opt.stage_offloads[0].1;
        assert!(r > 0.0 && r < 1.0, "optimal IPsec ratio interior, got {r}");
        assert!(opt.report.throughput_gbps >= cpu.report.throughput_gbps * 0.99);
        assert!(opt.report.throughput_gbps >= gpu.report.throughput_gbps * 0.99);
    }

    #[test]
    fn fig7_gpu_only_degrades_with_chain_length() {
        // GPU acceleration is offset by aggregated per-NF offload
        // overheads as the chain grows (launch-per-batch baseline).
        let t1 = run(
            ipsec_chain(1),
            Policy::GpuOnly {
                mode: GpuMode::LaunchPerBatch,
            },
            64,
            30,
        );
        let t3 = run(
            ipsec_chain(3),
            Policy::GpuOnly {
                mode: GpuMode::LaunchPerBatch,
            },
            64,
            30,
        );
        assert!(
            t3.report.throughput_gbps < t1.report.throughput_gbps,
            "len-3 {} should be slower than len-1 {}",
            t3.report.throughput_gbps,
            t1.report.throughput_gbps
        );
    }

    #[test]
    fn nfcompass_parallelizes_readonly_chain() {
        let sfc = Sfc::new(
            "fw4",
            (0..4)
                .map(|i| Nf::firewall(format!("fw{i}"), 100, 1))
                .collect(),
        );
        let out = run(sfc, Policy::nfcompass(), 64, 30);
        assert_eq!(out.effective_length, 1);
        assert_eq!(out.width, 4);
        assert_eq!(out.merge_conflicts, 0);
        assert!(out.egress_packets > 0);
    }

    #[test]
    fn nfcompass_synthesizes_width_limited_chain() {
        let sfc = Sfc::new("ids4", (0..4).map(|i| Nf::ids(format!("ids{i}"))).collect());
        let mut dep = Deployment::new(
            sfc,
            Policy::NfCompass {
                algo: PartitionAlgo::Kl,
                max_branches: 2,
                synthesize: true,
            },
        )
        .with_batch_size(128);
        let out = dep.run(&mut traffic(256, 9), 20);
        assert_eq!(out.width, 2);
        // Each branch of 2 identical IDS synthesized into one stage.
        assert_eq!(out.effective_length, 1);
        assert_eq!(out.synthesis.len(), 2);
        assert!(out.synthesis.iter().all(|s| s.removed >= 1));
    }

    #[test]
    fn nfcompass_beats_cpu_only_on_heavy_chain() {
        let sfc = || Sfc::new("heavy", vec![Nf::ipsec("ipsec"), Nf::dpi("dpi")]);
        let cpu = run(sfc(), Policy::CpuOnly, 512, 30);
        let nfc = run(sfc(), Policy::nfcompass(), 512, 30);
        assert!(
            nfc.report.throughput_gbps > 1.2 * cpu.report.throughput_gbps,
            "NFCompass {} vs CPU-only {}",
            nfc.report.throughput_gbps,
            cpu.report.throughput_gbps
        );
    }

    #[test]
    fn functional_outputs_are_identical_across_policies() {
        // Scheduling must never change packet contents: CPU-only and
        // NFCompass produce byte-identical egress for the same traffic.
        let sfc = || Sfc::new("fw-ids", vec![Nf::firewall("fw", 100, 1), Nf::ids("ids")]);
        let a = run(sfc(), Policy::CpuOnly, 256, 10);
        let b = run(sfc(), Policy::nfcompass(), 256, 10);
        assert_eq!(a.egress_packets, b.egress_packets);
        assert_eq!(a.egress_bytes, b.egress_bytes);
    }

    #[test]
    fn lanes_on_off_egress_is_byte_identical() {
        // The SoA header-lane sweep is a pure execution-path choice:
        // forcing lanes on and off must yield byte-identical egress and
        // identical statistics for a header-heavy chain.
        let sfc = || {
            Sfc::new(
                "fw-lb",
                vec![
                    Nf::firewall("fw", 100, 1),
                    Nf::ipv4_forwarder("rt", 64, 3),
                    Nf::nat("nat", [203, 0, 113, 1]),
                ],
            )
        };
        let collect = |lanes: bool| {
            let mut dep = Deployment::new(sfc(), Policy::nfcompass())
                .with_batch_size(128)
                .with_lanes(lanes);
            dep.run_collect(&mut traffic(256, 7), 12)
        };
        let (out_on, egress_on) = collect(true);
        let (out_off, egress_off) = collect(false);
        assert_eq!(egress_on, egress_off, "lane egress must be bit-identical");
        assert_eq!(out_on.egress_packets, out_off.egress_packets);
        assert_eq!(out_on.egress_bytes, out_off.egress_bytes);
    }

    #[test]
    fn simd_on_off_egress_is_byte_identical() {
        // The wide-word SIMD kernels are likewise a pure execution-path
        // choice inside the lane sweep: with lanes forced on, simd on
        // and off must yield byte-identical egress and identical
        // statistics for a header-heavy chain. CI re-runs this test
        // under both NFC_SIMD=0 and NFC_SIMD=1 to cover the env default.
        let sfc = || {
            Sfc::new(
                "fw-lb",
                vec![
                    Nf::firewall("fw", 100, 1),
                    Nf::ipv4_forwarder("rt", 64, 3),
                    Nf::nat("nat", [203, 0, 113, 1]),
                ],
            )
        };
        let collect = |simd: bool| {
            let mut dep = Deployment::new(sfc(), Policy::nfcompass())
                .with_batch_size(128)
                .with_lanes(true)
                .with_simd(simd);
            dep.run_collect(&mut traffic(256, 7), 12)
        };
        let (out_on, egress_on) = collect(true);
        let (out_off, egress_off) = collect(false);
        assert_eq!(egress_on, egress_off, "simd egress must be bit-identical");
        assert_eq!(out_on.egress_packets, out_off.egress_packets);
        assert_eq!(out_on.egress_bytes, out_off.egress_bytes);
    }

    #[test]
    fn packer_choice_never_changes_packet_contents() {
        // The SM-residency packer only moves kernels between devices —
        // it must never perturb packet contents. FFD and spread runs of
        // an oversubscribing chain produce byte-identical egress, and
        // both obey the same spill rule.
        let run = |packer: residency::PackStrategy| {
            let mut dep = Deployment::new(
                ipsec_chain(4),
                Policy::GpuOnly {
                    mode: GpuMode::Persistent,
                },
            )
            .with_batch_size(1024)
            .with_packer(packer);
            dep.run_collect(&mut traffic(256, 42), 12)
        };
        let (out_ffd, egress_ffd) = run(residency::PackStrategy::Ffd);
        let (out_spread, egress_spread) = run(residency::PackStrategy::Spread);
        assert_eq!(egress_ffd, egress_spread, "packer egress must match");
        assert_eq!(
            out_ffd.residency.resident.len(),
            out_spread.residency.resident.len(),
            "packers must agree on the resident set size"
        );
        assert_eq!(out_ffd.residency.spilled, out_spread.residency.spilled);
        // Spreading 4 kernels of 8 slots each balances 16/16 instead of
        // FFD's 24/8, so the spread run's peak device occupancy is
        // strictly lower and its simulated throughput at least as high.
        let peak = |out: &RunOutcome| {
            (0..out.residency.devices)
                .map(|d| out.residency.device_slots_used(d))
                .max()
                .unwrap_or(0)
        };
        assert!(peak(&out_spread) < peak(&out_ffd));
        assert!(out_spread.report.throughput_gbps >= out_ffd.report.throughput_gbps);
    }

    #[test]
    fn recalibrated_residency_pressure_changes_pack_order() {
        // Three IPsec kernels at batch 1024 demand 8 SM slots each.
        // With a recalibrated coefficient of zero, crossing the pressure
        // knee is free and the cost-greedy packer piles all 24 slots on
        // device 0; at the 0.35 anchor value the second kernel moves to
        // device 1 (16/8 split). Either way egress is byte-identical —
        // the coefficient only moves kernels between devices.
        let run = |pressure: Option<f64>| {
            let mut dep = Deployment::new(
                ipsec_chain(3),
                Policy::GpuOnly {
                    mode: GpuMode::Persistent,
                },
            )
            .with_batch_size(1024);
            if let Some(p) = pressure {
                dep = dep.with_residency_pressure(p);
            }
            dep.run_collect(&mut traffic(256, 42), 10)
        };
        let (out_zero, egress_zero) = run(Some(0.0));
        let (out_anchor, egress_anchor) = run(Some(0.35));
        let (out_default, egress_default) = run(None);
        assert_eq!(out_zero.residency.device_slots_used(0), 24);
        assert_eq!(out_zero.residency.device_slots_used(1), 0);
        assert_eq!(out_anchor.residency.device_slots_used(0), 16);
        assert_eq!(out_anchor.residency.device_slots_used(1), 8);
        assert_ne!(out_zero.residency.resident, out_anchor.residency.resident);
        // The override never changes the resident set or packet bytes.
        for out in [&out_zero, &out_anchor, &out_default] {
            assert_eq!(out.residency.resident.len(), 3);
            assert!(out.residency.spilled.is_empty());
        }
        assert_eq!(egress_zero, egress_anchor);
        assert_eq!(egress_zero, egress_default);
    }

    #[test]
    fn residency_fits_small_persistent_plans_entirely() {
        // A modest chain at batch 256 needs ~2 SM slots per kernel — far
        // inside 2 × 24 — so every stage stays resident and occupancy is
        // reported within capacity.
        let mut dep = Deployment::new(
            ipsec_chain(2),
            Policy::GpuOnly {
                mode: GpuMode::Persistent,
            },
        )
        .with_batch_size(256);
        let out = dep.run(&mut traffic(256, 42), 20);
        assert_eq!(out.residency.spilled.len(), 0);
        assert_eq!(out.residency.resident.len(), 2);
        assert!(out.residency.within_capacity());
    }

    #[test]
    fn residency_spills_oversubscribed_kernels_to_launch_per_batch() {
        // Batch 2048 fully offloaded needs 16 slots per kernel; four
        // kernels demand 64 slots against 2 × 24 available. The packer
        // must grant two and spill two — never adopt an oversubscribed
        // plan — and the spilled stages demonstrably fall back (the run
        // still completes with every packet accounted for).
        let mut dep = Deployment::new(
            ipsec_chain(4),
            Policy::GpuOnly {
                mode: GpuMode::Persistent,
            },
        )
        .with_batch_size(2048);
        let (out, egress) = dep.run_collect(&mut traffic(256, 42), 10);
        assert_eq!(out.residency.resident.len(), 2);
        assert_eq!(out.residency.spilled.len(), 2);
        assert!(out.residency.within_capacity());
        for d in 0..out.residency.devices {
            assert!(out.residency.device_slots_used(d) <= out.residency.slots_per_device);
        }
        // Residency is a temporal constraint only: egress is
        // byte-identical to the same chain forced launch-per-batch.
        let mut lpb = Deployment::new(
            ipsec_chain(4),
            Policy::GpuOnly {
                mode: GpuMode::LaunchPerBatch,
            },
        )
        .with_batch_size(2048);
        let (lpb_out, lpb_egress) = lpb.run_collect(&mut traffic(256, 42), 10);
        assert_eq!(egress, lpb_egress);
        assert!(lpb_out.residency.resident.is_empty());
    }

    #[test]
    fn cpu_only_reports_empty_residency() {
        let out = run(ipsec_chain(1), Policy::CpuOnly, 256, 10);
        assert!(out.residency.resident.is_empty());
        assert!(out.residency.spilled.is_empty());
    }

    #[test]
    fn nba_uses_launch_per_batch_and_local_ratios() {
        let out = run(ipsec_chain(2), Policy::NbaAdaptive, 256, 20);
        assert!(out.stage_offloads.iter().all(|(_, r)| *r <= 1.0));
        assert!(out.report.throughput_gbps > 0.0);
    }

    #[test]
    fn overload_is_tail_dropped_with_bounded_latency() {
        // 1500 B at 40 Gbps through a CPU-only DPI chain overloads it.
        let sfc = Sfc::new("dpi", vec![Nf::dpi("dpi"), Nf::dpi("dpi2")]);
        let out = run(sfc, Policy::CpuOnly, 1500, 120);
        assert!(out.report.dropped_batches > 0, "expected overload drops");
        // Bounded by the 50 ms admission cap plus a few batch service
        // times of pipeline drain.
        assert!(
            out.report.max_latency_ns <= 55e6,
            "latency bounded by queue, got {} ms",
            out.report.max_latency_ns / 1e6
        );
    }

    #[test]
    fn policy_labels() {
        assert_eq!(Policy::CpuOnly.label(), "CPU-only");
        assert_eq!(
            Policy::FixedRatio {
                ratio: 0.7,
                mode: GpuMode::Persistent
            }
            .label(),
            "70% offload"
        );
        assert!(Policy::nfcompass().label().contains("NFCompass"));
    }
}

#[cfg(test)]
mod churn_tests {
    use super::*;
    use nfc_packet::traffic::{PayloadPolicy, SizeDist, TrafficSpec};

    /// Traffic switches from no-match to full-match DPI load: with
    /// adaptation the runtime re-balances; the adapted phase-2 throughput
    /// must beat the stale plan's.
    #[test]
    fn adaptation_tracks_traffic_churn() {
        let phases = || {
            vec![
                TrafficGenerator::new(
                    TrafficSpec::udp(SizeDist::Fixed(512)).with_payload(
                        PayloadPolicy::MatchRatio {
                            patterns: nfc_nf::Nf::default_ids_signatures(),
                            ratio: 0.0,
                        },
                    ),
                    5,
                ),
                TrafficGenerator::new(
                    TrafficSpec::udp(SizeDist::Fixed(512)).with_payload(
                        PayloadPolicy::MatchRatio {
                            patterns: nfc_nf::Nf::default_ids_signatures(),
                            ratio: 1.0,
                        },
                    ),
                    6,
                ),
            ]
        };
        let sfc = || Sfc::new("dpi", vec![nfc_nf::Nf::dpi("dpi")]);
        let run = |adapt: bool| {
            let mut dep = Deployment::new(sfc(), Policy::nfcompass()).with_batch_size(256);
            let mut ph = phases();
            dep.run_phases(&mut ph, 20, adapt)
        };
        let stale = run(false);
        let adapted = run(true);
        assert_eq!(stale.len(), 2);
        // Phase 1 (profiled traffic) similar either way.
        let ratio1 = adapted[0].report.throughput_gbps / stale[0].report.throughput_gbps;
        assert!((0.8..=1.25).contains(&ratio1), "phase 1 ratio {ratio1}");
        // Phase 2 (shifted traffic): adaptation must not lose, and should
        // typically win.
        assert!(
            adapted[1].report.throughput_gbps >= 0.95 * stale[1].report.throughput_gbps,
            "adapted {} vs stale {}",
            adapted[1].report.throughput_gbps,
            stale[1].report.throughput_gbps
        );
    }

    #[test]
    fn phases_share_a_monotonic_timeline() {
        let mut dep = Deployment::new(Sfc::new("p", vec![nfc_nf::Nf::probe("p")]), Policy::CpuOnly)
            .with_batch_size(64);
        let mut phases = vec![
            TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(64)), 1),
            TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(128)), 2),
        ];
        let outs = dep.run_phases(&mut phases, 10, true);
        assert_eq!(outs.len(), 2);
        for o in &outs {
            assert!(o.report.throughput_gbps > 0.0);
            assert_eq!(o.report.offered_batches, 10);
        }
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_panic() {
        let mut dep = Deployment::new(Sfc::new("p", vec![nfc_nf::Nf::probe("p")]), Policy::CpuOnly);
        dep.run_phases(&mut [], 1, true);
    }
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;
    use nfc_packet::traffic::{PayloadPolicy, SizeDist, TrafficSpec};

    fn dpi_phases(rate_gbps: f64) -> Vec<TrafficGenerator> {
        let spec = |ratio: f64, seed: u64| {
            TrafficGenerator::new(
                TrafficSpec::udp(SizeDist::Fixed(512))
                    .with_rate_gbps(rate_gbps)
                    .with_payload(PayloadPolicy::MatchRatio {
                        patterns: nfc_nf::Nf::default_ids_signatures(),
                        ratio,
                    }),
                seed,
            )
        };
        vec![spec(0.0, 5), spec(1.0, 6)]
    }

    fn cfg() -> ControllerConfig {
        ControllerConfig {
            epoch_batches: 8,
            window_epochs: 2,
            threshold: 0.3,
            hysteresis_epochs: 2,
            cooldown_epochs: 2,
            refine_latency_epochs: 2,
            enabled: true,
        }
    }

    #[test]
    fn controller_absorbs_match_ratio_flip() {
        let run = |cfg: &ControllerConfig| {
            let sfc = Sfc::new("dpi", vec![Nf::dpi("dpi")]);
            let mut dep = Deployment::new(sfc, Policy::nfcompass()).with_batch_size(256);
            dep.run_adaptive(&mut dpi_phases(40.0), 48, cfg)
        };
        let (adapted, report) = run(&cfg());
        let (stale, oracle_report) = run(&ControllerConfig::disabled());
        assert!(report.epochs >= 8);
        assert!(report.triggers >= 1, "shift must trip the detector");
        assert!(report.applied() >= 1, "fast re-partition must adopt a plan");
        assert_eq!(oracle_report.triggers, 0);
        assert_eq!(oracle_report.applied(), 0);
        // The adapted phase-2 plan must not lose to the stale plan, and
        // the swap must be visible in the timeline records.
        assert!(
            adapted[1].report.throughput_gbps >= 0.95 * stale[1].report.throughput_gbps,
            "adapted {} vs stale {}",
            adapted[1].report.throughput_gbps,
            stale[1].report.throughput_gbps
        );
        let applied: Vec<_> = report.adaptations.iter().filter(|a| a.applied).collect();
        assert!(applied
            .iter()
            .all(|a| a.swap_ns > 0.0 || a.old_ratio == 0.0));
    }

    #[test]
    fn adaptive_controller_is_loss_free_and_functionally_identical() {
        // Under-capacity traffic: neither run tail-drops, so the enabled
        // controller must be bit-identical to the disabled oracle on
        // every functional observable, whatever plans it swaps.
        let run = |cfg: &ControllerConfig| {
            let sfc = Sfc::new("dpi", vec![Nf::dpi("dpi")]);
            let mut dep = Deployment::new(sfc, Policy::nfcompass()).with_batch_size(128);
            dep.run_adaptive_collect(&mut dpi_phases(4.0), 40, cfg)
        };
        let (on_out, on_rep, on_egress) = run(&cfg());
        let (off_out, _, off_egress) = run(&ControllerConfig::disabled());
        for o in on_out.iter().chain(off_out.iter()) {
            assert_eq!(o.report.dropped_batches, 0, "must stay under capacity");
        }
        assert_eq!(on_egress, off_egress, "egress must be byte-identical");
        assert_eq!(on_out[0].stage_stats, off_out[0].stage_stats);
        assert_eq!(on_out[0].egress_packets, off_out[0].egress_packets);
        assert_eq!(on_out[0].egress_bytes, off_out[0].egress_bytes);
        assert!(on_rep.epochs > 0);
    }

    #[test]
    fn steady_traffic_never_swaps() {
        let sfc = Sfc::new("dpi", vec![Nf::dpi("dpi")]);
        let mut dep = Deployment::new(sfc, Policy::nfcompass()).with_batch_size(128);
        let mut phases = vec![TrafficGenerator::new(
            TrafficSpec::udp(SizeDist::Fixed(512)).with_rate_gbps(20.0),
            7,
        )];
        let (_, report) = dep.run_adaptive(&mut phases, 80, &cfg());
        assert!(report.epochs >= 10);
        assert_eq!(report.applied(), 0, "no drift, no swap: {report:?}");
    }

    #[test]
    fn non_partitioned_policy_observes_but_never_swaps() {
        let sfc = Sfc::new("dpi", vec![Nf::dpi("dpi")]);
        let mut dep = Deployment::new(sfc, Policy::CpuOnly).with_batch_size(128);
        let (_, report) = dep.run_adaptive(&mut dpi_phases(4.0), 40, &cfg());
        assert!(report.epochs > 0);
        assert_eq!(report.applied(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn adaptive_empty_phases_panic() {
        let sfc = Sfc::new("p", vec![Nf::probe("p")]);
        let mut dep = Deployment::new(sfc, Policy::CpuOnly);
        dep.run_adaptive(&mut [], 1, &ControllerConfig::default());
    }
}

#[cfg(test)]
mod forced_branch_tests {
    use super::*;
    use nfc_packet::traffic::{SizeDist, TrafficSpec};

    #[test]
    fn forced_branches_override_the_analyzer() {
        // Two identical IPsec NFs: the analyzer would keep them
        // sequential (WAW), but the forced structure runs them parallel
        // and the XOR merge accepts their identical outputs.
        let sfc = Sfc::new(
            "ipsec2",
            vec![nfc_nf::Nf::ipsec("a"), nfc_nf::Nf::ipsec("b")],
        );
        let mut dep = Deployment::new(
            sfc,
            Policy::ReorgOnly {
                max_branches: 2,
                synthesize: false,
                ratio: 0.0,
                mode: GpuMode::Persistent,
            },
        )
        .with_batch_size(64)
        .with_forced_branches(vec![vec![0], vec![1]]);
        let mut t = TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(128)), 3);
        let out = dep.run(&mut t, 8);
        assert_eq!(out.width, 2);
        assert_eq!(out.effective_length, 1);
        assert_eq!(out.merge_conflicts, 0, "identical outputs must merge");
        assert_eq!(out.egress_packets, 8 * 64);
    }

    #[test]
    fn forced_sequential_matches_default_sequential() {
        let mk = || Sfc::new("c", vec![nfc_nf::Nf::ipsec("a"), nfc_nf::Nf::dpi("b")]);
        let run = |forced: Option<Vec<Vec<usize>>>| {
            let mut dep = Deployment::new(mk(), Policy::CpuOnly).with_batch_size(64);
            if let Some(b) = forced {
                dep = dep.with_forced_branches(b);
            }
            let mut t = TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(256)), 9);
            let o = dep.run(&mut t, 8);
            (o.egress_packets, o.report.throughput_gbps.to_bits())
        };
        assert_eq!(run(None), run(Some(vec![vec![0, 1]])));
    }
}

#[cfg(test)]
mod flow_forensics_tests {
    use super::*;
    use nfc_packet::traffic::{SizeDist, TrafficSpec};

    fn traffic(seed: u64) -> TrafficGenerator {
        TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(512)), seed)
    }

    fn chain() -> Sfc {
        Sfc::new(
            "fw-nat",
            vec![Nf::firewall("fw", 100, 1), Nf::nat("nat", [203, 0, 113, 1])],
        )
    }

    /// Differential: arming per-flow tracing at the most aggressive
    /// rate (every flow sampled) must not change a single functional
    /// or temporal fact — egress bytes, per-element statistics, flow-
    /// cache counters — under serial, parallel and adaptive policies.
    #[test]
    fn flow_tracing_on_off_is_bit_identical() {
        for policy in [Policy::CpuOnly, Policy::nfcompass(), Policy::NbaAdaptive] {
            let run = |rate: u32| {
                let mut dep = Deployment::new(chain(), policy)
                    .with_batch_size(128)
                    .with_telemetry(TelemetryMode::Memory);
                dep = if rate != 0 {
                    dep.with_flow_trace(rate)
                } else {
                    dep.without_flow_trace()
                };
                dep.run_collect(&mut traffic(7), 12)
            };
            let (out_on, egress_on) = run(1);
            let (out_off, egress_off) = run(0);
            assert_eq!(egress_on, egress_off, "{policy:?}: traced egress differs");
            assert_eq!(out_on.egress_packets, out_off.egress_packets);
            assert_eq!(out_on.egress_bytes, out_off.egress_bytes);
            assert_eq!(out_on.stage_stats, out_off.stage_stats);
            assert_eq!(out_on.flow_cache, out_off.flow_cache);
            assert_eq!(
                out_on.report.throughput_gbps.to_bits(),
                out_off.report.throughput_gbps.to_bits(),
                "{policy:?}: tracing perturbed the simulated timeline"
            );
            // The armed run must actually have recorded flow points —
            // a silently dead plane would pass the differential.
            let traced = out_on.telemetry.expect("telemetry digest");
            assert!(
                traced
                    .trace
                    .iter()
                    .any(|ev| matches!(ev.kind, EventKind::FlowPoint { .. })),
                "{policy:?}: no FlowPoint events recorded at rate 1"
            );
        }
    }

    /// A sampled flow's stitched timeline must telescope: ingress is
    /// the earliest point, egress the latest, and the sum of the
    /// consecutive hop deltas IS the end-to-end latency, exactly.
    #[test]
    fn sampled_flow_timeline_telescopes_to_e2e() {
        let mut dep = Deployment::new(chain(), Policy::nfcompass())
            .with_batch_size(128)
            .with_telemetry(TelemetryMode::Memory)
            .with_flow_trace(1);
        let out = dep.run(&mut traffic(7), 8);
        let digest = out.telemetry.expect("telemetry digest");
        let mut flows: std::collections::BTreeMap<u32, Vec<(f64, &'static str)>> =
            Default::default();
        for ev in &digest.trace {
            if let EventKind::FlowPoint { flow, point, .. } = ev.kind {
                let at = ev.sim.expect("flow points are sim instants").start_ns;
                flows.entry(flow).or_default().push((at, point));
            }
        }
        assert!(!flows.is_empty(), "rate-1 sampling saw no flows");
        let mut checked = 0;
        for (flow, mut points) in flows {
            points.sort_by(|a, b| a.0.total_cmp(&b.0));
            let first = points.first().unwrap();
            let last = points.last().unwrap();
            if points.len() < 2 {
                continue;
            }
            assert_eq!(first.1, "ingress", "flow {flow:#010x} starts at ingress");
            assert_eq!(last.1, "egress", "flow {flow:#010x} ends at egress");
            let e2e = last.0 - first.0;
            let hop_sum: f64 = points.windows(2).map(|w| w[1].0 - w[0].0).sum();
            assert!(
                (hop_sum - e2e).abs() < 1e-9,
                "flow {flow:#010x}: hops {hop_sum} != e2e {e2e}"
            );
            checked += 1;
        }
        assert!(checked > 0, "no multi-point flow timelines to check");
    }

    /// An injected SLO breach must write a flight-recorder postmortem
    /// containing the flow events leading up to the offending epoch.
    #[test]
    fn slo_breach_dumps_flight_recorder_with_flow_events() {
        let dir = std::env::temp_dir().join(format!("nfc_flight_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let stem = dir.join("flight").to_string_lossy().into_owned();
        let sfc = Sfc::new("dpi", vec![Nf::dpi("dpi"), Nf::dpi("dpi2")]);
        let mut dep = Deployment::new(sfc, Policy::CpuOnly)
            .with_batch_size(256)
            .with_telemetry(TelemetryMode::Memory)
            .with_flow_trace(1)
            .with_flight_stem(stem.clone())
            .with_slo(SloSpec {
                p99_latency_ns: 1.0,
                epoch_batches: 8,
                ..Default::default()
            });
        let out = dep.run(
            &mut TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(1500)), 42),
            40,
        );
        let digest = out.telemetry.expect("telemetry digest");
        let dump_ev = digest
            .trace
            .iter()
            .find_map(|ev| match ev.kind {
                EventKind::FlightDump { reason, events } => Some((reason, events)),
                _ => None,
            })
            .expect("breach must emit a FlightDump event");
        assert_eq!(dump_ev.0, "slo_burn");
        assert!(dump_ev.1 > 0, "dump must carry ring events");
        let path = format!("{stem}.slo_burn.json");
        let body = std::fs::read_to_string(&path).expect("dump file written");
        assert!(
            body.contains("\"flow_"),
            "postmortem must contain flow events"
        );
        assert!(
            body.contains("slo_burn"),
            "postmortem must contain the breach verdict"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The on-demand dump path works without any breach, and the
    /// `manual` reason is kept distinct from breach-triggered dumps.
    #[test]
    fn manual_flight_dump_writes_postmortem() {
        let dir = std::env::temp_dir().join(format!("nfc_manual_flight_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let stem = dir.join("flight").to_string_lossy().into_owned();
        let dep = Deployment::new(chain(), Policy::CpuOnly)
            .with_batch_size(128)
            .with_telemetry(TelemetryMode::Memory)
            .with_flow_trace(1)
            .with_flight_stem(stem.clone());
        let tel = Telemetry::new(dep.telemetry.clone());
        let handle = tel.handle();
        let mut sim = PipelineSim::new();
        sim.set_recorder(handle.recorder());
        let res = PlatformResources::register(&mut sim, &dep.model);
        let mut user_base = 1u64;
        let mut dep = dep;
        let mut gen = traffic(7);
        let mut prep = dep.prepare(&mut sim, &res, &mut gen, &[], &mut user_base, &handle);
        for _ in 0..4 {
            let batch = gen.batch(128);
            prep.process_batch(&mut sim, &res, batch);
        }
        let path = prep.dump_flight("manual").expect("ring has events");
        assert!(path.ends_with(".manual.json"), "{path}");
        assert!(std::path::Path::new(&path).exists());
        assert_eq!(prep.flight_dumps(), vec![path.clone()]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
