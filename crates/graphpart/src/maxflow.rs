//! Dinic max-flow / min-cut and the MFMC task-assignment formulation.
//!
//! The paper motivates its allocator with Max-Flow/Min-Cut clustering
//! ("MFMC is widely used to model flow-based clustering problems ... to
//! find the graph partitions with the least inter-cluster communication
//! costs"). This module provides the exact solver for that formulation:
//! binary CPU/GPU labeling minimizing `Σ unary(v, side) + Σ w_e · [cut]`
//! reduces to an s–t min cut, solved with Dinic's algorithm. It is exact
//! for that energy but blind to load *balance*, which is why the paper
//! (and our allocator) layer KL's balance term on top — the ablation
//! bench quantifies the gap.

/// Dinic max-flow solver over an explicit residual graph.
#[derive(Debug, Clone)]
pub struct Dinic {
    // Edge list: to, capacity; reverse edge at idx ^ 1.
    to: Vec<usize>,
    cap: Vec<f64>,
    head: Vec<Vec<usize>>,
    n: usize,
}

impl Dinic {
    /// Creates a solver with `n` nodes.
    pub fn new(n: usize) -> Self {
        Dinic {
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); n],
            n,
        }
    }

    /// Adds a directed edge `u -> v` with capacity `c` (and a zero-capacity
    /// reverse edge).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `c < 0`.
    pub fn add_edge(&mut self, u: usize, v: usize, c: f64) {
        assert!(u < self.n && v < self.n, "endpoint out of range");
        assert!(c >= 0.0, "negative capacity");
        self.head[u].push(self.to.len());
        self.to.push(v);
        self.cap.push(c);
        self.head[v].push(self.to.len());
        self.to.push(u);
        self.cap.push(0.0);
    }

    /// Adds an undirected edge (capacity `c` both ways).
    pub fn add_undirected(&mut self, u: usize, v: usize, c: f64) {
        self.head[u].push(self.to.len());
        self.to.push(v);
        self.cap.push(c);
        self.head[v].push(self.to.len());
        self.to.push(u);
        self.cap.push(c);
    }

    fn bfs(&self, s: usize, level: &mut [i32]) {
        level.iter_mut().for_each(|l| *l = -1);
        level[s] = 0;
        let mut q = std::collections::VecDeque::from([s]);
        while let Some(u) = q.pop_front() {
            for &e in &self.head[u] {
                if self.cap[e] > 1e-12 && level[self.to[e]] < 0 {
                    level[self.to[e]] = level[u] + 1;
                    q.push_back(self.to[e]);
                }
            }
        }
    }

    fn dfs(&mut self, u: usize, t: usize, f: f64, level: &[i32], iter: &mut [usize]) -> f64 {
        if u == t {
            return f;
        }
        while iter[u] < self.head[u].len() {
            let e = self.head[u][iter[u]];
            let v = self.to[e];
            if self.cap[e] > 1e-12 && level[v] == level[u] + 1 {
                let d = self.dfs(v, t, f.min(self.cap[e]), level, iter);
                if d > 1e-12 {
                    self.cap[e] -= d;
                    self.cap[e ^ 1] += d;
                    return d;
                }
            }
            iter[u] += 1;
        }
        0.0
    }

    /// Computes the max flow from `s` to `t`, consuming residual capacity.
    pub fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        let mut flow = 0.0;
        let mut level = vec![-1i32; self.n];
        loop {
            self.bfs(s, &mut level);
            if level[t] < 0 {
                return flow;
            }
            let mut iter = vec![0usize; self.n];
            loop {
                let f = self.dfs(s, t, f64::INFINITY, &level, &mut iter);
                if f <= 1e-12 {
                    break;
                }
                flow += f;
            }
        }
    }

    /// After [`Dinic::max_flow`], returns which nodes are on the source
    /// side of the min cut.
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.n];
        seen[s] = true;
        let mut q = std::collections::VecDeque::from([s]);
        while let Some(u) = q.pop_front() {
            for &e in &self.head[u] {
                if self.cap[e] > 1e-12 && !seen[self.to[e]] {
                    seen[self.to[e]] = true;
                    q.push_back(self.to[e]);
                }
            }
        }
        seen
    }
}

/// Exact MFMC assignment: minimizes
/// `Σ_v cost(v, side_v) + Σ_{(u,v)} w · [side_u ≠ side_v]`.
///
/// `unary[v] = (cpu_cost, gpu_cost)`; infinite costs pin a node. Returns
/// `true` for GPU.
pub fn mfmc_assign(unary: &[(f64, f64)], edges: &[(usize, usize, f64)]) -> Vec<bool> {
    let n = unary.len();
    if n == 0 {
        return Vec::new();
    }
    // Source = CPU side, sink = GPU side. Node u cut from source (=GPU
    // label) pays cap(s->u); classic construction: cap(s->u) = gpu_cost
    // (paid when u labeled CPU? sign conventions:) we use:
    //   s->v capacity = cost if v is GPU (cut when v on GPU side of... )
    // Standard: label v = sink-side => pays cap(s->v). So cap(s->v) must
    // be the cost of the sink label (GPU), cap(v->t) the cost of CPU.
    let big = 1e18;
    let s = n;
    let t = n + 1;
    let mut dinic = Dinic::new(n + 2);
    for (v, &(cpu, gpu)) in unary.iter().enumerate() {
        dinic.add_edge(s, v, if gpu.is_finite() { gpu } else { big });
        dinic.add_edge(v, t, if cpu.is_finite() { cpu } else { big });
    }
    for &(u, v, w) in edges {
        dinic.add_undirected(u, v, w);
    }
    dinic.max_flow(s, t);
    let source_side = dinic.min_cut_source_side(s);
    // Source side keeps the s->v edge uncut, i.e. does NOT pay the GPU
    // cost => source side is CPU... cut edges are s->v for v on sink side.
    // v on sink side pays cap(s->v) = gpu cost => sink side = GPU? No:
    // if v is on the SOURCE side, the cut severs v->t (cap = cpu cost):
    // v pays the CPU cost => source side = CPU label. Sink side pays
    // cap(s->v) = gpu cost => GPU label.
    (0..n).map(|v| !source_side[v]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_max_flow() {
        // Classic 4-node example: s=0, t=3; max flow 2+1=... construct:
        // 0->1 (3), 0->2 (2), 1->2 (5), 1->3 (2), 2->3 (3). Max flow = 5.
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 3.0);
        d.add_edge(0, 2, 2.0);
        d.add_edge(1, 2, 5.0);
        d.add_edge(1, 3, 2.0);
        d.add_edge(2, 3, 3.0);
        assert!((d.max_flow(0, 3) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn min_cut_separates() {
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 10.0);
        d.add_edge(1, 2, 1.0); // bottleneck
        d.add_edge(2, 3, 10.0);
        assert!((d.max_flow(0, 3) - 1.0).abs() < 1e-9);
        let side = d.min_cut_source_side(0);
        assert_eq!(side, vec![true, true, false, false]);
    }

    #[test]
    fn mfmc_prefers_cheap_labels() {
        // Two independent nodes: one cheap on CPU, one cheap on GPU.
        let unary = vec![(1.0, 100.0), (100.0, 1.0)];
        let labels = mfmc_assign(&unary, &[]);
        assert_eq!(labels, vec![false, true]);
    }

    #[test]
    fn mfmc_strong_edge_keeps_pair_together() {
        // Node 0 slightly prefers CPU, node 1 slightly prefers GPU, but a
        // heavy edge forces them together on the globally cheaper side.
        let unary = vec![(1.0, 3.0), (3.0, 1.0)];
        let labels = mfmc_assign(&unary, &[(0, 1, 100.0)]);
        assert_eq!(labels[0], labels[1]);
    }

    #[test]
    fn mfmc_respects_infinite_pins() {
        let unary = vec![(1.0, f64::INFINITY), (1000.0, 1.0)];
        let labels = mfmc_assign(&unary, &[(0, 1, 0.5)]);
        assert!(!labels[0], "infinite GPU cost pins node 0 to CPU");
        assert!(labels[1]);
    }

    #[test]
    fn mfmc_energy_is_optimal_on_small_instances() {
        // Brute-force check on random 8-node instances.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..20 {
            let n = 8;
            let unary: Vec<(f64, f64)> = (0..n)
                .map(|_| (rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
                .collect();
            let edges: Vec<(usize, usize, f64)> = (0..10)
                .map(|_| {
                    let u = rng.gen_range(0..n);
                    let mut v = rng.gen_range(0..n);
                    while v == u {
                        v = rng.gen_range(0..n);
                    }
                    (u, v, rng.gen_range(0.0..5.0))
                })
                .collect();
            let energy = |labels: &[bool]| -> f64 {
                let mut e = 0.0;
                for (v, &(c, g)) in unary.iter().enumerate() {
                    e += if labels[v] { g } else { c };
                }
                for &(u, v, w) in &edges {
                    if labels[u] != labels[v] {
                        e += w;
                    }
                }
                e
            };
            let got = energy(&mfmc_assign(&unary, &edges));
            let mut best = f64::INFINITY;
            for mask in 0..(1u32 << n) {
                let labels: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
                best = best.min(energy(&labels));
            }
            assert!((got - best).abs() < 1e-6, "got {got}, optimal {best}");
        }
    }

    #[test]
    fn empty_instance() {
        assert!(mfmc_assign(&[], &[]).is_empty());
    }
}
