//! Weighted-graph partitioning algorithms for heterogeneous task mapping.
//!
//! The paper's task allocator (§IV-C3) maps the expanded Click element
//! graph onto CPU and GPU with two algorithms, both implemented here over
//! a shared [`PartGraph`] representation in which every node carries *two*
//! weights — its execution time on the CPU and on the GPU — and every edge
//! carries the data-transfer time paid when its endpoints land on
//! different processors:
//!
//! * [`kl`] — a modified Kernighan–Lin refinement with METIS-style
//!   multilevel coarsening (heavy-edge matching), the paper's primary
//!   algorithm.
//! * [`agglomerative`] — the paper's light-weight seed-based agglomerative
//!   clustering (O(k log k) in the edge count) for fast re-partitioning
//!   under churn.
//! * [`maxflow`] — a Dinic max-flow/min-cut solver, the MFMC formulation
//!   the paper cites as the underlying model (used as an ablation
//!   baseline: exact for cut + unary cost, oblivious to load balance).
//!
//! The objective treated throughout is pipeline makespan:
//! `max(cpu_load, gpu_load) + cut_transfer_time` (see [`Objective`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agglomerative;
pub mod graph;
pub mod kl;
pub mod maxflow;

pub use graph::{Objective, PartGraph, Partition, Side};
