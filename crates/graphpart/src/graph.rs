//! The two-weight partition graph and the makespan objective.

/// Which processor a node is assigned to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The CPU partition.
    Cpu,
    /// The GPU partition.
    Gpu,
}

impl Side {
    /// The other side.
    pub fn other(self) -> Side {
        match self {
            Side::Cpu => Side::Gpu,
            Side::Gpu => Side::Cpu,
        }
    }

    /// Index (CPU = 0, GPU = 1) for weight arrays.
    pub fn index(self) -> usize {
        match self {
            Side::Cpu => 0,
            Side::Gpu => 1,
        }
    }
}

/// An undirected weighted graph for CPU/GPU bipartitioning.
///
/// Node weight `w[side]` is the node's execution time on that processor;
/// edge weight is the transfer time paid when the edge is cut. Nodes may
/// be *pinned* to one side (elements with no GPU implementation are pinned
/// to the CPU).
#[derive(Debug, Clone, Default)]
pub struct PartGraph {
    weights: Vec<[f64; 2]>,
    pins: Vec<Option<Side>>,
    adj: Vec<Vec<(usize, f64)>>,
    edges: Vec<(usize, usize, f64)>,
}

impl PartGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        PartGraph::default()
    }

    /// Adds a node with per-side execution costs, returning its index.
    pub fn add_node(&mut self, cpu_cost: f64, gpu_cost: f64) -> usize {
        self.weights.push([cpu_cost, gpu_cost]);
        self.pins.push(None);
        self.adj.push(Vec::new());
        self.weights.len() - 1
    }

    /// Adds a node pinned to `side` (e.g. CPU-only elements).
    pub fn add_pinned(&mut self, cpu_cost: f64, gpu_cost: f64, side: Side) -> usize {
        let id = self.add_node(cpu_cost, gpu_cost);
        self.pins[id] = Some(side);
        id
    }

    /// Adds an undirected edge with transfer weight `w`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or `u == v`.
    pub fn add_edge(&mut self, u: usize, v: usize, w: f64) {
        assert!(u < self.len() && v < self.len(), "endpoint out of range");
        assert_ne!(u, v, "self-loops not allowed");
        self.adj[u].push((v, w));
        self.adj[v].push((u, w));
        self.edges.push((u, v, w));
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Per-side weights of node `v`.
    pub fn weight(&self, v: usize) -> [f64; 2] {
        self.weights[v]
    }

    /// Pin state of node `v`.
    pub fn pin(&self, v: usize) -> Option<Side> {
        self.pins[v]
    }

    /// Neighbours of `v` with edge weights.
    pub fn neighbors(&self, v: usize) -> &[(usize, f64)] {
        &self.adj[v]
    }

    /// All edges `(u, v, w)`.
    pub fn edges(&self) -> &[(usize, usize, f64)] {
        &self.edges
    }
}

/// An assignment of every node to a side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition(pub Vec<Side>);

impl Partition {
    /// All nodes on one side.
    pub fn all(n: usize, side: Side) -> Self {
        Partition(vec![side; n])
    }

    /// The side of node `v`.
    pub fn side(&self, v: usize) -> Side {
        self.0[v]
    }

    /// Number of nodes assigned to `side`.
    pub fn count(&self, side: Side) -> usize {
        self.0.iter().filter(|&&s| s == side).count()
    }

    /// Checks that every pinned node is on its pinned side.
    pub fn respects_pins(&self, g: &PartGraph) -> bool {
        (0..g.len()).all(|v| g.pin(v).map(|p| p == self.0[v]).unwrap_or(true))
    }
}

/// The optimization objective: pipeline makespan.
///
/// A batch's processing time is bounded by the busier processor plus the
/// CPU↔GPU transfers on cut edges, so we minimize
/// `max(load_cpu, load_gpu) + transfer_penalty * cut`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objective {
    /// Multiplier on cut weight (1.0 = edge weights are already in the
    /// same time unit as node weights).
    pub transfer_penalty: f64,
}

impl Default for Objective {
    fn default() -> Self {
        Objective {
            transfer_penalty: 1.0,
        }
    }
}

impl Objective {
    /// Per-side total loads under `part`.
    pub fn loads(&self, g: &PartGraph, part: &Partition) -> [f64; 2] {
        let mut loads = [0.0; 2];
        for v in 0..g.len() {
            let s = part.side(v);
            loads[s.index()] += g.weight(v)[s.index()];
        }
        loads
    }

    /// Total weight of cut edges under `part`.
    pub fn cut(&self, g: &PartGraph, part: &Partition) -> f64 {
        g.edges()
            .iter()
            .filter(|(u, v, _)| part.side(*u) != part.side(*v))
            .map(|(_, _, w)| w)
            .sum()
    }

    /// The makespan cost.
    pub fn cost(&self, g: &PartGraph, part: &Partition) -> f64 {
        let loads = self.loads(g, part);
        loads[0].max(loads[1]) + self.transfer_penalty * self.cut(g, part)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> PartGraph {
        let mut g = PartGraph::new();
        let a = g.add_node(10.0, 2.0);
        let b = g.add_node(10.0, 2.0);
        let c = g.add_pinned(5.0, 100.0, Side::Cpu);
        g.add_edge(a, b, 1.0);
        g.add_edge(b, c, 4.0);
        g
    }

    #[test]
    fn loads_and_cut() {
        let g = line3();
        let obj = Objective::default();
        let part = Partition(vec![Side::Gpu, Side::Gpu, Side::Cpu]);
        assert_eq!(obj.loads(&g, &part), [5.0, 4.0]);
        assert_eq!(obj.cut(&g, &part), 4.0);
        assert_eq!(obj.cost(&g, &part), 9.0);
        assert!(part.respects_pins(&g));
    }

    #[test]
    fn pin_violation_detected() {
        let g = line3();
        let bad = Partition::all(3, Side::Gpu);
        assert!(!bad.respects_pins(&g));
    }

    #[test]
    fn all_cpu_has_no_cut() {
        let g = line3();
        let obj = Objective::default();
        let part = Partition::all(3, Side::Cpu);
        assert_eq!(obj.cut(&g, &part), 0.0);
        assert_eq!(obj.cost(&g, &part), 25.0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut g = PartGraph::new();
        let a = g.add_node(1.0, 1.0);
        g.add_edge(a, a, 1.0);
    }
}
