//! Modified Kernighan–Lin partitioning with METIS-style multilevel
//! coarsening.
//!
//! The paper (§IV-C3): "Our first graph partitioning algorithm is
//! implemented as a modified Kernighan-Lin (KL) Algorithm using METIS.
//! ... The algorithm iteratively swaps X and Y, two subsets of elements
//! that belong to G1 and G2, and then examines the gain function
//! determined by the removed edges and balanced tasks between two
//! graphs."
//!
//! Implementation notes: the refinement is a Fiduccia–Mattheyses-style
//! single-move variant of KL (the standard "modified KL"): each pass
//! tentatively moves every unlocked, unpinned node once in best-gain
//! order, then rolls back to the best prefix. Gains are computed against
//! the full makespan objective, which folds the paper's "removed edges
//! and balanced tasks" into one number. Multilevel coarsening uses
//! heavy-edge matching as in METIS.

use crate::graph::{Objective, PartGraph, Partition, Side};
use nfc_telemetry::{EventKind, Recorder};

/// Options for the KL partitioner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KlOptions {
    /// Maximum refinement passes per level.
    pub max_passes: usize,
    /// Coarsen until at most this many nodes remain.
    pub coarsen_to: usize,
    /// Objective parameters.
    pub objective: Objective,
}

impl Default for KlOptions {
    fn default() -> Self {
        KlOptions {
            max_passes: 12,
            coarsen_to: 32,
            objective: Objective::default(),
        }
    }
}

/// Partitions `g` with multilevel KL.
///
/// Pinned nodes never move. Returns a partition respecting all pins.
pub fn partition(g: &PartGraph, opts: KlOptions) -> Partition {
    partition_traced(g, opts, &mut Recorder::disabled())
}

/// [`partition`] recording one telemetry event per refinement pass
/// (moves applied, objective cost before/after) into `rec`.
pub fn partition_traced(g: &PartGraph, opts: KlOptions, rec: &mut Recorder) -> Partition {
    if g.is_empty() {
        return Partition(Vec::new());
    }
    multilevel(g, &opts, 0, rec)
}

/// Flat (single-level) KL refinement from a greedy initial assignment —
/// exposed for the ablation benches comparing multilevel vs flat.
pub fn partition_flat(g: &PartGraph, opts: KlOptions) -> Partition {
    partition_flat_traced(g, opts, &mut Recorder::disabled())
}

/// [`partition_flat`] with per-pass telemetry (see [`partition_traced`]).
pub fn partition_flat_traced(g: &PartGraph, opts: KlOptions, rec: &mut Recorder) -> Partition {
    let mut part = greedy_initial(g);
    refine(g, &mut part, &opts, rec);
    part
}

/// Warm-start refinement: runs the KL refinement passes from `warm`
/// instead of a greedy seed — the incremental re-partition entry point
/// for online re-planning, where the previous cut is usually a few
/// moves away from the new optimum. Sides of `warm` are re-clamped to
/// the graph's pins first, so a warm partition from a *different*
/// pin configuration (e.g. after an NF gained offloadable work) is
/// still legal. The result never costs more than `warm` under `opts`'
/// objective: refinement passes only apply improving prefixes.
pub fn refine_partition_traced(
    g: &PartGraph,
    warm: &Partition,
    opts: KlOptions,
    rec: &mut Recorder,
) -> Partition {
    if g.is_empty() {
        return Partition(Vec::new());
    }
    let mut part = if warm.0.len() == g.len() {
        warm.clone()
    } else {
        greedy_initial(g)
    };
    for v in 0..g.len() {
        if let Some(p) = g.pin(v) {
            part.0[v] = p;
        }
    }
    refine(g, &mut part, &opts, rec);
    part
}

/// [`refine_partition_traced`] without telemetry.
pub fn refine_partition(g: &PartGraph, warm: &Partition, opts: KlOptions) -> Partition {
    refine_partition_traced(g, warm, opts, &mut Recorder::disabled())
}

fn multilevel(g: &PartGraph, opts: &KlOptions, depth: usize, rec: &mut Recorder) -> Partition {
    if g.len() <= opts.coarsen_to || depth > 20 {
        return partition_flat_traced(g, *opts, rec);
    }
    // --- Coarsen: heavy-edge matching ---
    let n = g.len();
    let mut matched = vec![usize::MAX; n];
    // Visit nodes in order of total incident weight (heaviest first).
    let mut order: Vec<usize> = (0..n).collect();
    let incident: Vec<f64> = (0..n)
        .map(|v| g.neighbors(v).iter().map(|(_, w)| w).sum())
        .collect();
    order.sort_by(|&a, &b| incident[b].partial_cmp(&incident[a]).unwrap());
    for &v in &order {
        if matched[v] != usize::MAX {
            continue;
        }
        // Heaviest unmatched, pin-compatible neighbour.
        let mut best: Option<(usize, f64)> = None;
        for &(u, w) in g.neighbors(v) {
            if matched[u] != usize::MAX {
                continue;
            }
            let compatible = match (g.pin(v), g.pin(u)) {
                (Some(a), Some(b)) => a == b,
                _ => true,
            };
            if compatible && best.map(|(_, bw)| w > bw).unwrap_or(true) {
                best = Some((u, w));
            }
        }
        match best {
            Some((u, _)) => {
                matched[v] = u;
                matched[u] = v;
            }
            None => matched[v] = v,
        }
    }
    // Build the coarse graph.
    let mut coarse_id = vec![usize::MAX; n];
    let mut coarse = PartGraph::new();
    for v in 0..n {
        if coarse_id[v] != usize::MAX {
            continue;
        }
        let u = matched[v];
        let (w, pin) = if u == v {
            (g.weight(v), g.pin(v))
        } else {
            let wv = g.weight(v);
            let wu = g.weight(u);
            ([wv[0] + wu[0], wv[1] + wu[1]], g.pin(v).or(g.pin(u)))
        };
        let id = match pin {
            Some(side) => coarse.add_pinned(w[0], w[1], side),
            None => coarse.add_node(w[0], w[1]),
        };
        coarse_id[v] = id;
        if u != v {
            coarse_id[u] = id;
        }
    }
    // Aggregate parallel edges.
    let mut agg: std::collections::HashMap<(usize, usize), f64> = std::collections::HashMap::new();
    for &(u, v, w) in g.edges() {
        let (cu, cv) = (coarse_id[u], coarse_id[v]);
        if cu == cv {
            continue;
        }
        let key = (cu.min(cv), cu.max(cv));
        *agg.entry(key).or_insert(0.0) += w;
    }
    for ((u, v), w) in agg {
        coarse.add_edge(u, v, w);
    }
    // If matching made no progress, fall back to flat refinement.
    if coarse.len() == n {
        return partition_flat_traced(g, *opts, rec);
    }
    // --- Recurse, then project and refine ---
    let coarse_part = multilevel(&coarse, opts, depth + 1, rec);
    let mut part = Partition(
        (0..n)
            .map(|v| coarse_part.side(coarse_id[v]))
            .collect::<Vec<_>>(),
    );
    // Re-apply pins (coarse pin may have come from the partner node).
    for v in 0..n {
        if let Some(p) = g.pin(v) {
            part.0[v] = p;
        }
    }
    refine(g, &mut part, opts, rec);
    part
}

/// Greedy initial assignment: each unpinned node goes to its cheaper side.
fn greedy_initial(g: &PartGraph) -> Partition {
    Partition(
        (0..g.len())
            .map(|v| {
                g.pin(v).unwrap_or({
                    let w = g.weight(v);
                    if w[0] <= w[1] {
                        Side::Cpu
                    } else {
                        Side::Gpu
                    }
                })
            })
            .collect(),
    )
}

/// One FM-style refinement: repeated passes of tentative best-gain moves
/// with rollback to the best prefix.
fn refine(g: &PartGraph, part: &mut Partition, opts: &KlOptions, rec: &mut Recorder) {
    let obj = &opts.objective;
    let n = g.len();
    for pass in 0..opts.max_passes {
        let mut loads = obj.loads(g, part);
        let mut cut = obj.cut(g, part);
        let start_cost = loads[0].max(loads[1]) + obj.transfer_penalty * cut;
        let mut locked = vec![false; n];
        for (v, lock) in locked.iter_mut().enumerate() {
            if g.pin(v).is_some() {
                *lock = true;
            }
        }
        // Tentative move sequence.
        let mut seq: Vec<usize> = Vec::new();
        let mut best_cost = start_cost;
        let mut best_len = 0usize;
        let mut cur = part.clone();
        loop {
            // Pick the unlocked node whose move most reduces the cost.
            let mut best_move: Option<(usize, f64, f64, [f64; 2])> = None;
            for (v, &is_locked) in locked.iter().enumerate() {
                if is_locked {
                    continue;
                }
                let from = cur.side(v);
                let to = from.other();
                let w = g.weight(v);
                let mut new_loads = loads;
                new_loads[from.index()] -= w[from.index()];
                new_loads[to.index()] += w[to.index()];
                let mut new_cut = cut;
                for &(u, ew) in g.neighbors(v) {
                    if cur.side(u) == from {
                        new_cut += ew;
                    } else {
                        new_cut -= ew;
                    }
                }
                let new_cost = new_loads[0].max(new_loads[1]) + obj.transfer_penalty * new_cut;
                if best_move.map(|(_, c, _, _)| new_cost < c).unwrap_or(true) {
                    best_move = Some((v, new_cost, new_cut, new_loads));
                }
            }
            let Some((v, new_cost, new_cut, new_loads)) = best_move else {
                break;
            };
            cur.0[v] = cur.0[v].other();
            locked[v] = true;
            loads = new_loads;
            cut = new_cut;
            seq.push(v);
            if new_cost < best_cost - 1e-12 {
                best_cost = new_cost;
                best_len = seq.len();
            }
        }
        if best_len == 0 {
            break; // no improving prefix this pass
        }
        // Apply the best prefix to `part`.
        for &v in &seq[..best_len] {
            part.0[v] = part.0[v].other();
        }
        if rec.is_enabled() {
            rec.instant(EventKind::PartitionPass {
                algo: "kl",
                pass: pass as u32,
                moved: best_len as u32,
                cost_before: start_cost,
                cost_after: best_cost,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two clusters of GPU-friendly work joined to CPU-pinned I/O by a
    /// heavy edge: the partitioner should offload the compute cluster.
    fn offload_graph() -> PartGraph {
        let mut g = PartGraph::new();
        let io = g.add_pinned(5.0, f64::INFINITY, Side::Cpu);
        let crypto1 = g.add_node(100.0, 10.0);
        let crypto2 = g.add_node(100.0, 10.0);
        let out = g.add_pinned(5.0, f64::INFINITY, Side::Cpu);
        g.add_edge(io, crypto1, 2.0);
        g.add_edge(crypto1, crypto2, 50.0);
        g.add_edge(crypto2, out, 2.0);
        g
    }

    #[test]
    fn offloads_gpu_friendly_cluster() {
        let g = offload_graph();
        let part = partition(&g, KlOptions::default());
        assert!(part.respects_pins(&g));
        assert_eq!(part.side(1), Side::Gpu);
        assert_eq!(part.side(2), Side::Gpu);
        // Makespan: max(10, 20) + 4 = 24 vs all-CPU 210.
        let obj = Objective::default();
        assert!(obj.cost(&g, &part) < 30.0);
    }

    #[test]
    fn keeps_cpu_cheap_work_on_cpu() {
        // GPU is slower for this work: everything should stay on CPU.
        let mut g = PartGraph::new();
        let a = g.add_node(10.0, 100.0);
        let b = g.add_node(10.0, 100.0);
        g.add_edge(a, b, 5.0);
        let part = partition(&g, KlOptions::default());
        assert_eq!(part.side(a), Side::Cpu);
        assert_eq!(part.side(b), Side::Cpu);
    }

    #[test]
    fn balances_parallel_work() {
        // Many independent equal nodes, equally fast everywhere: the
        // makespan objective should split them roughly in half.
        let mut g = PartGraph::new();
        for _ in 0..20 {
            g.add_node(10.0, 10.0);
        }
        let part = partition(&g, KlOptions::default());
        let obj = Objective::default();
        let loads = obj.loads(&g, &part);
        assert!((loads[0] - loads[1]).abs() <= 20.0, "loads {loads:?}");
    }

    #[test]
    fn avoids_cutting_heavy_edges() {
        // Chain with a huge internal edge and light external edges: the
        // heavy edge must not be cut.
        let mut g = PartGraph::new();
        let a = g.add_node(50.0, 10.0);
        let b = g.add_node(50.0, 10.0);
        let c = g.add_pinned(10.0, f64::INFINITY, Side::Cpu);
        g.add_edge(a, b, 1000.0);
        g.add_edge(b, c, 1.0);
        let part = partition(&g, KlOptions::default());
        assert_eq!(part.side(a), part.side(b));
    }

    #[test]
    fn multilevel_handles_larger_graphs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(3);
        let mut g = PartGraph::new();
        for i in 0..300 {
            let cpu = rng.gen_range(5.0..50.0);
            // Half the nodes are GPU-friendly.
            let gpu = if i % 2 == 0 { cpu / 8.0 } else { cpu * 3.0 };
            g.add_node(cpu, gpu);
        }
        for i in 1..300 {
            g.add_edge(i - 1, i, rng.gen_range(0.1..2.0));
            if i % 7 == 0 {
                let j = rng.gen_range(0..i);
                if j != i {
                    g.add_edge(j, i, rng.gen_range(0.1..2.0));
                }
            }
        }
        let obj = Objective::default();
        let part = partition(&g, KlOptions::default());
        let all_cpu = Partition::all(300, Side::Cpu);
        assert!(
            obj.cost(&g, &part) < 0.7 * obj.cost(&g, &all_cpu),
            "multilevel should clearly beat all-CPU: {} vs {}",
            obj.cost(&g, &part),
            obj.cost(&g, &all_cpu)
        );
    }

    #[test]
    fn flat_and_multilevel_both_respect_pins() {
        let g = offload_graph();
        for part in [
            partition(&g, KlOptions::default()),
            partition_flat(&g, KlOptions::default()),
        ] {
            assert!(part.respects_pins(&g));
        }
    }

    #[test]
    fn empty_graph() {
        let part = partition(&PartGraph::new(), KlOptions::default());
        assert!(part.0.is_empty());
    }

    #[test]
    fn warm_refine_never_worse_and_fixes_stale_cut() {
        let g = offload_graph();
        let obj = Objective::default();
        // Stale warm start: everything on the CPU (e.g. the plan from a
        // no-offload traffic mix). Refinement must recover the offload.
        let warm = Partition::all(g.len(), Side::Cpu);
        let refined = refine_partition(&g, &warm, KlOptions::default());
        assert!(refined.respects_pins(&g));
        assert!(obj.cost(&g, &refined) <= obj.cost(&g, &warm));
        assert_eq!(refined.side(1), Side::Gpu);
        // Warm-starting from the optimum keeps it.
        let again = refine_partition(&g, &refined, KlOptions::default());
        assert_eq!(obj.cost(&g, &again), obj.cost(&g, &refined));
        // A wrong-length warm partition falls back to a greedy seed.
        let fallback = refine_partition(&g, &Partition(Vec::new()), KlOptions::default());
        assert!(fallback.respects_pins(&g));
    }

    #[test]
    fn traced_partition_emits_improving_passes_without_changing_result() {
        use nfc_telemetry::{EventKind, Recorder};
        // Equal-cost parallel nodes: the greedy seed puts everything on
        // one side, so refinement must apply balancing passes.
        let mut g = PartGraph::new();
        for _ in 0..20 {
            g.add_node(10.0, 10.0);
        }
        let mut rec = Recorder::with_capacity(256);
        let traced = partition_traced(&g, KlOptions::default(), &mut rec);
        assert_eq!(traced.0, partition(&g, KlOptions::default()).0);
        let passes: Vec<(f64, f64)> = rec
            .events()
            .filter_map(|e| match e.kind {
                EventKind::PartitionPass {
                    algo: "kl",
                    cost_before,
                    cost_after,
                    moved,
                    ..
                } => {
                    assert!(moved > 0, "recorded passes applied moves");
                    Some((cost_before, cost_after))
                }
                _ => None,
            })
            .collect();
        assert!(!passes.is_empty(), "balancing needs at least one pass");
        for (before, after) in passes {
            assert!(after < before, "recorded passes improve the objective");
        }
    }
}
