//! Seed-based agglomerative node clustering.
//!
//! The paper's light-weight fallback (§IV-C3): "It starts with single
//! element graphs with seed elements. In our design we select a random GPU
//! element and a CPU element in each SFC as the seed vertices ... The
//! algorithm then merges two graphs at each step by choosing two vertices
//! with lowest communication overheads. The complexity of this algorithm
//! is O(k log k), where k is the edge number of the global graph."
//!
//! Merging the *heaviest* remaining inter-cluster edge first is what
//! "lowest communication overhead" buys: the edges most expensive to cut
//! are absorbed into clusters, so the final CPU/GPU boundary crosses only
//! light edges. Clusters seeded with different sides never merge; after
//! the heap drains, seedless clusters join the side that minimizes the
//! makespan objective greedily.

use crate::graph::{Objective, PartGraph, Partition, Side};
use nfc_telemetry::{EventKind, Recorder};
use std::collections::BinaryHeap;

/// A seed: node `v` pinned to `side` for clustering purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seed {
    /// Seed node.
    pub v: usize,
    /// Side that node anchors.
    pub side: Side,
}

#[derive(PartialEq)]
struct HeapEdge(f64, usize, usize);

impl Eq for HeapEdge {}

impl PartialOrd for HeapEdge {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEdge {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

/// Union-find over cluster ids.
#[derive(Debug)]
struct Dsu {
    parent: Vec<usize>,
    side: Vec<Option<Side>>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
            side: vec![None; n],
        }
    }

    fn find(&mut self, v: usize) -> usize {
        if self.parent[v] != v {
            let root = self.find(self.parent[v]);
            self.parent[v] = root;
        }
        self.parent[v]
    }

    /// Merges if side-compatible; returns whether a merge happened.
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match (self.side[ra], self.side[rb]) {
            (Some(x), Some(y)) if x != y => return false,
            _ => {}
        }
        let side = self.side[ra].or(self.side[rb]);
        self.parent[rb] = ra;
        self.side[ra] = side;
        true
    }
}

/// Partitions `g` by seed-based agglomerative clustering.
///
/// `seeds` anchor clusters to sides (the paper picks one CPU and one GPU
/// element per SFC); pinned nodes act as implicit seeds. Runs in
/// O(k log k) heap operations over the k edges.
pub fn partition(g: &PartGraph, seeds: &[Seed], objective: Objective) -> Partition {
    partition_traced(g, seeds, objective, &mut Recorder::disabled())
}

/// [`partition`] recording one telemetry event summarizing the merge
/// pass (merges performed, objective cost vs the all-CPU baseline) into
/// `rec`.
pub fn partition_traced(
    g: &PartGraph,
    seeds: &[Seed],
    objective: Objective,
    rec: &mut Recorder,
) -> Partition {
    let n = g.len();
    if n == 0 {
        return Partition(Vec::new());
    }
    let mut dsu = Dsu::new(n);
    for v in 0..n {
        if let Some(p) = g.pin(v) {
            dsu.side[v] = Some(p);
        }
    }
    for s in seeds {
        let r = dsu.find(s.v);
        if dsu.side[r].is_none() {
            dsu.side[r] = Some(s.side);
        }
    }
    // Heaviest-edge-first merging.
    let mut heap: BinaryHeap<HeapEdge> = g
        .edges()
        .iter()
        .map(|&(u, v, w)| HeapEdge(w, u, v))
        .collect();
    let mut merges = 0u32;
    while let Some(HeapEdge(_, u, v)) = heap.pop() {
        if dsu.union(u, v) {
            merges += 1;
        }
    }
    // Assign: seeded clusters take their side; the rest greedily join the
    // side minimizing incremental makespan.
    let mut cluster_side: std::collections::HashMap<usize, Side> = std::collections::HashMap::new();
    let mut unseeded: Vec<usize> = Vec::new();
    for v in 0..n {
        let r = dsu.find(v);
        match dsu.side[r] {
            Some(s) => {
                cluster_side.insert(r, s);
            }
            None => {
                if !unseeded.contains(&r) {
                    unseeded.push(r);
                }
            }
        }
    }
    let mut loads = [0.0f64; 2];
    for v in 0..n {
        let r = dsu.find(v);
        if let Some(&s) = cluster_side.get(&r) {
            loads[s.index()] += g.weight(v)[s.index()];
        }
    }
    // Largest unseeded clusters first for better greedy balance.
    let mut cluster_weight: std::collections::HashMap<usize, [f64; 2]> =
        std::collections::HashMap::new();
    for v in 0..n {
        let r = dsu.find(v);
        let e = cluster_weight.entry(r).or_insert([0.0; 2]);
        e[0] += g.weight(v)[0];
        e[1] += g.weight(v)[1];
    }
    unseeded.sort_by(|&a, &b| {
        let wa = cluster_weight[&a][0] + cluster_weight[&a][1];
        let wb = cluster_weight[&b][0] + cluster_weight[&b][1];
        wb.partial_cmp(&wa).unwrap()
    });
    for r in unseeded {
        let w = cluster_weight[&r];
        let cpu_makespan = (loads[0] + w[0]).max(loads[1]);
        let gpu_makespan = loads[0].max(loads[1] + w[1]);
        let side = if cpu_makespan <= gpu_makespan {
            Side::Cpu
        } else {
            Side::Gpu
        };
        cluster_side.insert(r, side);
        loads[side.index()] += w[side.index()];
    }
    let part = Partition(
        (0..n)
            .map(|v| cluster_side[&dsu.find(v)])
            .collect::<Vec<_>>(),
    );
    if rec.is_enabled() {
        let all_cpu = Partition::all(n, Side::Cpu);
        rec.instant(EventKind::PartitionPass {
            algo: "agglomerative",
            pass: 0,
            moved: merges,
            cost_before: objective.cost(g, &all_cpu),
            cost_after: objective.cost(g, &part),
        });
    }
    part
}

/// Picks default seeds for a graph: the node with the best GPU/CPU cost
/// ratio seeds the GPU cluster, the best CPU/GPU ratio seeds the CPU —
/// a deterministic stand-in for the paper's random per-SFC picks.
pub fn default_seeds(g: &PartGraph) -> Vec<Seed> {
    let mut best_gpu: Option<(usize, f64)> = None;
    let mut best_cpu: Option<(usize, f64)> = None;
    for v in 0..g.len() {
        if g.pin(v).is_some() {
            continue;
        }
        let w = g.weight(v);
        if w[1] > 0.0 {
            let r = w[0] / w[1];
            if best_gpu.map(|(_, b)| r > b).unwrap_or(true) {
                best_gpu = Some((v, r));
            }
        }
        if w[0] > 0.0 {
            let r = w[1] / w[0];
            if best_cpu.map(|(_, b)| r > b).unwrap_or(true) {
                best_cpu = Some((v, r));
            }
        }
    }
    let mut seeds = Vec::new();
    if let Some((v, ratio)) = best_gpu {
        if ratio > 1.0 {
            seeds.push(Seed { v, side: Side::Gpu });
        }
    }
    if let Some((v, ratio)) = best_cpu {
        if ratio > 1.0 && seeds.iter().all(|s| s.v != v) {
            seeds.push(Seed { v, side: Side::Cpu });
        }
    }
    seeds
}

/// Derives seeds from a previous cut, warm-starting the agglomerative
/// fast path during online re-partitioning: the unpinned node on each
/// side with the strongest affinity for that side (best cost ratio
/// among nodes the previous plan placed there) anchors the new
/// clustering. Falls back to [`default_seeds`] when `prev` does not
/// match the graph or left a side empty — so a previously CPU-only cut
/// can still discover the GPU under a shifted workload.
pub fn seeds_from_partition(g: &PartGraph, prev: &Partition) -> Vec<Seed> {
    if prev.0.len() != g.len() {
        return default_seeds(g);
    }
    let mut best: [Option<(usize, f64)>; 2] = [None, None];
    for v in 0..g.len() {
        if g.pin(v).is_some() {
            continue;
        }
        let w = g.weight(v);
        let side = prev.side(v);
        // Affinity for the previously assigned side: other-side cost over
        // own-side cost (higher = more committed to this side).
        let (own, other) = (w[side.index()], w[side.other().index()]);
        if own <= 0.0 {
            continue;
        }
        let affinity = other / own;
        let slot = &mut best[side.index()];
        if slot.map(|(_, b)| affinity > b).unwrap_or(true) {
            *slot = Some((v, affinity));
        }
    }
    match (best[Side::Cpu.index()], best[Side::Gpu.index()]) {
        (Some((c, _)), Some((gp, _))) if c != gp => vec![
            Seed {
                v: c,
                side: Side::Cpu,
            },
            Seed {
                v: gp,
                side: Side::Gpu,
            },
        ],
        _ => default_seeds(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_edges_stay_uncut() {
        let mut g = PartGraph::new();
        let a = g.add_node(100.0, 10.0);
        let b = g.add_node(100.0, 10.0);
        let c = g.add_node(10.0, 100.0);
        let d = g.add_node(10.0, 100.0);
        g.add_edge(a, b, 100.0); // heavy: must merge
        g.add_edge(c, d, 100.0); // heavy: must merge
        g.add_edge(b, c, 0.1); // light: can be cut
        let seeds = vec![
            Seed {
                v: a,
                side: Side::Gpu,
            },
            Seed {
                v: c,
                side: Side::Cpu,
            },
        ];
        let part = partition(&g, &seeds, Objective::default());
        assert_eq!(part.side(a), part.side(b));
        assert_eq!(part.side(c), part.side(d));
        assert_eq!(part.side(a), Side::Gpu);
        assert_eq!(part.side(c), Side::Cpu);
    }

    #[test]
    fn opposite_seeds_never_merge() {
        let mut g = PartGraph::new();
        let a = g.add_node(1.0, 1.0);
        let b = g.add_node(1.0, 1.0);
        g.add_edge(a, b, 1000.0);
        let seeds = vec![
            Seed {
                v: a,
                side: Side::Cpu,
            },
            Seed {
                v: b,
                side: Side::Gpu,
            },
        ];
        let part = partition(&g, &seeds, Objective::default());
        assert_eq!(part.side(a), Side::Cpu);
        assert_eq!(part.side(b), Side::Gpu);
    }

    #[test]
    fn pins_act_as_seeds() {
        let mut g = PartGraph::new();
        let io = g.add_pinned(1.0, f64::INFINITY, Side::Cpu);
        let k = g.add_node(100.0, 5.0);
        g.add_edge(io, k, 0.5);
        let seeds = vec![Seed {
            v: k,
            side: Side::Gpu,
        }];
        let part = partition(&g, &seeds, Objective::default());
        assert_eq!(part.side(io), Side::Cpu);
        assert_eq!(part.side(k), Side::Gpu);
        assert!(part.respects_pins(&g));
    }

    #[test]
    fn seedless_clusters_balance_greedily() {
        let mut g = PartGraph::new();
        for _ in 0..10 {
            g.add_node(10.0, 10.0);
        }
        let part = partition(&g, &[], Objective::default());
        let obj = Objective::default();
        let loads = obj.loads(&g, &part);
        assert!((loads[0] - loads[1]).abs() <= 10.0, "loads {loads:?}");
    }

    #[test]
    fn default_seeds_pick_extremes() {
        let mut g = PartGraph::new();
        let cpuish = g.add_node(5.0, 500.0);
        let gpuish = g.add_node(500.0, 5.0);
        g.add_node(10.0, 10.0);
        let seeds = default_seeds(&g);
        assert!(seeds.contains(&Seed {
            v: gpuish,
            side: Side::Gpu
        }));
        assert!(seeds.contains(&Seed {
            v: cpuish,
            side: Side::Cpu
        }));
    }

    #[test]
    fn empty_graph() {
        let part = partition(&PartGraph::new(), &[], Objective::default());
        assert!(part.0.is_empty());
    }

    #[test]
    fn seeds_from_partition_anchor_previous_sides() {
        let mut g = PartGraph::new();
        let a = g.add_node(100.0, 10.0); // GPU-friendly
        let b = g.add_node(10.0, 100.0); // CPU-friendly
        let c = g.add_node(50.0, 50.0);
        g.add_edge(a, c, 1.0);
        g.add_edge(b, c, 1.0);
        let prev = Partition(vec![Side::Gpu, Side::Cpu, Side::Cpu]);
        let seeds = seeds_from_partition(&g, &prev);
        assert!(seeds.contains(&Seed {
            v: a,
            side: Side::Gpu
        }));
        assert!(seeds.contains(&Seed {
            v: b,
            side: Side::Cpu
        }));
    }

    #[test]
    fn seeds_from_partition_falls_back_when_one_sided() {
        let mut g = PartGraph::new();
        let a = g.add_node(100.0, 10.0);
        let b = g.add_node(10.0, 100.0);
        g.add_edge(a, b, 1.0);
        // All-CPU previous cut: no GPU-side candidate, so fall back.
        let prev = Partition::all(2, Side::Cpu);
        assert_eq!(seeds_from_partition(&g, &prev), default_seeds(&g));
        // Mismatched length also falls back.
        assert_eq!(
            seeds_from_partition(&g, &Partition(Vec::new())),
            default_seeds(&g)
        );
    }

    #[test]
    fn traced_partition_summarizes_merges() {
        use nfc_telemetry::{EventKind, Recorder};
        let mut g = PartGraph::new();
        let a = g.add_node(100.0, 10.0);
        let b = g.add_node(100.0, 10.0);
        g.add_edge(a, b, 50.0);
        let seeds = vec![Seed {
            v: a,
            side: Side::Gpu,
        }];
        let mut rec = Recorder::with_capacity(16);
        let traced = partition_traced(&g, &seeds, Objective::default(), &mut rec);
        assert_eq!(traced.0, partition(&g, &seeds, Objective::default()).0);
        let ev = rec.events().next().expect("one summary event");
        match ev.kind {
            EventKind::PartitionPass {
                algo: "agglomerative",
                moved,
                cost_before,
                cost_after,
                ..
            } => {
                assert_eq!(moved, 1, "one union along the single edge");
                assert!(
                    cost_after < cost_before,
                    "offloading beats the all-CPU baseline"
                );
            }
            ref k => panic!("unexpected event {k:?}"),
        }
    }
}
