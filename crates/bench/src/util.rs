//! Table printing and result persistence helpers.

use serde_json::Value;
use std::fs;
use std::path::Path;

/// One experiment's regenerated data.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment id, e.g. `fig6`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Data rows.
    pub rows: Vec<Value>,
}

impl ExperimentResult {
    /// Creates a result.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        ExperimentResult {
            id: id.into(),
            title: title.into(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Value) {
        self.rows.push(row);
    }

    /// Writes `results/<id>.json`.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let payload = serde_json::json!({
            "experiment": self.id,
            "title": self.title,
            "rows": self.rows,
        });
        fs::write(
            dir.join(format!("{}.json", self.id)),
            serde_json::to_string_pretty(&payload).expect("serializable"),
        )
    }
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n==== {title} ====");
}

/// Formats Gbps with two decimals.
pub fn gbps(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats nanoseconds as microseconds.
pub fn us(ns: f64) -> String {
    format!("{:.1}", ns / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn save_writes_readable_json() {
        let dir = std::env::temp_dir().join("nfc-bench-util-test");
        let mut res = ExperimentResult::new("t1", "test experiment");
        res.push(json!({"a": 1}));
        res.push(json!({"b": 2.5}));
        res.save(&dir).expect("save succeeds");
        let raw = std::fs::read_to_string(dir.join("t1.json")).expect("file exists");
        let parsed: serde_json::Value = serde_json::from_str(&raw).expect("valid json");
        assert_eq!(parsed["experiment"], "t1");
        assert_eq!(parsed["rows"].as_array().expect("rows").len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn formatters() {
        assert_eq!(gbps(12.3456), "12.35");
        assert_eq!(us(1500.0), "1.5");
    }
}
