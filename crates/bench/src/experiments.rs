//! One regeneration function per table/figure of the paper's evaluation.
//!
//! Every function prints the same rows/series the paper reports and
//! returns them as an [`ExperimentResult`] for persistence. A `quick`
//! flag trades batch count for runtime; shapes are stable either way.
//!
//! Sweep-style figures (6, 7, 15, 17) fan their independent runs out on
//! the execution engine's worker pool ([`nfc_core::par_map`]); results
//! come back in sweep order and are printed after collection, so the
//! tables and persisted rows are identical whatever `NFC_THREADS` says.

use crate::util::{gbps, header, us, ExperimentResult};
use nfc_click::elements::SyntheticWork;
use nfc_click::ElementGraph;
use nfc_core::allocator::PartitionAlgo;
use nfc_core::{par_map, Deployment, ExecMode, Policy, ReorgSfc, Sfc};
use nfc_hetero::{CoRunContext, GpuMode};
use nfc_nf::{Nf, NfKind};
use nfc_packet::traffic::{IpVersion, PayloadPolicy, SizeDist, TrafficGenerator, TrafficSpec};
use serde_json::json;

fn batches(quick: bool) -> usize {
    if quick {
        20
    } else {
        60
    }
}

/// Builds a single-NF chain by short name.
pub fn nf_by_name(name: &str) -> Nf {
    match name {
        "IPv4" => Nf::ipv4_forwarder("ipv4", 1000, 2),
        "IPv6" => Nf::ipv6_forwarder("ipv6", 500, 3),
        "IPsec" => Nf::ipsec("ipsec"),
        "IDS" => Nf::ids("ids"),
        "DPI" => Nf::dpi("dpi"),
        "FW" => Nf::firewall("fw", 200, 1),
        "NAT" => Nf::nat("nat", [203, 0, 113, 1]),
        other => panic!("unknown NF {other}"),
    }
}

fn run(
    sfc: Sfc,
    policy: Policy,
    spec: TrafficSpec,
    batch: usize,
    n: usize,
    seed: u64,
) -> nfc_core::RunOutcome {
    let mut dep = Deployment::new(sfc, policy).with_batch_size(batch);
    let mut traffic = TrafficGenerator::new(spec, seed);
    dep.run(&mut traffic, n)
}

// ---------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------

/// Table II: NF actions on packets.
pub fn table2() -> ExperimentResult {
    header("Table II: NF actions on packet");
    let mut res = ExperimentResult::new("table2", "NF actions on packet");
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>6}",
        "NF", "HDR/PL Rd", "HDR/PL Wr", "Add/Rm bits", "Drop"
    );
    let kinds = [
        NfKind::Probe,
        NfKind::Ids,
        NfKind::Firewall,
        NfKind::Nat,
        NfKind::LoadBalancer,
        NfKind::WanOptimizer,
        NfKind::Proxy,
    ];
    let yn = |b: bool| if b { "Y" } else { "N" };
    for kind in kinds {
        let p = kind.table2_profile();
        println!(
            "{:<14} {:>10} {:>12} {:>12} {:>6}",
            kind.label(),
            format!("{}/{}", yn(p.reads_header), yn(p.reads_payload)),
            format!("{}/{}", yn(p.writes_header), yn(p.writes_payload)),
            yn(p.resizes),
            yn(p.may_drop)
        );
        res.push(json!({
            "nf": kind.label(),
            "reads_header": p.reads_header, "reads_payload": p.reads_payload,
            "writes_header": p.writes_header, "writes_payload": p.writes_payload,
            "resizes": p.resizes, "may_drop": p.may_drop,
        }));
    }
    res
}

/// Table III: parallelization criteria over ordered action pairs.
pub fn table3() -> ExperimentResult {
    header("Table III: NF parallelization criteria (first NF = row, later NF = column)");
    let mut res = ExperimentResult::new("table3", "NF parallelization criteria");
    use nfc_click::ElementActions;
    let reader = ElementActions::read_all();
    let writer = ElementActions::read_all()
        .with_header_write()
        .with_payload_write();
    let dropper = ElementActions::read_all().with_drop();
    let cases = [("Read", reader), ("Write", writer), ("Drop", dropper)];
    println!("{:<8} {:>8} {:>8} {:>8}", "", "Read", "Write", "Drop");
    for (rname, r) in &cases {
        print!("{rname:<8}");
        for (cname, c) in &cases {
            let ok = nfc_core::depend::parallelizable(r, c);
            print!(" {:>8}", if ok { "ok" } else { "x" });
            res.push(json!({"first": rname, "second": cname, "parallelizable": ok}));
        }
        println!();
    }
    println!("(region granularity; the paper's '*' disjoint-field cases need field tracking)");
    res
}

// ---------------------------------------------------------------------
// Figure 5: batch split overhead
// ---------------------------------------------------------------------

/// A branch-test NF: per-packet work plus an optional 2-way hash branch
/// whose outputs rejoin (forcing batch re-organization).
fn branch_test_nf(name: &str, split: bool) -> Nf {
    let mut g = ElementGraph::new();
    if split {
        let branch = g.add(SyntheticWork::new("branch", 110.0, 0.0).with_outputs(2));
        let a = g.add(SyntheticWork::new("path-a", 1.0, 0.0));
        let b = g.add(SyntheticWork::new("path-b", 1.0, 0.0));
        let join = g.add(SyntheticWork::new("join", 1.0, 0.0));
        g.connect(branch, 0, a).expect("wiring");
        g.connect(branch, 1, b).expect("wiring");
        g.connect(a, 0, join).expect("wiring");
        g.connect(b, 0, join).expect("wiring");
    } else {
        let w = g.add(SyntheticWork::new("straight", 110.0, 0.0));
        let t = g.add(SyntheticWork::new("tail", 2.0, 0.0));
        g.connect(w, 0, t).expect("wiring");
    }
    Nf::from_graph(name, NfKind::Probe, g)
}

/// Figure 5: throughput with and without batch splitting on a
/// branch-test chain (paper: 36.5 -> 15.8 Gbps).
pub fn fig5(quick: bool) -> ExperimentResult {
    header("Figure 5: batch-split re-organization overhead");
    let mut res = ExperimentResult::new("fig5", "batch split overhead");
    let spec = TrafficSpec::udp(SizeDist::Fixed(64));
    let mut out = Vec::new();
    for (label, split) in [("without_split", false), ("with_split", true)] {
        let sfc = Sfc::new(
            label,
            (0..3)
                .map(|i| branch_test_nf(&format!("bt{i}"), split))
                .collect(),
        );
        let o = run(sfc, Policy::CpuOnly, spec.clone(), 256, batches(quick), 5);
        println!(
            "{label:<16} {} Gbps (p50 latency {} us)",
            gbps(o.report.throughput_gbps),
            us(o.report.p50_latency_ns)
        );
        res.push(json!({
            "config": label,
            "gbps": o.report.throughput_gbps,
            "p50_us": o.report.p50_latency_ns / 1000.0,
        }));
        out.push(o.report.throughput_gbps);
    }
    println!(
        "split costs {:.0}% of throughput (paper: 36.5 -> 15.8 Gbps, -57%)",
        (1.0 - out[1] / out[0]) * 100.0
    );
    res
}

// ---------------------------------------------------------------------
// Figure 6: offload-ratio sweep
// ---------------------------------------------------------------------

/// Figure 6: throughput vs GPU offload fraction for IPv4 forwarding,
/// IPsec and DPI (paper: IPsec best ≈ 70 %).
pub fn fig6(quick: bool) -> ExperimentResult {
    header("Figure 6: performance by offloading fraction");
    let mut res = ExperimentResult::new("fig6", "throughput vs offload ratio");
    print!("{:<8}", "ratio");
    for r in 0..=10 {
        print!(" {:>6.0}%", r as f64 * 10.0);
    }
    println!();
    let exec = ExecMode::auto();
    for (name, pkt) in [("IPv4", 64), ("IPsec", 64), ("DPI", 512)] {
        // The 11 grid points are independent deployments: fan out.
        let series: Vec<f64> = par_map(exec, (0..=10).collect(), |_, r: u32| {
            let ratio = f64::from(r) / 10.0;
            let policy = if ratio == 0.0 {
                Policy::CpuOnly
            } else {
                Policy::FixedRatio {
                    ratio,
                    mode: GpuMode::Persistent,
                }
            };
            let sfc = Sfc::new(name, vec![nf_by_name(name)]);
            run(
                sfc,
                policy,
                TrafficSpec::udp(SizeDist::Fixed(pkt)),
                256,
                batches(quick),
                3,
            )
            .report
            .throughput_gbps
        });
        print!("{name:<8}");
        for g in &series {
            print!(" {g:>7.2}");
        }
        println!();
        let best = series
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i * 10)
            .unwrap_or(0);
        println!("  -> best ratio for {name}: {best}%");
        res.push(json!({"nf": name, "pkt": pkt, "gbps_by_ratio": series, "best_pct": best}));
    }
    res
}

// ---------------------------------------------------------------------
// Figure 7: acceleration offset by SFC length
// ---------------------------------------------------------------------

/// Figure 7: the same offload setting behaves differently as the chain
/// grows (cases A-D; CPU-only vs GPU-only vs 70 % offload).
pub fn fig7(quick: bool) -> ExperimentResult {
    header("Figure 7: GPU benefit offset with SFC length");
    let mut res = ExperimentResult::new("fig7", "acceleration offset by chain length");
    let cases: Vec<(&str, Vec<&str>)> = vec![
        ("A: IPsec", vec!["IPsec"]),
        ("B: IPsec+IPv4", vec!["IPsec", "IPv4"]),
        ("C: FW+IPv4+IPsec", vec!["FW", "IPv4", "IPsec"]),
        ("D: IPv4+IPsec+IDS", vec!["IPv4", "IPsec", "IDS"]),
    ];
    println!(
        "{:<20} {:>10} {:>10} {:>10}",
        "case", "CPU-only", "GPU-only", "70% offld"
    );
    // One pool task per (case, policy); rows regroup in case order.
    let policies = [
        Policy::CpuOnly,
        Policy::GpuOnly {
            mode: GpuMode::LaunchPerBatch,
        },
        Policy::FixedRatio {
            ratio: 0.7,
            mode: GpuMode::LaunchPerBatch,
        },
    ];
    let points: Vec<(&str, Vec<&str>, Policy)> = cases
        .iter()
        .flat_map(|(label, chain)| policies.iter().map(|p| (*label, chain.clone(), *p)))
        .collect();
    let flat = par_map(ExecMode::auto(), points, |_, (label, chain, p)| {
        let sfc = Sfc::new(label, chain.iter().map(|n| nf_by_name(n)).collect());
        let spec = TrafficSpec::udp(SizeDist::Fixed(64));
        run(sfc, p, spec, 256, batches(quick), 7)
            .report
            .throughput_gbps
    });
    for ((label, _), row) in cases.iter().zip(flat.chunks(policies.len())) {
        println!(
            "{:<20} {:>10} {:>10} {:>10}",
            label,
            gbps(row[0]),
            gbps(row[1]),
            gbps(row[2])
        );
        res.push(json!({
            "case": label, "cpu_only": row[0], "gpu_only": row[1], "ratio70": row[2],
        }));
    }
    res
}

// ---------------------------------------------------------------------
// Figure 8: characterization
// ---------------------------------------------------------------------

/// Figure 8(a-d): throughput vs batch size per NF on CPU and GPU; DPI
/// with no-match vs full-match traffic.
pub fn fig8(quick: bool) -> ExperimentResult {
    header("Figure 8(a-d): batch size / traffic-pattern characterization");
    let mut res = ExperimentResult::new("fig8", "batch-size characterization");
    let batch_sizes = [32usize, 64, 128, 256, 512, 1024];
    let workloads: Vec<(&str, &str, usize, f64)> = vec![
        ("IPv4", "IPv4", 64, 0.0),
        ("IPv6", "IPv6", 64, 0.0),
        ("IPsec", "IPsec", 256, 0.0),
        ("DPI no-match", "DPI", 1024, 0.0),
        ("DPI full-match", "DPI", 1024, 1.0),
    ];
    print!("{:<18} {:<4}", "workload", "side");
    for b in batch_sizes {
        print!(" {:>7}", b);
    }
    println!();
    for (label, name, pkt, match_ratio) in workloads {
        for (side, policy) in [
            ("CPU", Policy::CpuOnly),
            (
                "GPU",
                Policy::GpuOnly {
                    mode: GpuMode::Persistent,
                },
            ),
        ] {
            // IPv6 has no GPU row in our harness only if not offloadable;
            // it is (Lookup kernel), so both rows print.
            print!("{label:<18} {side:<4}");
            let mut series = Vec::new();
            for b in batch_sizes {
                let spec = if name == "IPv6" {
                    TrafficSpec::udp(SizeDist::Fixed(pkt)).with_ip_version(IpVersion::V6)
                } else if match_ratio > 0.0 {
                    TrafficSpec::udp(SizeDist::Fixed(pkt)).with_payload(PayloadPolicy::MatchRatio {
                        patterns: Nf::default_ids_signatures(),
                        ratio: match_ratio,
                    })
                } else {
                    TrafficSpec::udp(SizeDist::Fixed(pkt))
                };
                let sfc = Sfc::new(label, vec![nf_by_name(name)]);
                let o = run(sfc, policy, spec, b, batches(quick), 11);
                print!(" {:>7.2}", o.report.throughput_gbps);
                series.push(o.report.throughput_gbps);
            }
            println!();
            res.push(json!({
                "workload": label, "side": side, "pkt": pkt,
                "batch_sizes": batch_sizes, "gbps": series,
            }));
        }
    }
    res
}

/// Figure 8(e): co-run throughput-drop matrix (model-level; the paper's
/// IDS suffers most, ≈22 % average, firewall least).
pub fn fig8e() -> ExperimentResult {
    header("Figure 8(e): co-run throughput drop (victim rows, co-runner columns)");
    let mut res = ExperimentResult::new("fig8e", "co-run interference matrix");
    use nfc_click::KernelClass;
    let nfs = [
        ("IDS", Some(KernelClass::PatternMatch)),
        ("IPv4", Some(KernelClass::Lookup)),
        ("IPv6", Some(KernelClass::Lookup)),
        ("IPsec", Some(KernelClass::Crypto)),
        ("FW", Some(KernelClass::Classification)),
    ];
    print!("{:<8}", "victim");
    for (n, _) in &nfs {
        print!(" {:>7}", n);
    }
    println!(" {:>7}", "avg");
    for (victim, vk) in &nfs {
        print!("{victim:<8}");
        let mut drops = Vec::new();
        for (_, ok) in &nfs {
            let drop = CoRunContext::new([*ok]).throughput_drop(*vk);
            print!(" {:>6.1}%", drop * 100.0);
            drops.push(drop);
        }
        let avg = drops.iter().sum::<f64>() / drops.len() as f64;
        println!(" {:>6.1}%", avg * 100.0);
        res.push(json!({"victim": victim, "drops": drops, "avg": avg}));
    }
    res
}

// ---------------------------------------------------------------------
// Figures 13/14: SFC re-organization
// ---------------------------------------------------------------------

/// Figures 13/14: chains of four identical NFs under configurations
/// (a) sequential, (b) fully parallel, (c) width-2, (d) width-2 +
/// synthesis, on CPU-only and GPU-only platforms.
pub fn fig14(quick: bool) -> ExperimentResult {
    header("Figure 14: SFC parallelization & synthesis (4 identical NFs, 64 B)");
    let mut res = ExperimentResult::new("fig14", "SFC re-organization configurations");
    let chain_of = |kind: &str| -> Sfc {
        let nfs = (0..4)
            .map(|i| match kind {
                "FW" => Nf::firewall(format!("fw{i}"), 200, 1),
                "IPsec" => Nf::ipsec(format!("ipsec{i}")),
                _ => Nf::ids(format!("ids{i}")),
            })
            .collect();
        Sfc::new(format!("{kind}-x4"), nfs)
    };
    // The paper prescribes these structures (its Figure 13); identical
    // NFs produce identical outputs, so the XOR merge is well defined
    // even for the WAW pairs the analyzer would conservatively refuse.
    let configs: Vec<(&str, Vec<Vec<usize>>, bool)> = vec![
        ("a: seq", vec![vec![0, 1, 2, 3]], false),
        ("b: par x4", vec![vec![0], vec![1], vec![2], vec![3]], false),
        ("c: par x2", vec![vec![0, 1], vec![2, 3]], false),
        ("d: x2+synth", vec![vec![0, 1], vec![2, 3]], true),
    ];
    for kind in ["FW", "IPsec", "IDS"] {
        println!("--- {kind} x4 ---");
        println!(
            "{:<14} {:<6} {:>9} {:>12} | {:>9} {:>12}",
            "config", "len", "CPU Gbps", "CPU p50 us", "GPU Gbps", "GPU p50 us"
        );
        for (label, branches, synth) in &configs {
            let mut row = json!({"kind": kind, "config": label});
            let mut cols = Vec::new();
            for ratio in [0.0, 1.0] {
                let policy = Policy::ReorgOnly {
                    max_branches: branches.len(),
                    synthesize: *synth,
                    ratio,
                    mode: GpuMode::Persistent,
                };
                let mut dep = Deployment::new(chain_of(kind), policy)
                    .with_batch_size(128)
                    .with_forced_branches(branches.clone());
                let mut traffic = TrafficGenerator::new(TrafficSpec::tcp(SizeDist::Fixed(64)), 13);
                let o = dep.run(&mut traffic, batches(quick));
                cols.push((
                    o.report.throughput_gbps,
                    o.report.p50_latency_ns,
                    o.effective_length,
                ));
            }
            println!(
                "{:<14} {:<6} {:>9} {:>12} | {:>9} {:>12}",
                label,
                cols[0].2,
                gbps(cols[0].0),
                us(cols[0].1),
                gbps(cols[1].0),
                us(cols[1].1)
            );
            row["effective_length"] = json!(cols[0].2);
            row["cpu_gbps"] = json!(cols[0].0);
            row["cpu_p50_us"] = json!(cols[0].1 / 1000.0);
            row["gpu_gbps"] = json!(cols[1].0);
            row["gpu_p50_us"] = json!(cols[1].1 / 1000.0);
            res.push(row);
        }
    }
    res
}

// ---------------------------------------------------------------------
// Figure 15: graph-based task allocation
// ---------------------------------------------------------------------

/// Figure 15: GTA vs CPU-only vs GPU-only vs exhaustive Optimal on IMIX
/// traffic (paper: GTA ≥ 90 % of optimal, gains grow for SFCs).
pub fn fig15(quick: bool) -> ExperimentResult {
    header("Figure 15: graph-based task allocation on IMIX traffic");
    let mut res = ExperimentResult::new("fig15", "GTA vs baselines");
    let setups: Vec<(&str, Vec<&str>)> = vec![
        ("IPv4", vec!["IPv4"]),
        ("IPv6", vec!["IPv6"]),
        ("IPsec", vec!["IPsec"]),
        ("IDS", vec!["IDS"]),
        ("IPv4+IPsec", vec!["IPv4", "IPsec"]),
        ("IPsec+IDS", vec!["IPsec", "IDS"]),
        ("IPv4+IPsec+IDS", vec!["IPv4", "IPsec", "IDS"]),
    ];
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>9} {:>8} {:>10}",
        "setup", "CPU", "GPU", "GTA", "Optimal", "GTA/Opt", "GTA p99 us"
    );
    let mut single_gains = Vec::new();
    let mut chain_gains = Vec::new();
    // Each setup's four policy runs are one pool task; setups fan out.
    let measured = par_map(ExecMode::auto(), setups, |_, (label, chain)| {
        let spec = if label == "IPv6" {
            TrafficSpec::udp(SizeDist::Imix).with_ip_version(IpVersion::V6)
        } else {
            TrafficSpec::udp(SizeDist::Imix)
        };
        let mk = || Sfc::new(label, chain.iter().map(|n| nf_by_name(n)).collect());
        let mut vals = Vec::new();
        let mut gta_p99 = 0.0;
        // GTA is evaluated in isolation (the paper's §V-C): allocation
        // only, no SFC re-organization.
        let gta = Policy::NfCompass {
            algo: PartitionAlgo::Kl,
            max_branches: 1,
            synthesize: false,
        };
        for p in [
            Policy::CpuOnly,
            Policy::GpuOnly {
                mode: GpuMode::Persistent,
            },
            gta,
            Policy::Optimal,
        ] {
            let o = run(mk(), p, spec.clone(), 256, batches(quick), 17);
            if matches!(p, Policy::NfCompass { .. }) {
                gta_p99 = o.report.p99_latency_ns;
            }
            vals.push(o.report.throughput_gbps);
        }
        (label, chain.len(), vals, gta_p99)
    });
    for (label, chain_len, vals, gta_p99) in measured {
        let frac = vals[2] / vals[3].max(1e-9);
        let best_effort = vals[0].max(vals[1]);
        let gain = (vals[2] - best_effort) / best_effort.max(1e-9);
        if chain_len == 1 {
            single_gains.push(gain);
        } else {
            chain_gains.push(gain);
        }
        println!(
            "{:<16} {:>9} {:>9} {:>9} {:>9} {:>7.0}% {:>10}",
            label,
            gbps(vals[0]),
            gbps(vals[1]),
            gbps(vals[2]),
            gbps(vals[3]),
            frac * 100.0,
            us(gta_p99)
        );
        res.push(json!({
            "setup": label, "cpu": vals[0], "gpu": vals[1],
            "gta": vals[2], "optimal": vals[3],
            "gta_over_optimal": frac, "gain_vs_best_effort": gain,
            "gta_p99_us": gta_p99 / 1000.0,
        }));
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "avg gain vs best-effort: single NF {:.0}%, SFC {:.0}% (paper: 5% and 16%)",
        avg(&single_gains) * 100.0,
        avg(&chain_gains) * 100.0
    );
    res
}

// ---------------------------------------------------------------------
// Figure 17: real service function chain
// ---------------------------------------------------------------------

/// Figures 16/17: the real SFC (FW -> router -> NAT) with ClassBench-
/// style ACLs of 200/1k/10k rules at 64/128/1500 B packets, comparing
/// FastClick-like, NBA-like and NFCompass.
pub fn fig17(quick: bool) -> ExperimentResult {
    header("Figure 17: real SFC (FW -> router -> NAT) vs ACL size");
    let mut res = ExperimentResult::new("fig17", "real SFC validation");
    let mk = |rules: usize| -> Sfc {
        Sfc::new(
            format!("real-sfc-{rules}"),
            vec![
                Nf::firewall("fw", rules, 21),
                Nf::ipv4_forwarder("router", 1000, 22),
                Nf::nat("nat", [203, 0, 113, 1]),
            ],
        )
    };
    let policies: Vec<(&str, Policy)> = vec![
        ("FastClick", Policy::CpuOnly),
        ("NBA", Policy::NbaAdaptive),
        ("NFCompass", Policy::nfcompass()),
    ];
    println!(
        "{:<11} {:>6} {:>6} | {:>9} {:>12} {:>12}",
        "system", "ACL", "pkt", "Gbps", "mean lat us", "p99 lat us"
    );
    let mut base: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    // 27 independent (system, ACL, packet-size) cells fan out together.
    let cells: Vec<(&str, Policy, usize, usize)> = policies
        .iter()
        .flat_map(|(pname, policy)| {
            [200usize, 1000, 10_000].into_iter().flat_map(move |rules| {
                [64usize, 128, 1500]
                    .into_iter()
                    .map(move |pkt| (*pname, *policy, rules, pkt))
            })
        })
        .collect();
    let measured = par_map(ExecMode::auto(), cells, |_, (pname, policy, rules, pkt)| {
        let o = run(
            mk(rules),
            policy,
            TrafficSpec::udp(SizeDist::Fixed(pkt)),
            256,
            batches(quick),
            23,
        );
        (pname, rules, pkt, o.report)
    });
    for (pname, rules, pkt, report) in measured {
        println!(
            "{:<11} {:>6} {:>6} | {:>9} {:>12} {:>12}",
            pname,
            rules,
            pkt,
            gbps(report.throughput_gbps),
            us(report.mean_latency_ns),
            us(report.p99_latency_ns)
        );
        if rules == 200 {
            base.insert(format!("{pname}/{pkt}"), report.throughput_gbps);
        }
        res.push(json!({
            "system": pname, "acl": rules, "pkt": pkt,
            "gbps": report.throughput_gbps,
            "mean_us": report.mean_latency_ns / 1000.0,
            "p99_us": report.p99_latency_ns / 1000.0,
        }));
    }
    // Throughput drop vs the 200-rule baseline at 64 B.
    println!("\nthroughput drop vs ACL-200 (64 B): ");
    for row in &res.rows.clone() {
        if row["pkt"] == 64 && row["acl"] != 200 {
            let sys = row["system"].as_str().expect("system");
            let b = base[&format!("{sys}/64")];
            let drop = (1.0 - row["gbps"].as_f64().expect("gbps") / b) * 100.0;
            println!("  {:<11} ACL {:>6}: {:>5.1}%", sys, row["acl"], drop);
        }
    }
    println!("(paper: FastClick -38%/-84%, NBA -32%/-73%, NFCompass ~flat; latency 1.4-9x lower)");
    res
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

/// Ablation: partitioning algorithm, expansion granularity δ, persistent
/// vs launch-per-batch kernels, and synthesis on/off.
pub fn ablations(quick: bool) -> ExperimentResult {
    header("Ablations (design choices called out in DESIGN.md)");
    let mut res = ExperimentResult::new("ablations", "design-choice ablations");
    let spec = TrafficSpec::udp(SizeDist::Imix);
    let chain = || Sfc::new("ipsec-dpi", vec![Nf::ipsec("ipsec"), Nf::dpi("dpi")]);
    println!("{:<34} {:>9} {:>12}", "variant", "Gbps", "p99 lat us");
    let show = |label: &str, o: &nfc_core::RunOutcome, res: &mut ExperimentResult| {
        println!(
            "{:<34} {:>9} {:>12}",
            label,
            gbps(o.report.throughput_gbps),
            us(o.report.p99_latency_ns)
        );
        res.push(json!({
            "variant": label,
            "gbps": o.report.throughput_gbps,
            "p99_us": o.report.p99_latency_ns / 1000.0,
        }));
    };
    // Partitioners.
    for algo in [
        PartitionAlgo::Kl,
        PartitionAlgo::Agglomerative,
        PartitionAlgo::Mfmc,
    ] {
        let o = run(
            chain(),
            Policy::NfCompass {
                algo,
                max_branches: 4,
                synthesize: true,
            },
            spec.clone(),
            256,
            batches(quick),
            31,
        );
        show(&format!("partitioner = {algo:?}"), &o, &mut res);
    }
    // δ granularity.
    for delta in [0.05, 0.1, 0.2] {
        let mut dep = Deployment::new(chain(), Policy::nfcompass()).with_batch_size(256);
        dep.delta = delta;
        let mut t = TrafficGenerator::new(spec.clone(), 31);
        let o = dep.run(&mut t, batches(quick));
        show(&format!("expansion delta = {delta}"), &o, &mut res);
    }
    // Persistent vs launch-per-batch at a fixed ratio.
    for (label, mode) in [
        ("kernel = persistent (70%)", GpuMode::Persistent),
        ("kernel = launch/batch (70%)", GpuMode::LaunchPerBatch),
    ] {
        let o = run(
            chain(),
            Policy::FixedRatio { ratio: 0.7, mode },
            spec.clone(),
            256,
            batches(quick),
            31,
        );
        show(label, &o, &mut res);
    }
    // Raw partitioner plans (before the §IV-C3 dynamic adaption that the
    // NfCompass policy applies): predicted per-batch stage cost on a
    // profiled DPI stage.
    {
        use nfc_core::allocator::{allocate, stage_cost};
        use nfc_core::profiler::Profiler;
        use nfc_hetero::{CoRunContext, CostModel, PlatformConfig};
        let nf = Nf::dpi("dpi");
        let mut rung = nf.graph().clone().compile().expect("compiles");
        let mut gen = TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(512)), 31);
        for _ in 0..8 {
            rung.push_merged(nf.entry(), gen.batch(256));
        }
        let model = CostModel::new(PlatformConfig::hpca18());
        let weights = Profiler::new(model, GpuMode::Persistent).measure(&rung);
        let solo = CoRunContext::solo();
        for algo in [
            PartitionAlgo::Kl,
            PartitionAlgo::Agglomerative,
            PartitionAlgo::Mfmc,
        ] {
            let plan = allocate(nf.graph(), &weights, algo, 0.1);
            let cost = stage_cost(&model, &weights, &solo, &plan.ratios, GpuMode::Persistent);
            println!(
                "{:<34} {:>9} {:>12}",
                format!("raw {algo:?} plan (us/batch)"),
                format!("{:.1}", cost / 1000.0),
                "-"
            );
            res.push(json!({
                "variant": format!("raw-{algo:?}"),
                "stage_cost_us": cost / 1000.0,
                "ratios": plan.ratios,
            }));
        }
    }

    // Synthesis on/off at width 2 on a synthesizable chain.
    let ids_chain = || Sfc::new("ids4", (0..4).map(|i| Nf::ids(format!("i{i}"))).collect());
    for (label, synth) in [
        ("reorg x2, synthesis off", false),
        ("reorg x2, synthesis on", true),
    ] {
        let o = run(
            ids_chain(),
            Policy::NfCompass {
                algo: PartitionAlgo::Kl,
                max_branches: 2,
                synthesize: synth,
            },
            spec.clone(),
            256,
            batches(quick),
            31,
        );
        show(label, &o, &mut res);
    }
    res
}

/// Traffic-churn adaptation (the paper's "fast-switching network
/// traffics" motivation): an SFC profiled on one traffic mix faces a
/// shifted mix; with re-adaptation the runtime re-profiles and
/// re-allocates at the phase boundary.
pub fn churn(quick: bool) -> ExperimentResult {
    header("Traffic churn: static plan vs dynamic re-adaptation");
    let mut res = ExperimentResult::new("churn", "adaptation under traffic churn");
    // Phase 1: small IMIX packets; phase 2: large full-match DPI load.
    let phases = || {
        vec![
            TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(128)), 41),
            TrafficGenerator::new(
                TrafficSpec::udp(SizeDist::Fixed(1024)).with_payload(PayloadPolicy::MatchRatio {
                    patterns: Nf::default_ids_signatures(),
                    ratio: 1.0,
                }),
                42,
            ),
        ]
    };
    let sfc = || Sfc::new("ipsec-dpi", vec![Nf::ipsec("ipsec"), Nf::dpi("dpi")]);
    println!(
        "{:<22} {:>12} {:>12}",
        "variant", "phase1 Gbps", "phase2 Gbps"
    );
    for (label, adapt) in [("static plan", false), ("re-adapted", true)] {
        let mut dep = Deployment::new(sfc(), Policy::nfcompass()).with_batch_size(256);
        let mut ph = phases();
        let outs = dep.run_phases(&mut ph, batches(quick), adapt);
        println!(
            "{:<22} {:>12.2} {:>12.2}",
            label, outs[0].report.throughput_gbps, outs[1].report.throughput_gbps
        );
        res.push(json!({
            "variant": label,
            "phase1_gbps": outs[0].report.throughput_gbps,
            "phase2_gbps": outs[1].report.throughput_gbps,
            "phase2_offloads": outs[1].stage_offloads,
        }));
    }
    res
}

/// Co-running tenants on one simulated platform (Figure 8e by
/// simulation rather than by the closed-form model).
pub fn corun_sim(quick: bool) -> ExperimentResult {
    header("Co-run interference by simulation (multi-tenant)");
    let mut res = ExperimentResult::new("corun_sim", "multi-tenant co-run interference");
    use nfc_core::MultiDeployment;
    let mk = |name: &str| -> (Deployment, TrafficGenerator) {
        let (nf, pkt, seed) = match name {
            "IDS" => (Nf::ids("ids"), 1024, 1),
            "IPv4" => (Nf::ipv4_forwarder("ipv4", 500, 9), 64, 2),
            "IPsec" => (Nf::ipsec("ipsec"), 256, 3),
            _ => (Nf::firewall("fw", 500, 4), 64, 4),
        };
        (
            Deployment::new(Sfc::new(name, vec![nf]), Policy::CpuOnly).with_batch_size(256),
            TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(pkt)), seed),
        )
    };
    let names = ["IDS", "IPv4", "IPsec", "FW"];
    let mut solo = Vec::new();
    for n in names {
        let (mut dep, mut traffic) = mk(n);
        solo.push(dep.run(&mut traffic, batches(quick)).report.throughput_gbps);
    }
    let mut deps = Vec::new();
    let mut traffics = Vec::new();
    for n in names {
        let (d, t) = mk(n);
        deps.push(d);
        traffics.push(t);
    }
    let outs = MultiDeployment::new(deps).run(&mut traffics, batches(quick));
    println!(
        "{:<8} {:>10} {:>10} {:>8}",
        "tenant", "solo", "corun", "drop"
    );
    for (i, n) in names.iter().enumerate() {
        let drop = 1.0 - outs[i].report.throughput_gbps / solo[i];
        println!(
            "{:<8} {:>10.2} {:>10.2} {:>7.1}%",
            n,
            solo[i],
            outs[i].report.throughput_gbps,
            drop * 100.0
        );
        res.push(json!({
            "tenant": n, "solo_gbps": solo[i],
            "corun_gbps": outs[i].report.throughput_gbps, "drop": drop,
        }));
    }
    res
}

/// Figure-13 structural check printed alongside fig14: what the analyzer
/// does to the three chains.
pub fn fig13_structure() -> ExperimentResult {
    header("Figure 13: re-organization structures");
    let mut res = ExperimentResult::new("fig13", "re-organization structures");
    let sfc = Sfc::new("ids4", (0..4).map(|i| Nf::ids(format!("ids{i}"))).collect());
    for (label, width) in [("a (seq)", 1usize), ("b (x4)", 4), ("c (x2)", 2)] {
        let plan = if width == 1 {
            ReorgSfc::sequential(&sfc)
        } else {
            ReorgSfc::analyze(&sfc, width)
        };
        println!(
            "{label}: width {}, effective length {}, branches {:?}",
            plan.width(),
            plan.effective_length(),
            plan.branches()
        );
        res.push(json!({
            "config": label, "width": plan.width(),
            "effective_length": plan.effective_length(),
            "branches": plan.branches(),
        }));
    }
    res
}
