//! Experiment harness regenerating every table and figure of the paper.
//!
//! [`experiments`] holds one function per table/figure; each returns its
//! rows as JSON-serializable records and pretty-prints the same series
//! the paper reports. The `figures` binary drives them
//! (`cargo run --release -p nfc-bench --bin figures -- all`), writing
//! machine-readable results under `results/`. The Criterion benches in
//! `benches/` measure the real substrate operations behind each figure.

pub mod experiments;
pub mod util;
