//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p nfc-bench --bin figures -- all [--quick]
//! cargo run --release -p nfc-bench --bin figures -- fig6 fig15
//! ```
//!
//! Results print to stdout in the paper's row/series layout and are
//! written as JSON under `results/`.

use nfc_bench::experiments as exp;
use nfc_bench::util::ExperimentResult;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut wanted: Vec<String> = args.into_iter().filter(|a| a != "--quick").collect();
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = [
            "table2",
            "table3",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig8e",
            "fig13",
            "fig14",
            "fig15",
            "fig17",
            "ablations",
            "churn",
            "corun_sim",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    let out_dir = Path::new("results");
    let mut ran = 0usize;
    for w in &wanted {
        let result: ExperimentResult = match w.as_str() {
            "table2" => exp::table2(),
            "table3" => exp::table3(),
            "fig5" => exp::fig5(quick),
            "fig6" => exp::fig6(quick),
            "fig7" => exp::fig7(quick),
            "fig8" => exp::fig8(quick),
            "fig8e" => exp::fig8e(),
            "fig13" => exp::fig13_structure(),
            "fig14" => exp::fig14(quick),
            "fig15" => exp::fig15(quick),
            "fig17" => exp::fig17(quick),
            "ablations" => exp::ablations(quick),
            "churn" => exp::churn(quick),
            "corun_sim" => exp::corun_sim(quick),
            other => {
                eprintln!("unknown experiment: {other}");
                continue;
            }
        };
        if let Err(e) = result.save(out_dir) {
            eprintln!("warning: could not save {}: {e}", result.id);
        }
        ran += 1;
    }
    println!(
        "\n{ran} experiments regenerated; JSON written to {}",
        out_dir.display()
    );
}
