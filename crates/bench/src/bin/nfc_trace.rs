//! `nfc-trace`: inspect and validate Chrome-trace JSON files exported by
//! the `nfc-telemetry` runtime (`NFC_TELEMETRY=trace.json`).
//!
//! Subcommands:
//!
//! * `summary <trace.json>` — event totals, per-category counts, span
//!   durations and the wall/sim timeline extents.
//! * `validate <trace.json> [--require cat1,cat2,...]` — schema-check
//!   every event and (optionally) require event categories; exits
//!   non-zero on any violation, for CI smoke tests.
//! * `prom <trace.json>` — re-derive a Prometheus-style text snapshot
//!   from the trace's events.
//! * `controller <trace.json>` — the adaptive control plane's
//!   adaptation timeline: trigger reason, old → new offload ratio and
//!   charged swap latency for every controller decision.

use serde_json::Value;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// One parsed trace: metadata records and regular events.
struct Trace {
    /// Non-metadata events (`ph` != `"M"`).
    events: Vec<Value>,
    /// Dropped-event count from the `nfc_dropped_events` metadata.
    dropped: u64,
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("nfc-trace: {msg}");
    ExitCode::FAILURE
}

fn load(path: &str) -> Result<Trace, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let values: Vec<Value> = match serde_json::from_str(&body) {
        Ok(Value::Array(vals)) => vals,
        Ok(_) => return Err(format!("{path}: top level is not a JSON array")),
        // JSONL fallback: one object per line, tolerating the array
        // brackets and trailing commas of the exporter's framing.
        Err(_) => body
            .lines()
            .map(|l| l.trim().trim_end_matches(','))
            .filter(|l| !l.is_empty() && *l != "[" && *l != "]")
            .map(|l| {
                serde_json::from_str(l).map_err(|e| format!("{path}: bad JSON line: {e}: {l}"))
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    let mut events = Vec::new();
    let mut dropped = 0u64;
    for v in values {
        let ph = v.get("ph").and_then(Value::as_str).unwrap_or_default();
        if ph == "M" {
            if v.get("name").and_then(Value::as_str) == Some("nfc_dropped_events") {
                dropped = v
                    .get("args")
                    .and_then(|a| a.get("dropped"))
                    .and_then(Value::as_u64)
                    .unwrap_or(0);
            }
            continue;
        }
        events.push(v);
    }
    Ok(Trace { events, dropped })
}

fn str_field<'a>(ev: &'a Value, key: &str) -> Option<&'a str> {
    ev.get(key).and_then(Value::as_str)
}

fn num_field(ev: &Value, key: &str) -> Option<f64> {
    ev.get(key).and_then(Value::as_f64)
}

/// Schema-checks one event, returning a violation message if any.
fn check_event(ev: &Value) -> Option<String> {
    let ph = match str_field(ev, "ph") {
        Some(p) => p,
        None => return Some("event without ph".into()),
    };
    for key in ["name", "cat"] {
        if str_field(ev, key).is_none() {
            return Some(format!("event without {key}"));
        }
    }
    for key in ["pid", "tid"] {
        if ev.get(key).and_then(Value::as_u64).is_none() {
            return Some(format!("event without integer {key}"));
        }
    }
    let ts = match num_field(ev, "ts") {
        Some(t) => t,
        None => return Some("event without ts".into()),
    };
    if !ts.is_finite() || ts < 0.0 {
        return Some(format!("non-finite or negative ts {ts}"));
    }
    match ph {
        "X" => match num_field(ev, "dur") {
            Some(d) if d.is_finite() && d >= 0.0 => {}
            _ => return Some("complete event without valid dur".into()),
        },
        "i" => {}
        other => return Some(format!("unexpected phase {other:?}")),
    }
    // Simulated-timeline events (pid 2) cross-reference the wall clock.
    if ev.get("pid").and_then(Value::as_u64) == Some(2)
        && ev
            .get("args")
            .and_then(|a| a.get("wall_ns"))
            .and_then(Value::as_f64)
            .is_none()
    {
        return Some("sim event without args.wall_ns".into());
    }
    None
}

fn by_category(trace: &Trace) -> BTreeMap<String, u64> {
    let mut cats = BTreeMap::new();
    for ev in &trace.events {
        let cat = str_field(ev, "cat").unwrap_or("?").to_string();
        *cats.entry(cat).or_insert(0) += 1;
    }
    cats
}

fn cmd_summary(path: &str) -> Result<(), String> {
    let trace = load(path)?;
    let cats = by_category(&trace);
    println!("trace     {path}");
    println!("events    {}", trace.events.len());
    println!("dropped   {}", trace.dropped);
    let mut wall = (f64::INFINITY, f64::NEG_INFINITY);
    let mut sim = (f64::INFINITY, f64::NEG_INFINITY);
    for ev in &trace.events {
        let ts = num_field(ev, "ts").unwrap_or(0.0);
        let end = ts + num_field(ev, "dur").unwrap_or(0.0);
        let extent = if ev.get("pid").and_then(Value::as_u64) == Some(2) {
            &mut sim
        } else {
            &mut wall
        };
        extent.0 = extent.0.min(ts);
        extent.1 = extent.1.max(end);
    }
    if wall.0.is_finite() {
        println!("wall      {:.1} us .. {:.1} us", wall.0, wall.1);
    }
    if sim.0.is_finite() {
        println!("sim       {:.1} us .. {:.1} us", sim.0, sim.1);
    }
    println!("-- events by category --");
    for (cat, n) in &cats {
        println!("{cat:<12} {n}");
    }
    Ok(())
}

/// Validates every trace; required categories are checked against the
/// union over all files (one experiment may export one trace per
/// deployment, and e.g. a CPU-only deployment legitimately has no GPU
/// events).
fn cmd_validate(paths: &[String], require: &[String]) -> Result<(), String> {
    let mut union: BTreeMap<String, u64> = BTreeMap::new();
    let mut total_events = 0usize;
    let mut total_dropped = 0u64;
    for path in paths {
        let trace = load(path)?;
        if trace.events.is_empty() {
            return Err(format!("{path}: trace has no events"));
        }
        for (i, ev) in trace.events.iter().enumerate() {
            if let Some(violation) = check_event(ev) {
                return Err(format!("{path}: event {i}: {violation}"));
            }
        }
        for (cat, n) in by_category(&trace) {
            *union.entry(cat).or_insert(0) += n;
        }
        total_events += trace.events.len();
        total_dropped += trace.dropped;
    }
    for cat in require {
        if !union.contains_key(cat) {
            return Err(format!(
                "required category {cat:?} absent (found: {:?})",
                union.keys().collect::<Vec<_>>()
            ));
        }
    }
    println!(
        "OK — {} file(s), {} events across {} categories, {} dropped",
        paths.len(),
        total_events,
        union.len(),
        total_dropped
    );
    Ok(())
}

fn cmd_prom(path: &str) -> Result<(), String> {
    let trace = load(path)?;
    println!("# TYPE nfc_trace_events_total counter");
    println!("nfc_trace_events_total {}", trace.events.len());
    println!("# TYPE nfc_trace_events_dropped_total counter");
    println!("nfc_trace_events_dropped_total {}", trace.dropped);
    for (cat, n) in by_category(&trace) {
        println!("nfc_trace_category_events_total{{cat=\"{cat}\"}} {n}");
    }
    Ok(())
}

/// Prints the adaptation timeline recorded by the control plane
/// (`cat == "control"`: one instant per controller decision).
fn cmd_controller(path: &str) -> Result<(), String> {
    let trace = load(path)?;
    let mut rows: Vec<&Value> = trace
        .events
        .iter()
        .filter(|ev| str_field(ev, "cat") == Some("control"))
        .collect();
    rows.sort_by(|a, b| {
        num_field(a, "ts")
            .unwrap_or(0.0)
            .total_cmp(&num_field(b, "ts").unwrap_or(0.0))
    });
    println!("trace       {path}");
    println!("decisions   {}", rows.len());
    if rows.is_empty() {
        println!("(no control events — controller disabled, idle, or telemetry off)");
        return Ok(());
    }
    let mut swaps = 0u64;
    let mut swap_total_ns = 0.0;
    println!(
        "{:>10}  {:>5}  {:<12}  {:>5} -> {:<5}  {:>9}  reason",
        "ts(us)", "epoch", "stage", "old", "new", "swap(us)"
    );
    for ev in &rows {
        let arg = |k: &str| ev.get("args").and_then(|a| a.get(k));
        let ts = num_field(ev, "ts").unwrap_or(0.0);
        let epoch = arg("epoch").and_then(Value::as_u64).unwrap_or(0);
        let stage = arg("stage").and_then(Value::as_str).unwrap_or("?");
        let reason = arg("reason").and_then(Value::as_str).unwrap_or("?");
        let old_ratio = arg("old_ratio").and_then(Value::as_f64).unwrap_or(0.0);
        let new_ratio = arg("new_ratio").and_then(Value::as_f64).unwrap_or(0.0);
        let swap_ns = arg("swap_ns").and_then(Value::as_f64).unwrap_or(0.0);
        if (old_ratio - new_ratio).abs() > 1e-9 || swap_ns > 0.0 {
            swaps += 1;
            swap_total_ns += swap_ns;
        }
        let old = format!("{:.0}%", old_ratio * 100.0);
        let new = format!("{:.0}%", new_ratio * 100.0);
        println!(
            "{ts:>10.1}  {epoch:>5}  {stage:<12}  {old:>5} -> {new:<5}  {:>9.2}  {reason}",
            swap_ns / 1e3,
        );
    }
    println!("-- {} plan change(s) applied --", swaps);
    if swaps > 0 {
        println!(
            "mean swap latency {:.2} us",
            swap_total_ns / swaps as f64 / 1e3
        );
    }
    Ok(())
}

const USAGE: &str =
    "usage: nfc-trace <summary|validate|prom|controller> <trace.json>... [--require cat1,cat2]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match args.first() {
        Some(c) => c.as_str(),
        None => return fail(USAGE),
    };
    let mut paths: Vec<String> = Vec::new();
    let mut require: Vec<String> = Vec::new();
    let mut rest = args[1..].iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--require" => match rest.next() {
                Some(list) => {
                    require.extend(list.split(',').map(|s| s.trim().to_string()));
                }
                None => return fail("--require needs a comma-separated category list"),
            },
            flag if flag.starts_with("--") => {
                return fail(&format!("unknown flag {flag:?}\n{USAGE}"))
            }
            path => paths.push(path.to_string()),
        }
    }
    if paths.is_empty() {
        return fail(USAGE);
    }
    let result = match cmd {
        "summary" => paths.iter().try_for_each(|p| cmd_summary(p)),
        "validate" => cmd_validate(&paths, &require),
        "prom" => paths.iter().try_for_each(|p| cmd_prom(p)),
        "controller" => paths.iter().try_for_each(|p| cmd_controller(p)),
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&e),
    }
}
