//! `nfc-trace`: inspect, validate and analyze Chrome-trace JSON files
//! exported by the `nfc-telemetry` runtime (`NFC_TELEMETRY=trace.json`).
//!
//! Subcommands:
//!
//! * `summary <trace.json>` — event totals, per-category counts, span
//!   durations and the wall/sim timeline extents.
//! * `validate <trace.json> [--require cat1,cat2,...]` — schema-check
//!   every event, reject overlapping/non-monotonic simulated spans
//!   within a `(track, name)` lane, spans ending before their start,
//!   non-monotonic controller `epoch` markers, overlapping live swap
//!   windows on one track, overlapping `link_transfer` spans per link
//!   track, and cluster shard maps that fail to tile the 32-bit flow
//!   space; exits non-zero on any violation, for CI smoke tests.
//! * `prom <trace.json>` — re-derive a Prometheus-style text snapshot
//!   from the trace's events.
//! * `controller <trace.json>` — the adaptive control plane's
//!   adaptation timeline: trigger reason, old → new offload ratio and
//!   charged swap latency for every controller decision.
//! * `attribution <trace.json> [--json]` — per-batch latency
//!   decomposition into compute/transfer/queue/drain/merge-wait
//!   buckets, aggregated over the trace; `--json` emits the
//!   machine-readable summary `diff` consumes as a baseline.
//! * `critical-path <trace.json>` — the worst batch of every controller
//!   epoch and the dependency chain its completion actually waited on.
//! * `flame <trace.json> [--wall]` — folded flame stacks (simulated
//!   resource time by default, functional wall time with `--wall`) for
//!   `flamegraph.pl` / speedscope.
//! * `diff <baseline.json> <trace.json> [--threshold pct]` — compare a
//!   trace's attribution against a committed baseline (the output of
//!   `attribution --json`); exits non-zero when any simulated-time
//!   metric regressed more than the threshold (default 10%).
//! * `calibrate <trace.json> [--launch-per-batch]` — re-fit the
//!   calibration constants from observed kernel/DMA/IO spans and
//!   report drift vs. the paper anchors in `nfc-hetero`'s `calib`.
//! * `health <trace.json> [--json] [--baseline health.json]` — the
//!   health plane's SLO burn-rate verdicts and cost-model drift
//!   watchdog state; `--baseline` gates the integer verdict/breach
//!   counters against a committed snapshot for CI.
//! * `whatif <trace.json> --speedup <element>=<k> [--json]` — causal
//!   what-if projection: re-walk every batch's critical path with the
//!   matched resource lanes sped up `k`x (waits kept, busy scaled) and
//!   report the predicted chain speedup.
//! * `flow <trace.json> [key] [--json]` — with a key (decimal or
//!   0x-hex RSS hash), the stitched cross-server timeline of that
//!   sampled flow, hop by hop (the hop deltas telescope to the e2e
//!   latency exactly); without a key, the flow-plane digest whose
//!   `--json` form is the committed baseline `diff` gates against.
//! * `sessions <trace.json> [--json]` — built/teardown/deny totals of
//!   the structured connection records cut by `SessionLog` elements.

use nfc_telemetry::{
    attribution, calibrate, critical_paths, folded_stacks, folded_stacks_wall, whatif,
    AttributionReport, Buckets, CalibAnchors, Event, EventKind, SimStamp, WhatIfReport,
};
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// One parsed trace: metadata records and regular events.
struct Trace {
    /// Non-metadata events (`ph` != `"M"`).
    events: Vec<Value>,
    /// Dropped-event count from the `nfc_dropped_events` metadata.
    dropped: u64,
    /// Simulated-timeline lane names from pid-2 `thread_name` metadata.
    thread_names: BTreeMap<u64, String>,
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("nfc-trace: {msg}");
    ExitCode::FAILURE
}

fn parse(body: &str, path: &str) -> Result<Trace, String> {
    let values: Vec<Value> = match serde_json::from_str(body) {
        Ok(Value::Array(vals)) => vals,
        Ok(_) => return Err(format!("{path}: top level is not a JSON array")),
        // JSONL fallback: one object per line, tolerating the array
        // brackets and trailing commas of the exporter's framing.
        Err(_) => body
            .lines()
            .map(|l| l.trim().trim_end_matches(','))
            .filter(|l| !l.is_empty() && *l != "[" && *l != "]")
            .map(|l| {
                serde_json::from_str(l).map_err(|e| format!("{path}: bad JSON line: {e}: {l}"))
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    let mut events = Vec::new();
    let mut dropped = 0u64;
    let mut thread_names = BTreeMap::new();
    for v in values {
        let ph = v.get("ph").and_then(Value::as_str).unwrap_or_default();
        if ph == "M" {
            match v.get("name").and_then(Value::as_str) {
                Some("nfc_dropped_events") => {
                    dropped = v
                        .get("args")
                        .and_then(|a| a.get("dropped"))
                        .and_then(Value::as_u64)
                        .unwrap_or(0);
                }
                Some("thread_name") if v.get("pid").and_then(Value::as_u64) == Some(2) => {
                    if let (Some(tid), Some(name)) = (
                        v.get("tid").and_then(Value::as_u64),
                        v.get("args")
                            .and_then(|a| a.get("name"))
                            .and_then(Value::as_str),
                    ) {
                        thread_names.insert(tid, name.to_string());
                    }
                }
                _ => {}
            }
            continue;
        }
        events.push(v);
    }
    Ok(Trace {
        events,
        dropped,
        thread_names,
    })
}

fn load(path: &str) -> Result<Trace, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse(&body, path)
}

/// Parses a flow key (the RSS hash) as decimal or `0x`-prefixed hex.
fn parse_flow_key(s: &str) -> Option<u64> {
    let key = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u32::from_str_radix(hex, 16).ok()?,
        None => s.parse::<u32>().ok()?,
    };
    Some(u64::from(key))
}

fn str_field<'a>(ev: &'a Value, key: &str) -> Option<&'a str> {
    ev.get(key).and_then(Value::as_str)
}

fn num_field(ev: &Value, key: &str) -> Option<f64> {
    ev.get(key).and_then(Value::as_f64)
}

fn arg_u64(ev: &Value, key: &str) -> u64 {
    ev.get("args")
        .and_then(|a| a.get(key))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

fn arg_f64(ev: &Value, key: &str) -> f64 {
    ev.get("args")
        .and_then(|a| a.get(key))
        .and_then(Value::as_f64)
        .unwrap_or(0.0)
}

fn arg_str<'a>(ev: &'a Value, key: &str) -> &'a str {
    ev.get("args")
        .and_then(|a| a.get(key))
        .and_then(Value::as_str)
        .unwrap_or("")
}

/// Re-types the exported JSON back into `nfc-telemetry` [`Event`]s so
/// the attribution analyses run identically on a re-parsed trace and on
/// the in-memory stream. Events the analyses don't consume are skipped;
/// lane names are re-synthesized as `ResourceName` events from the
/// `thread_name` metadata.
fn typed_events(trace: &Trace) -> Vec<Event> {
    let mut out: Vec<Event> = trace
        .thread_names
        .iter()
        .map(|(tid, name)| Event {
            wall_ns: 0,
            wall_dur_ns: 0,
            sim: None,
            track: *tid as u32,
            batch: 0,
            kind: EventKind::ResourceName {
                resource: *tid as u32,
                name: name.clone(),
            },
        })
        .collect();
    for ev in &trace.events {
        let name = str_field(ev, "name").unwrap_or_default();
        let kind = match name {
            "resource_busy" => EventKind::ResourceBusy {
                resource: arg_u64(ev, "resource") as u32,
                user: arg_u64(ev, "user"),
                queued_ns: arg_f64(ev, "queued_ns"),
            },
            "kernel_launch" => EventKind::KernelLaunch {
                queue: arg_u64(ev, "queue") as u32,
                user: arg_u64(ev, "user"),
                bytes: arg_u64(ev, "bytes"),
                packets: arg_u64(ev, "packets") as u32,
                kernels: arg_u64(ev, "kernels") as u32,
            },
            "kernel_teardown" => EventKind::KernelTeardown {
                resource: arg_u64(ev, "resource") as u32,
                from_user: arg_u64(ev, "from_user"),
                to_user: arg_u64(ev, "to_user"),
                penalty_ns: arg_f64(ev, "penalty_ns"),
            },
            "dma_h2d" | "dma_d2h" => EventKind::Dma {
                to_device: name == "dma_h2d",
                bytes: arg_u64(ev, "bytes"),
            },
            "sm_occupancy" => EventKind::SmOccupancy {
                queue: arg_u64(ev, "queue") as u32,
                occupancy_pct: arg_u64(ev, "occupancy_pct") as u8,
            },
            "batch_ingress" => EventKind::BatchIngress {
                seq: arg_u64(ev, "seq"),
                packets: arg_u64(ev, "packets") as u32,
                wire_bytes: arg_u64(ev, "wire_bytes"),
            },
            "batch_egress" => EventKind::BatchEgress {
                seq: arg_u64(ev, "seq"),
                packets: arg_u64(ev, "packets") as u32,
                bytes: arg_u64(ev, "bytes"),
            },
            "batch_attribution" => EventKind::BatchAttribution {
                seq: arg_u64(ev, "seq"),
                e2e_ns: arg_f64(ev, "e2e_ns"),
                compute_ns: arg_f64(ev, "compute_ns"),
                transfer_ns: arg_f64(ev, "transfer_ns"),
                queue_ns: arg_f64(ev, "queue_ns"),
                drain_ns: arg_f64(ev, "drain_ns"),
                merge_wait_ns: arg_f64(ev, "merge_wait_ns"),
            },
            "epoch" => EventKind::Epoch {
                epoch: arg_u64(ev, "epoch"),
            },
            "slo_burn" => EventKind::SloBurn {
                epoch: arg_u64(ev, "epoch"),
                objective: match arg_str(ev, "objective") {
                    "p99_latency" => "p99_latency",
                    "throughput" => "throughput",
                    "drops" => "drops",
                    _ => "objective",
                },
                fast_burn: arg_f64(ev, "fast_burn"),
                slow_burn: arg_f64(ev, "slow_burn"),
                breached: arg_u64(ev, "breached") != 0,
            },
            "model_drift" => EventKind::ModelDrift {
                epoch: arg_u64(ev, "epoch"),
                predicted_ns: arg_f64(ev, "predicted_ns"),
                observed_ns: arg_f64(ev, "observed_ns"),
                drift: arg_f64(ev, "drift"),
                raised: arg_u64(ev, "raised") != 0,
            },
            "shard_range" => EventKind::ShardRange {
                epoch: arg_u64(ev, "epoch"),
                server: arg_u64(ev, "server") as u32,
                start: arg_u64(ev, "start"),
                end: arg_u64(ev, "end"),
            },
            "link_transfer" => EventKind::LinkTransfer {
                link: arg_u64(ev, "link") as u32,
                packets: arg_u64(ev, "packets") as u32,
                bytes: arg_u64(ev, "bytes"),
            },
            "cluster_rebalance" => EventKind::ClusterRebalance {
                epoch: arg_u64(ev, "epoch"),
                from: arg_u64(ev, "from") as u32,
                to: arg_u64(ev, "to") as u32,
                vnodes: arg_u64(ev, "vnodes") as u32,
                migrated_bytes: arg_u64(ev, "migrated_bytes"),
                swap_ns: arg_f64(ev, "swap_ns"),
            },
            n if n.starts_with("stage:") => EventKind::Stage {
                branch: arg_u64(ev, "branch") as u32,
                stage: arg_u64(ev, "stage") as u32,
                name: arg_str(ev, "nf").to_string(),
                packets: arg_u64(ev, "packets") as u32,
            },
            n if n.starts_with("flow_") => EventKind::FlowPoint {
                flow: arg_u64(ev, "flow") as u32,
                point: match &n[5..] {
                    "ingress" => "ingress",
                    "lanes" => "lanes",
                    "cache_hit" => "cache_hit",
                    "cache_miss" => "cache_miss",
                    "stage" => "stage",
                    "kernel" => "kernel",
                    "shard" => "shard",
                    "migrate" => "migrate",
                    "merge" => "merge",
                    "egress" => "egress",
                    _ => "point",
                },
                server: arg_u64(ev, "server") as u32,
                packets: arg_u64(ev, "packets") as u32,
            },
            n if n.starts_with("session_") => EventKind::Session {
                state: match &n[8..] {
                    "built" => "built",
                    "teardown" => "teardown",
                    "deny" => "deny",
                    _ => "state",
                },
                flow: arg_u64(ev, "flow") as u32,
                packets: arg_u64(ev, "packets"),
                bytes: arg_u64(ev, "bytes"),
            },
            "flight_dump" => EventKind::FlightDump {
                reason: match arg_str(ev, "reason") {
                    "slo_burn" => "slo_burn",
                    "model_drift" => "model_drift",
                    "manual" => "manual",
                    _ => "reason",
                },
                events: arg_u64(ev, "events") as u32,
            },
            _ => continue,
        };
        let ts_us = num_field(ev, "ts").unwrap_or(0.0);
        let dur_us = num_field(ev, "dur").unwrap_or(0.0);
        let (sim, wall_ns, wall_dur_ns) = if ev.get("pid").and_then(Value::as_u64) == Some(2) {
            (
                Some(SimStamp {
                    start_ns: ts_us * 1000.0,
                    end_ns: (ts_us + dur_us) * 1000.0,
                }),
                arg_f64(ev, "wall_ns") as u64,
                0,
            )
        } else {
            (
                None,
                (ts_us * 1000.0).round() as u64,
                (dur_us * 1000.0).round() as u64,
            )
        };
        out.push(Event {
            wall_ns,
            wall_dur_ns,
            sim,
            track: ev.get("tid").and_then(Value::as_u64).unwrap_or(0) as u32,
            batch: arg_u64(ev, "batch"),
            kind,
        });
    }
    out
}

/// Schema-checks one event, returning a violation message if any.
fn check_event(ev: &Value) -> Option<String> {
    let ph = match str_field(ev, "ph") {
        Some(p) => p,
        None => return Some("event without ph".into()),
    };
    for key in ["name", "cat"] {
        if str_field(ev, key).is_none() {
            return Some(format!("event without {key}"));
        }
    }
    for key in ["pid", "tid"] {
        if ev.get(key).and_then(Value::as_u64).is_none() {
            return Some(format!("event without integer {key}"));
        }
    }
    let ts = match num_field(ev, "ts") {
        Some(t) => t,
        None => return Some("event without ts".into()),
    };
    if !ts.is_finite() || ts < 0.0 {
        return Some(format!("non-finite or negative ts {ts}"));
    }
    match ph {
        "X" => match num_field(ev, "dur") {
            // A negative dur is a span ending before its start.
            Some(d) if d.is_finite() && d >= 0.0 => {}
            _ => return Some("complete event without valid dur (span ends before start)".into()),
        },
        "i" => {}
        other => return Some(format!("unexpected phase {other:?}")),
    }
    // Simulated-timeline events (pid 2) cross-reference the wall clock.
    if ev.get("pid").and_then(Value::as_u64) == Some(2)
        && ev
            .get("args")
            .and_then(|a| a.get("wall_ns"))
            .and_then(Value::as_f64)
            .is_none()
    {
        return Some("sim event without args.wall_ns".into());
    }
    // SM-occupancy instants report the share of one device's SM slots;
    // a device cannot host more resident warps than it has SMs, so any
    // value above 100 % of sm_count means residency accounting broke.
    if str_field(ev, "name") == Some("sm_occupancy") {
        match ev
            .get("args")
            .and_then(|a| a.get("occupancy_pct"))
            .and_then(Value::as_f64)
        {
            Some(pct) if pct.is_finite() && (0.0..=100.0).contains(&pct) => {}
            Some(pct) => {
                return Some(format!(
                    "sm_occupancy of {pct}% is outside 0-100% of sm_count"
                ))
            }
            None => return Some("sm_occupancy event without args.occupancy_pct".into()),
        }
    }
    None
}

/// Rejects overlapping (non-monotonic) simulated `resource_busy` spans
/// within one track. The simulator places busy intervals on each
/// resource without intersection by construction, so two busy spans on
/// the same track overlapping means the trace is corrupt. Instants are
/// exempt, as are the semantic GPU/DMA spans (`kernel_launch`, `dma_*`)
/// — those stretch from request to completion and legitimately cover
/// queueing behind an earlier batch.
fn check_sim_lanes(trace: &Trace, path: &str) -> Result<(), String> {
    let mut lanes: BTreeMap<(u64, &str), Vec<(f64, f64)>> = BTreeMap::new();
    for ev in &trace.events {
        if ev.get("pid").and_then(Value::as_u64) != Some(2)
            || str_field(ev, "ph") != Some("X")
            || str_field(ev, "name") != Some("resource_busy")
        {
            continue;
        }
        let (Some(tid), Some(name), Some(ts)) = (
            ev.get("tid").and_then(Value::as_u64),
            str_field(ev, "name"),
            num_field(ev, "ts"),
        ) else {
            continue;
        };
        let dur = num_field(ev, "dur").unwrap_or(0.0);
        if dur <= 0.0 {
            continue; // zero-width spans cannot overlap
        }
        lanes.entry((tid, name)).or_default().push((ts, ts + dur));
    }
    for ((tid, name), mut spans) in lanes {
        spans.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        for w in spans.windows(2) {
            if w[1].0 < w[0].1 - 1e-9 {
                return Err(format!(
                    "{path}: non-monotonic sim timeline on track {tid} ({name}): span at \
                     {:.3} us starts before the previous span ends at {:.3} us",
                    w[1].0, w[0].1
                ));
            }
        }
    }
    Ok(())
}

/// Rejects corrupt control-plane timelines: `epoch` markers must be
/// strictly increasing per track (the controller's epoch counter is
/// monotonic by construction), and the reconfiguration windows implied
/// by applied `controller_decision` swaps (`[ts, ts + swap_ns]`) must
/// not overlap on one track — two live swaps cannot be in flight on the
/// same chain at once (the two-phase swap drains before it applies).
fn check_control_plane(trace: &Trace, path: &str) -> Result<(), String> {
    let mut epochs: BTreeMap<u64, Vec<(f64, u64)>> = BTreeMap::new();
    let mut swaps: BTreeMap<u64, Vec<(f64, f64)>> = BTreeMap::new();
    for ev in &trace.events {
        if ev.get("pid").and_then(Value::as_u64) != Some(2) {
            continue;
        }
        let tid = ev.get("tid").and_then(Value::as_u64).unwrap_or(0);
        let ts = num_field(ev, "ts").unwrap_or(0.0);
        match str_field(ev, "name") {
            Some("epoch") => epochs
                .entry(tid)
                .or_default()
                .push((ts, arg_u64(ev, "epoch"))),
            Some("controller_decision") => {
                let swap_ns = arg_f64(ev, "swap_ns");
                let applied = (arg_f64(ev, "old_ratio") - arg_f64(ev, "new_ratio")).abs() > 1e-9
                    || swap_ns > 0.0;
                if applied && swap_ns > 0.0 {
                    // ts is in us; swap_ns is charged in ns.
                    swaps.entry(tid).or_default().push((ts, ts + swap_ns / 1e3));
                }
            }
            _ => {}
        }
    }
    for (tid, mut markers) in epochs {
        markers.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in markers.windows(2) {
            if w[1].1 <= w[0].1 {
                return Err(format!(
                    "{path}: non-monotonic epoch markers on track {tid}: epoch {} at \
                     {:.3} us follows epoch {} at {:.3} us",
                    w[1].1, w[1].0, w[0].1, w[0].0
                ));
            }
        }
    }
    for (tid, mut windows) in swaps {
        windows.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        for w in windows.windows(2) {
            if w[1].0 < w[0].1 - 1e-9 {
                return Err(format!(
                    "{path}: overlapping swap windows on track {tid}: swap at {:.3} us \
                     starts before the previous swap drains at {:.3} us",
                    w[1].0, w[0].1
                ));
            }
        }
    }
    Ok(())
}

/// Rejects corrupt cluster timelines: `link_transfer` spans must not
/// overlap on one link track (each inter-server link serializes its
/// transfers by construction), and every rebalance epoch's
/// `shard_range` instants must tile the 32-bit flow-hash space exactly
/// — no gaps, no overlaps, full coverage. A shard map leaving hashes
/// unowned (or doubly owned) would lose or duplicate flows.
fn check_cluster_plane(trace: &Trace, path: &str) -> Result<(), String> {
    const FLOW_SPACE: u64 = 1 << 32;
    let mut lanes: BTreeMap<u64, Vec<(f64, f64)>> = BTreeMap::new();
    let mut maps: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();
    for ev in &trace.events {
        if ev.get("pid").and_then(Value::as_u64) != Some(2) {
            continue;
        }
        match str_field(ev, "name") {
            Some("link_transfer") if str_field(ev, "ph") == Some("X") => {
                let tid = ev.get("tid").and_then(Value::as_u64).unwrap_or(0);
                let ts = num_field(ev, "ts").unwrap_or(0.0);
                let dur = num_field(ev, "dur").unwrap_or(0.0);
                if dur > 0.0 {
                    lanes.entry(tid).or_default().push((ts, ts + dur));
                }
            }
            Some("shard_range") => maps
                .entry(arg_u64(ev, "epoch"))
                .or_default()
                .push((arg_u64(ev, "start"), arg_u64(ev, "end"))),
            _ => {}
        }
    }
    for (tid, mut spans) in lanes {
        spans.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        for w in spans.windows(2) {
            if w[1].0 < w[0].1 - 1e-9 {
                return Err(format!(
                    "{path}: overlapping link-busy spans on link track {tid}: transfer at \
                     {:.3} us starts before the previous transfer ends at {:.3} us",
                    w[1].0, w[0].1
                ));
            }
        }
    }
    for (epoch, mut ranges) in maps {
        ranges.sort_unstable();
        let first = ranges[0].0;
        if first != 0 {
            return Err(format!(
                "{path}: shard map for epoch {epoch} does not cover the flow space: \
                 first range starts at {first}, not 0"
            ));
        }
        for w in ranges.windows(2) {
            if w[1].0 != w[0].1 {
                let what = if w[1].0 < w[0].1 { "overlap" } else { "gap" };
                return Err(format!(
                    "{path}: shard map for epoch {epoch} has a {what}: range ending at {} \
                     is followed by a range starting at {}",
                    w[0].1, w[1].0
                ));
            }
        }
        let last = ranges.last().unwrap().1;
        if last != FLOW_SPACE {
            return Err(format!(
                "{path}: shard map for epoch {epoch} does not cover the flow space: \
                 last range ends at {last}, not 2^32"
            ));
        }
    }
    Ok(())
}

/// Rejects corrupt flow-forensics timelines. Three invariants hold by
/// construction, so any violation means the trace (or the stitcher's
/// input) is corrupt:
///
/// 1. Flow points for one `(flow, track)` lane are emitted in
///    simulated-time order — the runtime stamps them as the replay
///    clock advances, never backwards.
/// 2. A session `teardown`/`deny` record always follows a `built` for
///    the same flow: connections cannot die before they exist.
/// 3. A `migrate` point is a handover marker stamped on the
///    destination's ingress track the instant the flow's next batch
///    lands there, so it must be immediately followed — on the same
///    `(flow, track)` lane, at the same instant — by a `shard` point
///    carrying the same server id. Anything else means the handover
///    leaked. (Points on the *old* server may legitimately postdate
///    the migrate: batches dispatched before the move drain there
///    while the new owner is already receiving.)
fn check_flow_plane(trace: &Trace, path: &str) -> Result<(), String> {
    let mut lanes: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    let mut handover: BTreeMap<(u64, u64), (f64, u64)> = BTreeMap::new();
    let mut sessions: BTreeMap<u64, Vec<(f64, String)>> = BTreeMap::new();
    for ev in &trace.events {
        if ev.get("pid").and_then(Value::as_u64) != Some(2) {
            continue;
        }
        let name = str_field(ev, "name").unwrap_or_default();
        let ts = num_field(ev, "ts").unwrap_or(0.0);
        if let Some(point) = name.strip_prefix("flow_") {
            let flow = arg_u64(ev, "flow");
            let server = arg_u64(ev, "server");
            let tid = ev.get("tid").and_then(Value::as_u64).unwrap_or(0);
            let last = lanes.entry((flow, tid)).or_insert(f64::NEG_INFINITY);
            if ts < *last - 1e-9 {
                return Err(format!(
                    "{path}: flow {flow:#010x} timeline not time-ordered on track {tid}: \
                     {name} at {ts:.3} us precedes the prior point at {:.3} us",
                    *last
                ));
            }
            *last = ts;
            if let Some((mig_ts, mig_server)) = handover.remove(&(flow, tid)) {
                if point != "shard" || server != mig_server || (ts - mig_ts).abs() > 1e-9 {
                    return Err(format!(
                        "{path}: flow {flow:#010x} migrate handover on track {tid} leaked: \
                         expected shard on server {mig_server} at {mig_ts:.3} us, \
                         got {name} on server {server} at {ts:.3} us"
                    ));
                }
            }
            if point == "migrate" {
                handover.insert((flow, tid), (ts, server));
            }
        } else if let Some(state) = name.strip_prefix("session_") {
            sessions
                .entry(arg_u64(ev, "flow"))
                .or_default()
                .push((ts, state.to_string()));
        }
    }
    if let Some(((flow, tid), (ts, server))) = handover.into_iter().next() {
        return Err(format!(
            "{path}: flow {flow:#010x} migrate to server {server} at {ts:.3} us on track {tid} \
             has no handover shard"
        ));
    }
    for (flow, mut recs) in sessions {
        recs.sort_by(|a, b| a.0.total_cmp(&b.0));
        if let Some((ts, state)) = recs.iter().find(|(_, s)| s != "built") {
            let built_before = recs.iter().any(|(t, s)| s == "built" && t <= ts);
            if !built_before {
                return Err(format!(
                    "{path}: session {state} for flow {flow:#010x} at {ts:.3} us \
                     has no preceding built record"
                ));
            }
        }
    }
    Ok(())
}

/// Aggregated flow/session-plane state re-read from a trace. The
/// integer fields are all derived from the deterministic simulated
/// timeline, so a committed JSON snapshot (`flow --json`) is a stable
/// CI baseline for `diff`.
#[derive(Debug, Default)]
struct FlowReport {
    /// touchpoint -> stamped instants.
    points: BTreeMap<String, u64>,
    /// Distinct sampled flow hashes seen on the flow plane.
    flows: std::collections::BTreeSet<u64>,
    /// session state -> (records, packets, bytes).
    sessions: BTreeMap<String, (u64, u64, u64)>,
    /// Distinct flow hashes with at least one session record.
    session_flows: std::collections::BTreeSet<u64>,
    /// Flight-recorder dumps and the events they carried.
    dumps: u64,
    dump_events: u64,
}

fn flow_report(trace: &Trace) -> FlowReport {
    let mut rep = FlowReport::default();
    for ev in &trace.events {
        let name = str_field(ev, "name").unwrap_or_default();
        if let Some(point) = name.strip_prefix("flow_") {
            *rep.points.entry(point.to_string()).or_insert(0) += 1;
            rep.flows.insert(arg_u64(ev, "flow"));
        } else if let Some(state) = name.strip_prefix("session_") {
            let s = rep.sessions.entry(state.to_string()).or_insert((0, 0, 0));
            s.0 += 1;
            s.1 += arg_u64(ev, "packets");
            s.2 += arg_u64(ev, "bytes");
            rep.session_flows.insert(arg_u64(ev, "flow"));
        } else if name == "flight_dump" {
            rep.dumps += 1;
            rep.dump_events += arg_u64(ev, "events");
        }
    }
    rep
}

fn flow_report_json(rep: &FlowReport) -> Value {
    let mut points = json!({});
    for (p, n) in &rep.points {
        points[p.as_str()] = json!(n);
    }
    let mut sessions = json!({});
    for (s, (records, packets, bytes)) in &rep.sessions {
        sessions[s.as_str()] = json!({
            "records": records, "packets": packets, "bytes": bytes,
        });
    }
    json!({
        "kind": "flow",
        "points": points,
        "flows": rep.flows.len(),
        "sessions": sessions,
        "session_flows": rep.session_flows.len(),
        "dumps": rep.dumps,
        "dump_events": rep.dump_events,
    })
}

/// One stitched row of a sampled flow's timeline: simulated instant
/// (us), touchpoint, server, track and packet count.
struct FlowRow {
    ts_us: f64,
    point: String,
    server: u64,
    track: u64,
    packets: u64,
}

/// Collects and time-orders every flow point stamped for `key`,
/// across tracks, servers and migrations — the stitched causal
/// timeline `flow <key>` renders.
fn flow_timeline(trace: &Trace, key: u64) -> Vec<FlowRow> {
    let mut rows: Vec<FlowRow> = trace
        .events
        .iter()
        .filter(|ev| arg_u64(ev, "flow") == key)
        .filter_map(|ev| {
            let point = str_field(ev, "name")?.strip_prefix("flow_")?;
            Some(FlowRow {
                ts_us: num_field(ev, "ts").unwrap_or(0.0),
                point: point.to_string(),
                server: arg_u64(ev, "server"),
                track: ev.get("tid").and_then(Value::as_u64).unwrap_or(0),
                packets: arg_u64(ev, "packets"),
            })
        })
        .collect();
    rows.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));
    rows
}

fn by_category(trace: &Trace) -> BTreeMap<String, u64> {
    let mut cats = BTreeMap::new();
    for ev in &trace.events {
        let cat = str_field(ev, "cat").unwrap_or("?").to_string();
        *cats.entry(cat).or_insert(0) += 1;
    }
    cats
}

fn cmd_summary(path: &str) -> Result<(), String> {
    let trace = load(path)?;
    let cats = by_category(&trace);
    println!("trace     {path}");
    println!("events    {}", trace.events.len());
    println!("dropped   {}", trace.dropped);
    let mut wall = (f64::INFINITY, f64::NEG_INFINITY);
    let mut sim = (f64::INFINITY, f64::NEG_INFINITY);
    for ev in &trace.events {
        let ts = num_field(ev, "ts").unwrap_or(0.0);
        let end = ts + num_field(ev, "dur").unwrap_or(0.0);
        let extent = if ev.get("pid").and_then(Value::as_u64) == Some(2) {
            &mut sim
        } else {
            &mut wall
        };
        extent.0 = extent.0.min(ts);
        extent.1 = extent.1.max(end);
    }
    if wall.0.is_finite() {
        println!("wall      {:.1} us .. {:.1} us", wall.0, wall.1);
    }
    if sim.0.is_finite() {
        println!("sim       {:.1} us .. {:.1} us", sim.0, sim.1);
    }
    println!("-- events by category --");
    for (cat, n) in &cats {
        println!("{cat:<12} {n}");
    }
    // Per-plane digest: one line per observability plane present in
    // the trace, so `summary` answers "what did this run record"
    // without a per-plane subcommand round-trip.
    let health = health_report(&trace);
    let flow = flow_report(&trace);
    let rebalances = trace
        .events
        .iter()
        .filter(|ev| str_field(ev, "name") == Some("cluster_rebalance"))
        .count();
    let transfers = trace
        .events
        .iter()
        .filter(|ev| str_field(ev, "name") == Some("link_transfer"))
        .count();
    if rebalances + transfers > 0
        || !health.objectives.is_empty()
        || health.drift_verdicts > 0
        || !flow.points.is_empty()
        || !flow.sessions.is_empty()
        || flow.dumps > 0
    {
        println!("-- planes --");
    }
    if rebalances + transfers > 0 {
        println!("cluster   {transfers} link transfer(s), {rebalances} rebalance(s)");
    }
    if !health.objectives.is_empty() || health.drift_verdicts > 0 {
        let (verdicts, breaches) = health
            .objectives
            .values()
            .fold((0, 0), |acc, v| (acc.0 + v.0, acc.1 + v.1));
        println!(
            "health    {verdicts} SLO verdict(s) ({breaches} breached), \
             drift raised {} of {}",
            health.drift_raised, health.drift_verdicts
        );
    }
    if !flow.points.is_empty() || flow.dumps > 0 {
        let stamps: u64 = flow.points.values().sum();
        println!(
            "flow      {} sampled flow(s), {stamps} point(s), {} flight dump(s)",
            flow.flows.len(),
            flow.dumps
        );
    }
    if !flow.sessions.is_empty() {
        let per_state = |s: &str| flow.sessions.get(s).map_or(0, |v| v.0);
        println!(
            "session   {} flow(s): built {}, teardown {}, deny {}",
            flow.session_flows.len(),
            per_state("built"),
            per_state("teardown"),
            per_state("deny")
        );
    }
    Ok(())
}

/// `flow <trace> <key>` — the stitched cross-server timeline of one
/// sampled flow; `flow <trace>` — the flow-plane digest (`--json`
/// emits the baseline `diff` consumes).
fn cmd_flow(path: &str, key: Option<u64>, as_json: bool) -> Result<(), String> {
    let trace = load(path)?;
    let Some(key) = key else {
        let rep = flow_report(&trace);
        if rep.points.is_empty() && rep.sessions.is_empty() {
            return Err(format!(
                "{path}: no flow-plane events (NFC_FLOW_TRACE unarmed or telemetry off)"
            ));
        }
        if as_json {
            println!(
                "{}",
                serde_json::to_string_pretty(&flow_report_json(&rep)).expect("serializable")
            );
        } else {
            println!("trace     {path}");
            println!(
                "flows     {} sampled, {} flight dump(s)",
                rep.flows.len(),
                rep.dumps
            );
            for (point, n) in &rep.points {
                println!("  {point:<12} {n}");
            }
        }
        return Ok(());
    };
    let rows = flow_timeline(&trace, key);
    if rows.is_empty() {
        return Err(format!(
            "{path}: no flow points for flow {key:#010x} (not sampled, or key mistyped)"
        ));
    }
    if as_json {
        let out: Vec<Value> = rows
            .iter()
            .map(|r| {
                json!({
                    "ts_us": r.ts_us,
                    "point": r.point,
                    "server": r.server,
                    "track": r.track,
                    "packets": r.packets,
                })
            })
            .collect();
        let e2e_us = rows.last().unwrap().ts_us - rows[0].ts_us;
        println!(
            "{}",
            serde_json::to_string_pretty(&json!({
                "flow": key,
                "e2e_us": e2e_us,
                "points": out,
            }))
            .expect("serializable")
        );
        return Ok(());
    }
    println!("trace     {path}");
    println!("flow      {key:#010x}   {} point(s)", rows.len());
    println!(
        "{:>12}  {:<12} {:>6}  {:<14} {:>7}  {:>10}",
        "ts(us)", "point", "server", "lane", "pkts", "hop(us)"
    );
    // Each hop is the delta to the previous touchpoint, so the hops
    // telescope: their sum IS the end-to-end latency, exactly.
    let mut prev: Option<f64> = None;
    let mut hop_sum = 0.0;
    for r in &rows {
        let lane = trace
            .thread_names
            .get(&r.track)
            .map(String::as_str)
            .unwrap_or("?");
        let hop = prev.map(|p| r.ts_us - p).unwrap_or(0.0);
        hop_sum += hop;
        println!(
            "{:>12.3}  {:<12} {:>6}  {:<14} {:>7}  {:>10.3}",
            r.ts_us, r.point, r.server, lane, r.packets, hop
        );
        prev = Some(r.ts_us);
    }
    let e2e = rows.last().unwrap().ts_us - rows[0].ts_us;
    let servers: std::collections::BTreeSet<u64> = rows.iter().map(|r| r.server).collect();
    println!(
        "e2e       {e2e:.3} us over {} hop(s) across {} server(s) (hop sum {hop_sum:.3} us)",
        rows.len() - 1,
        servers.len()
    );
    Ok(())
}

/// `sessions <trace>` — summarizes the structured connection records
/// cut by `SessionLog` elements.
fn cmd_sessions(path: &str, as_json: bool) -> Result<(), String> {
    let trace = load(path)?;
    let rep = flow_report(&trace);
    if rep.sessions.is_empty() {
        return Err(format!(
            "{path}: no session records (no SessionLog in the chain or telemetry off)"
        ));
    }
    if as_json {
        let mut sessions = json!({});
        for (s, (records, packets, bytes)) in &rep.sessions {
            sessions[s.as_str()] = json!({
                "records": records, "packets": packets, "bytes": bytes,
            });
        }
        println!(
            "{}",
            serde_json::to_string_pretty(&json!({
                "flows": rep.session_flows.len(),
                "sessions": sessions,
            }))
            .expect("serializable")
        );
        return Ok(());
    }
    println!("trace     {path}");
    println!("flows     {}", rep.session_flows.len());
    println!(
        "{:<10} {:>8} {:>12} {:>14}",
        "state", "records", "packets", "bytes"
    );
    for (state, (records, packets, bytes)) in &rep.sessions {
        println!("{state:<10} {records:>8} {packets:>12} {bytes:>14}");
    }
    Ok(())
}

/// Validates every trace; required categories are checked against the
/// union over all files (one experiment may export one trace per
/// deployment, and e.g. a CPU-only deployment legitimately has no GPU
/// events).
fn cmd_validate(paths: &[String], require: &[String]) -> Result<(), String> {
    let mut union: BTreeMap<String, u64> = BTreeMap::new();
    let mut total_events = 0usize;
    let mut total_dropped = 0u64;
    for path in paths {
        let trace = load(path)?;
        if trace.events.is_empty() {
            return Err(format!("{path}: trace has no events"));
        }
        for (i, ev) in trace.events.iter().enumerate() {
            if let Some(violation) = check_event(ev) {
                return Err(format!("{path}: event {i}: {violation}"));
            }
        }
        check_sim_lanes(&trace, path)?;
        check_control_plane(&trace, path)?;
        check_cluster_plane(&trace, path)?;
        check_flow_plane(&trace, path)?;
        for (cat, n) in by_category(&trace) {
            *union.entry(cat).or_insert(0) += n;
        }
        total_events += trace.events.len();
        total_dropped += trace.dropped;
    }
    for cat in require {
        if !union.contains_key(cat) {
            return Err(format!(
                "required category {cat:?} absent (found: {:?})",
                union.keys().collect::<Vec<_>>()
            ));
        }
    }
    println!(
        "OK — {} file(s), {} events across {} categories, {} dropped",
        paths.len(),
        total_events,
        union.len(),
        total_dropped
    );
    Ok(())
}

fn cmd_prom(path: &str) -> Result<(), String> {
    let trace = load(path)?;
    println!("# TYPE nfc_trace_events_total counter");
    println!("nfc_trace_events_total {}", trace.events.len());
    println!("# TYPE nfc_trace_events_dropped_total counter");
    println!("nfc_trace_events_dropped_total {}", trace.dropped);
    for (cat, n) in by_category(&trace) {
        println!("nfc_trace_category_events_total{{cat=\"{cat}\"}} {n}");
    }
    Ok(())
}

/// Prints the adaptation timeline recorded by the control plane (one
/// `controller_decision` instant per evaluated stage; `epoch` markers
/// share the `control` category and are excluded).
fn cmd_controller(path: &str) -> Result<(), String> {
    let trace = load(path)?;
    let mut rows: Vec<&Value> = trace
        .events
        .iter()
        .filter(|ev| str_field(ev, "name") == Some("controller_decision"))
        .collect();
    rows.sort_by(|a, b| {
        num_field(a, "ts")
            .unwrap_or(0.0)
            .total_cmp(&num_field(b, "ts").unwrap_or(0.0))
    });
    println!("trace       {path}");
    println!("decisions   {}", rows.len());
    if rows.is_empty() {
        println!("(no control events — controller disabled, idle, or telemetry off)");
        return Ok(());
    }
    let mut swaps = 0u64;
    let mut swap_total_ns = 0.0;
    println!(
        "{:>10}  {:>5}  {:<12}  {:>5} -> {:<5}  {:>9}  reason",
        "ts(us)", "epoch", "stage", "old", "new", "swap(us)"
    );
    for ev in &rows {
        let ts = num_field(ev, "ts").unwrap_or(0.0);
        let epoch = arg_u64(ev, "epoch");
        let stage = arg_str(ev, "stage");
        let reason = arg_str(ev, "reason");
        let old_ratio = arg_f64(ev, "old_ratio");
        let new_ratio = arg_f64(ev, "new_ratio");
        let swap_ns = arg_f64(ev, "swap_ns");
        if (old_ratio - new_ratio).abs() > 1e-9 || swap_ns > 0.0 {
            swaps += 1;
            swap_total_ns += swap_ns;
        }
        let stage = if stage.is_empty() { "?" } else { stage };
        let reason = if reason.is_empty() { "?" } else { reason };
        let old = format!("{:.0}%", old_ratio * 100.0);
        let new = format!("{:.0}%", new_ratio * 100.0);
        println!(
            "{ts:>10.1}  {epoch:>5}  {stage:<12}  {old:>5} -> {new:<5}  {:>9.2}  {reason}",
            swap_ns / 1e3,
        );
    }
    println!("-- {} plan change(s) applied --", swaps);
    if swaps > 0 {
        println!(
            "mean swap latency {:.2} us",
            swap_total_ns / swaps as f64 / 1e3
        );
    }
    Ok(())
}

fn buckets_json(b: &Buckets) -> Value {
    json!({
        "compute_ns": b.compute_ns,
        "transfer_ns": b.transfer_ns,
        "queue_ns": b.queue_ns,
        "drain_ns": b.drain_ns,
        "merge_wait_ns": b.merge_wait_ns,
    })
}

fn attribution_json(rep: &AttributionReport) -> Value {
    json!({
        "batches": rep.batches,
        "packets": rep.packets,
        "mean_e2e_ns": rep.mean_e2e_ns,
        "p99_e2e_ns": rep.p99_e2e_ns,
        "max_e2e_ns": rep.max_e2e_ns,
        "mean": buckets_json(&rep.mean),
        "total": buckets_json(&rep.total),
    })
}

fn cmd_attribution(path: &str, as_json: bool) -> Result<(), String> {
    let trace = load(path)?;
    let events = typed_events(&trace);
    let rep = attribution(&events);
    if rep.batches == 0 {
        return Err(format!(
            "{path}: no batch_attribution events (telemetry off or pre-attribution trace)"
        ));
    }
    if as_json {
        println!(
            "{}",
            serde_json::to_string_pretty(&attribution_json(&rep)).expect("serializable")
        );
        return Ok(());
    }
    println!("trace     {path}");
    println!("batches   {}   packets {}", rep.batches, rep.packets);
    println!(
        "e2e       mean {:.2} us   p99 {:.2} us   max {:.2} us",
        rep.mean_e2e_ns / 1e3,
        rep.p99_e2e_ns / 1e3,
        rep.max_e2e_ns / 1e3
    );
    println!("{:<15} {:>12} {:>8}", "bucket", "mean(us)", "share");
    let total: f64 = rep.mean.total();
    for (name, v) in rep.mean.entries() {
        let share = if total > 0.0 { v / total * 100.0 } else { 0.0 };
        println!("{name:<15} {:>12.3} {share:>7.1}%", v / 1e3);
    }
    Ok(())
}

/// Aggregated health-plane state re-read from a trace's `slo_burn` and
/// `model_drift` instants. Integer fields are the CI gate: they are
/// derived from the deterministic simulated timeline, so a committed
/// baseline stays stable across machines.
#[derive(Debug, Default)]
struct HealthReport {
    /// objective -> (verdicts, breaches, max fast burn, max slow burn).
    objectives: BTreeMap<String, (u64, u64, f64, f64)>,
    drift_verdicts: u64,
    drift_raised: u64,
    max_drift: f64,
    first_raised_epoch: u64,
}

fn health_report(trace: &Trace) -> HealthReport {
    let mut rep = HealthReport::default();
    for ev in &trace.events {
        match str_field(ev, "name") {
            Some("slo_burn") => {
                let o = rep
                    .objectives
                    .entry(arg_str(ev, "objective").to_string())
                    .or_insert((0, 0, 0.0, 0.0));
                o.0 += 1;
                o.1 += arg_u64(ev, "breached");
                o.2 = o.2.max(arg_f64(ev, "fast_burn"));
                o.3 = o.3.max(arg_f64(ev, "slow_burn"));
            }
            Some("model_drift") => {
                rep.drift_verdicts += 1;
                rep.max_drift = rep.max_drift.max(arg_f64(ev, "drift"));
                if arg_u64(ev, "raised") != 0 {
                    rep.drift_raised += 1;
                    if rep.first_raised_epoch == 0 {
                        rep.first_raised_epoch = arg_u64(ev, "epoch");
                    }
                }
            }
            _ => {}
        }
    }
    rep
}

fn health_json(rep: &HealthReport) -> Value {
    let mut slo = json!({});
    for (name, (verdicts, breaches, fast, slow)) in &rep.objectives {
        slo[name.as_str()] = json!({
            "verdicts": verdicts,
            "breaches": breaches,
            "max_fast_burn": fast,
            "max_slow_burn": slow,
        });
    }
    json!({
        "slo": slo,
        "drift": {
            "verdicts": rep.drift_verdicts,
            "raised": rep.drift_raised,
            "max_drift": rep.max_drift,
            "first_raised_epoch": rep.first_raised_epoch,
        },
    })
}

fn cmd_health(path: &str, as_json: bool, baseline: Option<&str>) -> Result<(), String> {
    let trace = load(path)?;
    let rep = health_report(&trace);
    if rep.objectives.is_empty() && rep.drift_verdicts == 0 {
        return Err(format!(
            "{path}: no health events (SLO unarmed or telemetry off)"
        ));
    }
    if let Some(base_path) = baseline {
        // The gate compares the integer verdict/breach counters exactly:
        // they are simulated-time facts, so any change is a real
        // behavioural change, not measurement noise.
        let body = std::fs::read_to_string(base_path)
            .map_err(|e| format!("cannot read {base_path}: {e}"))?;
        let base: Value =
            serde_json::from_str(&body).map_err(|e| format!("{base_path}: bad JSON: {e}"))?;
        let cur = health_json(&rep);
        let mut mismatches = Vec::new();
        for (obj, stats) in &rep.objectives {
            for key in ["verdicts", "breaches"] {
                let want = base["slo"][obj.as_str()][key].as_u64();
                let got = if key == "verdicts" { stats.0 } else { stats.1 };
                if want != Some(got) {
                    mismatches.push(format!("slo.{obj}.{key}: baseline {want:?}, trace {got}"));
                }
            }
        }
        for key in ["verdicts", "raised"] {
            let want = base["drift"][key].as_u64();
            let got = cur["drift"][key].as_u64().unwrap_or(0);
            if want != Some(got) {
                mismatches.push(format!("drift.{key}: baseline {want:?}, trace {got}"));
            }
        }
        if !mismatches.is_empty() {
            return Err(format!(
                "{path}: health state diverged from {base_path}:\n  {}",
                mismatches.join("\n  ")
            ));
        }
    }
    if as_json {
        println!(
            "{}",
            serde_json::to_string_pretty(&health_json(&rep)).expect("serializable")
        );
        return Ok(());
    }
    println!("trace     {path}");
    for (obj, (verdicts, breaches, fast, slow)) in &rep.objectives {
        println!(
            "slo {obj:<12} verdicts {verdicts:>4}   breaches {breaches:>4}   \
             max burn fast {fast:.2} / slow {slow:.2}"
        );
    }
    if rep.drift_verdicts > 0 {
        println!(
            "drift              verdicts {:>4}   raised {:>6}   max drift {:.3}{}",
            rep.drift_verdicts,
            rep.drift_raised,
            rep.max_drift,
            if rep.drift_raised > 0 {
                format!("   first raised @ epoch {}", rep.first_raised_epoch)
            } else {
                String::new()
            }
        );
    }
    if baseline.is_some() {
        println!("OK — health state matches baseline");
    }
    Ok(())
}

fn whatif_json(rep: &WhatIfReport) -> Value {
    json!({
        "element": rep.element,
        "factor": rep.factor,
        "matched_resources": rep.matched_resources,
        "batches": rep.batches,
        "baseline_mean_e2e_ns": rep.baseline_mean_e2e_ns,
        "predicted_mean_e2e_ns": rep.predicted_mean_e2e_ns,
        "speedup": rep.speedup,
        "epochs": rep.epochs.iter().map(|e| json!({
            "epoch": e.epoch,
            "seq": e.seq,
            "baseline_ns": e.baseline_ns,
            "predicted_ns": e.predicted_ns,
        })).collect::<Vec<_>>(),
    })
}

fn cmd_whatif(path: &str, speedup: &str, as_json: bool) -> Result<(), String> {
    let (element, factor) = speedup
        .split_once('=')
        .and_then(|(e, k)| k.parse::<f64>().ok().map(|k| (e.trim(), k)))
        .ok_or_else(|| format!("--speedup wants <element>=<factor>, got {speedup:?}"))?;
    if !(factor.is_finite() && factor > 0.0) {
        return Err(format!("--speedup factor must be positive, got {factor}"));
    }
    let trace = load(path)?;
    let events = typed_events(&trace);
    let rep = whatif(&events, element, factor);
    if rep.batches == 0 {
        return Err(format!("{path}: no attributed batches to project"));
    }
    if rep.matched_resources.is_empty() {
        return Err(format!(
            "{path}: no resource lane matches {element:?} (try `summary` for lane names)"
        ));
    }
    if as_json {
        println!(
            "{}",
            serde_json::to_string_pretty(&whatif_json(&rep)).expect("serializable")
        );
        return Ok(());
    }
    println!("trace     {path}");
    println!(
        "what-if   {}x faster {:?}  (matched lanes: {})",
        factor,
        element,
        rep.matched_resources.join(", ")
    );
    println!(
        "baseline  mean e2e {:.2} us over {} batches",
        rep.baseline_mean_e2e_ns / 1e3,
        rep.batches
    );
    println!(
        "predicted mean e2e {:.2} us  ->  chain speedup {:.3}x",
        rep.predicted_mean_e2e_ns / 1e3,
        rep.speedup
    );
    if !rep.epochs.is_empty() {
        println!(
            "{:>6} {:>8} {:>14} {:>14} {:>9}",
            "epoch", "batch", "baseline(us)", "predicted(us)", "speedup"
        );
        for e in &rep.epochs {
            let s = if e.predicted_ns > 0.0 {
                e.baseline_ns / e.predicted_ns
            } else {
                1.0
            };
            println!(
                "{:>6} {:>8} {:>14.2} {:>14.2} {:>8.3}x",
                e.epoch,
                e.seq,
                e.baseline_ns / 1e3,
                e.predicted_ns / 1e3,
                s
            );
        }
    }
    Ok(())
}

fn cmd_critical(path: &str, as_json: bool) -> Result<(), String> {
    let trace = load(path)?;
    let events = typed_events(&trace);
    let paths = critical_paths(&events);
    if paths.is_empty() {
        return Err(format!("{path}: no attributed batches to walk"));
    }
    if as_json {
        let rows: Vec<Value> = paths
            .iter()
            .map(|p| {
                json!({
                    "epoch": p.epoch,
                    "seq": p.seq,
                    "e2e_ns": p.e2e_ns,
                    "busy_ns": p.busy_ns,
                    "wait_ns": p.wait_ns,
                    "segments": p.segments.iter().map(|s| json!({
                        "name": s.name,
                        "start_ns": s.start_ns,
                        "busy_ns": s.busy_ns,
                        "wait_ns": s.wait_ns,
                    })).collect::<Vec<_>>(),
                })
            })
            .collect();
        println!(
            "{}",
            serde_json::to_string_pretty(&Value::Array(rows)).expect("serializable")
        );
        return Ok(());
    }
    println!("trace     {path}");
    for p in &paths {
        println!(
            "-- epoch {} · worst batch {} · e2e {:.2} us (busy {:.2} us, wait {:.2} us) --",
            p.epoch,
            p.seq,
            p.e2e_ns / 1e3,
            p.busy_ns / 1e3,
            p.wait_ns / 1e3
        );
        println!(
            "{:<16} {:>12} {:>10} {:>10}",
            "resource", "start(us)", "busy(us)", "wait(us)"
        );
        for s in &p.segments {
            println!(
                "{:<16} {:>12.2} {:>10.3} {:>10.3}",
                s.name,
                s.start_ns / 1e3,
                s.busy_ns / 1e3,
                s.wait_ns / 1e3
            );
        }
    }
    Ok(())
}

fn cmd_flame(path: &str, wall: bool) -> Result<(), String> {
    let trace = load(path)?;
    let events = typed_events(&trace);
    let folded = if wall {
        folded_stacks_wall(&events)
    } else {
        folded_stacks(&events)
    };
    if folded.is_empty() {
        return Err(format!("{path}: no spans to fold"));
    }
    for (stack, v) in folded {
        println!("{stack} {v}");
    }
    Ok(())
}

/// One metric compared by `diff`: baseline value vs. current value.
/// All compared metrics are simulated-time quantities, so they are
/// machine-independent and a committed baseline stays stable in CI.
fn diff_metrics(baseline: &Value, rep: &AttributionReport) -> Vec<(String, f64, f64)> {
    let mut rows = vec![
        (
            "mean_e2e_ns".to_string(),
            baseline["mean_e2e_ns"].as_f64().unwrap_or(f64::NAN),
            rep.mean_e2e_ns,
        ),
        (
            "p99_e2e_ns".to_string(),
            baseline["p99_e2e_ns"].as_f64().unwrap_or(f64::NAN),
            rep.p99_e2e_ns,
        ),
    ];
    for (name, v) in rep.mean.entries() {
        rows.push((
            format!("mean.{name}"),
            baseline["mean"][name].as_f64().unwrap_or(f64::NAN),
            v,
        ));
    }
    rows
}

/// Flow-plane metrics compared by `diff` when the baseline carries
/// `"kind": "flow"`: every counter named in the baseline vs. the
/// trace's re-derived [`FlowReport`]. All are deterministic
/// simulated-timeline integers, so the committed baseline is
/// machine-independent.
fn diff_flow_metrics(baseline: &Value, rep: &FlowReport) -> Vec<(String, f64, f64)> {
    let mut rows = vec![
        (
            "flows".to_string(),
            baseline["flows"].as_f64().unwrap_or(f64::NAN),
            rep.flows.len() as f64,
        ),
        (
            "dumps".to_string(),
            baseline["dumps"].as_f64().unwrap_or(f64::NAN),
            rep.dumps as f64,
        ),
    ];
    if let Some(points) = baseline["points"].as_object() {
        for (name, want) in points {
            rows.push((
                format!("points.{name}"),
                want.as_f64().unwrap_or(f64::NAN),
                rep.points.get(name).copied().unwrap_or(0) as f64,
            ));
        }
    }
    if let Some(sessions) = baseline["sessions"].as_object() {
        for (state, want) in sessions {
            rows.push((
                format!("sessions.{state}"),
                want["records"].as_f64().unwrap_or(f64::NAN),
                rep.sessions.get(state).map_or(0, |v| v.0) as f64,
            ));
        }
    }
    rows
}

fn cmd_diff(baseline_path: &str, trace_path: &str, threshold_pct: f64) -> Result<(), String> {
    let body = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read {baseline_path}: {e}"))?;
    let baseline: Value =
        serde_json::from_str(&body).map_err(|e| format!("{baseline_path}: bad JSON: {e}"))?;
    let trace = load(trace_path)?;
    // A `"kind": "flow"` baseline (the output of `flow --json`) gates
    // the forensics plane's counters instead of batch attribution:
    // divergence in either direction is a regression, because *losing*
    // flow points or session records silently blinds postmortems.
    if baseline.get("kind").and_then(Value::as_str) == Some("flow") {
        let rep = flow_report(&trace);
        if rep.points.is_empty() && rep.sessions.is_empty() {
            return Err(format!("{trace_path}: no flow-plane events to diff"));
        }
        println!("baseline  {baseline_path} (flow plane)");
        println!("trace     {trace_path}");
        println!(
            "{:<20} {:>12} {:>12} {:>9}",
            "metric", "baseline", "current", "delta"
        );
        let mut diverged = Vec::new();
        for (name, old, new) in diff_flow_metrics(&baseline, &rep) {
            if !old.is_finite() {
                return Err(format!("{baseline_path}: baseline missing metric {name}"));
            }
            let delta_pct = if old.abs() > 1e-9 {
                (new - old) / old * 100.0
            } else if new.abs() <= 1e-9 {
                0.0
            } else {
                f64::INFINITY
            };
            let bad = (new - old).abs() > old.abs() * threshold_pct / 100.0 + 1.0;
            println!(
                "{name:<20} {old:>12.0} {new:>12.0} {:>8.2}%{}",
                delta_pct,
                if bad { "  << DIVERGED" } else { "" }
            );
            if bad {
                diverged.push(name);
            }
        }
        return if diverged.is_empty() {
            println!("OK — no flow-plane metric diverged more than {threshold_pct}%");
            Ok(())
        } else {
            Err(format!(
                "{} flow-plane metric(s) diverged more than {threshold_pct}%: {}",
                diverged.len(),
                diverged.join(", ")
            ))
        };
    }
    let rep = attribution(&typed_events(&trace));
    if rep.batches == 0 {
        return Err(format!("{trace_path}: no batch_attribution events"));
    }
    println!("baseline  {baseline_path}");
    println!("trace     {trace_path}   ({} batches)", rep.batches);
    println!(
        "{:<20} {:>14} {:>14} {:>9}",
        "metric", "baseline(ns)", "current(ns)", "delta"
    );
    let mut regressions = Vec::new();
    for (name, old, new) in diff_metrics(&baseline, &rep) {
        if !old.is_finite() {
            return Err(format!("{baseline_path}: baseline missing metric {name}"));
        }
        let delta_pct = if old.abs() > 1e-9 {
            (new - old) / old * 100.0
        } else if new.abs() <= 1e-9 {
            0.0
        } else {
            f64::INFINITY
        };
        // Regression gate: relative threshold with a 1 ns absolute
        // floor so near-zero buckets don't trip on float noise.
        let regressed = new > old * (1.0 + threshold_pct / 100.0) + 1.0;
        println!(
            "{name:<20} {old:>14.1} {new:>14.1} {:>8.2}%{}",
            delta_pct,
            if regressed { "  << REGRESSED" } else { "" }
        );
        if regressed {
            regressions.push(name);
        }
    }
    if regressions.is_empty() {
        println!("OK — no metric regressed more than {threshold_pct}%");
        Ok(())
    } else {
        Err(format!(
            "{} metric(s) regressed more than {threshold_pct}%: {}",
            regressions.len(),
            regressions.join(", ")
        ))
    }
}

fn cmd_calibrate(path: &str, launch_per_batch: bool) -> Result<(), String> {
    let trace = load(path)?;
    let events = typed_events(&trace);
    let platform = nfc_hetero::PlatformConfig::hpca18();
    let anchors = CalibAnchors {
        gpu_ctx_switch_ns: nfc_hetero::calib::GPU_CONTEXT_SWITCH_NS,
        gpu_dispatch_ns: if launch_per_batch {
            nfc_hetero::calib::GPU_LAUNCH_NS
        } else {
            nfc_hetero::calib::GPU_PERSISTENT_DISPATCH_NS
        },
        pcie_dma_latency_ns: platform.pcie.dma_latency_ns,
        pcie_bw_gbs: platform.pcie.bw_gbs,
        io_cycles_per_packet: nfc_hetero::calib::IO_CYCLES_PER_PACKET,
        ns_per_cycle: platform.cpu.ns_per_cycle(),
        gpu_residency_pressure: nfc_hetero::calib::GPU_RESIDENCY_PRESSURE,
    };
    let fits = calibrate(&events, &anchors);
    println!("trace     {path}");
    println!(
        "{:<24} {:>12} {:>12} {:>8} {:>8}",
        "constant", "anchored", "observed", "drift", "samples"
    );
    for f in &fits {
        let (obs, drift) = if f.observed.is_finite() {
            (
                format!("{:.2}", f.observed),
                format!("{:+.2}%", f.drift_pct()),
            )
        } else {
            ("n/a".to_string(), "n/a".to_string())
        };
        println!(
            "{:<24} {:>12.2} {:>12} {:>8} {:>8}",
            f.name, f.anchored, obs, drift, f.samples
        );
    }
    Ok(())
}

const USAGE: &str = "usage: nfc-trace <summary|validate|prom|controller|attribution|critical-path|\
flame|diff|calibrate|health|whatif|flow|sessions> <trace.json>... [--require cat1,cat2] [--json] \
[--wall] [--threshold pct] [--launch-per-batch] [--baseline health.json] [--speedup element=k] \
[flow key: decimal or 0x-hex after the trace path]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match args.first() {
        Some(c) => c.as_str(),
        None => return fail(USAGE),
    };
    let mut paths: Vec<String> = Vec::new();
    let mut require: Vec<String> = Vec::new();
    let mut as_json = false;
    let mut wall = false;
    let mut launch_per_batch = false;
    let mut threshold_pct = 10.0;
    let mut baseline: Option<String> = None;
    let mut speedup: Option<String> = None;
    let mut rest = args[1..].iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--require" => match rest.next() {
                Some(list) => {
                    require.extend(list.split(',').map(|s| s.trim().to_string()));
                }
                None => return fail("--require needs a comma-separated category list"),
            },
            "--threshold" => match rest.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => threshold_pct = t,
                _ => return fail("--threshold needs a non-negative percentage"),
            },
            "--json" => as_json = true,
            "--wall" => wall = true,
            "--launch-per-batch" => launch_per_batch = true,
            "--baseline" => match rest.next() {
                Some(p) => baseline = Some(p.clone()),
                None => return fail("--baseline needs a committed health JSON path"),
            },
            "--speedup" => match rest.next() {
                Some(s) => speedup = Some(s.clone()),
                None => return fail("--speedup needs <element>=<factor>"),
            },
            flag if flag.starts_with("--") => {
                return fail(&format!("unknown flag {flag:?}\n{USAGE}"))
            }
            path => paths.push(path.to_string()),
        }
    }
    if paths.is_empty() {
        return fail(USAGE);
    }
    let result = match cmd {
        "summary" => paths.iter().try_for_each(|p| cmd_summary(p)),
        "validate" => cmd_validate(&paths, &require),
        "prom" => paths.iter().try_for_each(|p| cmd_prom(p)),
        "controller" => paths.iter().try_for_each(|p| cmd_controller(p)),
        "attribution" => paths.iter().try_for_each(|p| cmd_attribution(p, as_json)),
        "critical-path" => paths.iter().try_for_each(|p| cmd_critical(p, as_json)),
        "flame" => paths.iter().try_for_each(|p| cmd_flame(p, wall)),
        "health" => paths
            .iter()
            .try_for_each(|p| cmd_health(p, as_json, baseline.as_deref())),
        "whatif" => match &speedup {
            Some(s) => paths.iter().try_for_each(|p| cmd_whatif(p, s, as_json)),
            None => Err("whatif needs --speedup <element>=<factor>".into()),
        },
        "diff" => {
            if paths.len() != 2 {
                return fail("diff needs exactly two paths: <baseline.json> <trace.json>");
            }
            cmd_diff(&paths[0], &paths[1], threshold_pct)
        }
        "flow" => {
            if paths.len() > 2 {
                return fail("flow wants <trace.json> [key]");
            }
            let key = match paths.get(1) {
                Some(k) => match parse_flow_key(k) {
                    Some(key) => Some(key),
                    None => return fail(&format!("bad flow key {k:?} (decimal or 0x-hex u32)")),
                },
                None => None,
            };
            cmd_flow(&paths[0], key, as_json)
        }
        "sessions" => paths.iter().try_for_each(|p| cmd_sessions(p, as_json)),
        "calibrate" => paths
            .iter()
            .try_for_each(|p| cmd_calibrate(p, launch_per_batch)),
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_line(tid: u64, ts: f64, dur: f64, batch: u64) -> String {
        format!(
            "{{\"name\":\"resource_busy\",\"cat\":\"resource\",\"ph\":\"X\",\"pid\":2,\
             \"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\"args\":{{\"wall_ns\":0,\
             \"batch\":{batch},\"resource\":{tid},\"user\":1,\"queued_ns\":0}}}}"
        )
    }

    fn wrap(lines: &[String]) -> String {
        format!("[\n{}\n]\n", lines.join(",\n"))
    }

    #[test]
    fn corrupt_trace_with_overlapping_sim_spans_is_rejected() {
        // Back-to-back spans on one lane ([10, 30) then [30, 50)) are
        // fine; overlapping ones are corrupt — the simulator places
        // busy intervals without intersection by construction.
        let body = wrap(&[busy_line(3, 10.0, 20.0, 1), busy_line(3, 30.0, 20.0, 2)]);
        let ok = parse(&body, "t.json").expect("parses");
        assert!(check_sim_lanes(&ok, "t.json").is_ok());

        let body = wrap(&[busy_line(3, 10.0, 20.0, 1), busy_line(3, 15.0, 25.0, 2)]);
        let bad = parse(&body, "t.json").expect("parses");
        let err = check_sim_lanes(&bad, "t.json").expect_err("overlap rejected");
        assert!(err.contains("non-monotonic"), "{err}");

        // Different lanes (or instants) never conflict.
        let body = wrap(&[busy_line(3, 10.0, 20.0, 1), busy_line(4, 15.0, 25.0, 2)]);
        let other = parse(&body, "t.json").expect("parses");
        assert!(check_sim_lanes(&other, "t.json").is_ok());
    }

    #[test]
    fn corrupt_trace_with_negative_dur_is_rejected() {
        let line = "{\"name\":\"resource_busy\",\"cat\":\"resource\",\"ph\":\"X\",\"pid\":2,\
             \"tid\":1,\"ts\":10,\"dur\":-5,\"args\":{\"wall_ns\":0}}"
            .to_string();
        let trace = parse(&wrap(&[line]), "t.json").expect("parses");
        let violation = check_event(&trace.events[0]).expect("rejected");
        assert!(violation.contains("span ends before start"), "{violation}");
    }

    #[test]
    fn sm_occupancy_above_100_pct_is_rejected() {
        let line = |pct: i64| {
            format!(
                "{{\"name\":\"sm_occupancy\",\"cat\":\"gpu\",\"ph\":\"i\",\"s\":\"t\",\
                 \"pid\":2,\"tid\":1,\"ts\":10,\"args\":{{\"wall_ns\":0,\"batch\":1,\
                 \"queue\":0,\"occupancy_pct\":{pct}}}}}"
            )
        };
        let trace = parse(&wrap(&[line(100)]), "t.json").expect("parses");
        assert!(check_event(&trace.events[0]).is_none());

        let trace = parse(&wrap(&[line(104)]), "t.json").expect("parses");
        let violation = check_event(&trace.events[0]).expect("rejected");
        assert!(violation.contains("outside 0-100%"), "{violation}");

        let stripped = "{\"name\":\"sm_occupancy\",\"cat\":\"gpu\",\"ph\":\"i\",\"s\":\"t\",\
                        \"pid\":2,\"tid\":1,\"ts\":10,\"args\":{\"wall_ns\":0}}"
            .to_string();
        let trace = parse(&wrap(&[stripped]), "t.json").expect("parses");
        let violation = check_event(&trace.events[0]).expect("rejected");
        assert!(violation.contains("occupancy_pct"), "{violation}");
    }

    fn epoch_line(tid: u64, ts: f64, epoch: u64) -> String {
        format!(
            "{{\"name\":\"epoch\",\"cat\":\"control\",\"ph\":\"i\",\"s\":\"t\",\"pid\":2,\
             \"tid\":{tid},\"ts\":{ts},\"args\":{{\"wall_ns\":0,\"batch\":0,\"epoch\":{epoch}}}}}"
        )
    }

    fn swap_line(tid: u64, ts: f64, swap_ns: f64) -> String {
        format!(
            "{{\"name\":\"controller_decision\",\"cat\":\"control\",\"ph\":\"i\",\"s\":\"t\",\
             \"pid\":2,\"tid\":{tid},\"ts\":{ts},\"args\":{{\"wall_ns\":0,\"batch\":0,\
             \"epoch\":1,\"stage\":\"dpi\",\"reason\":\"x\",\"old_ratio\":0.2,\
             \"new_ratio\":0.6,\"swap_ns\":{swap_ns}}}}}"
        )
    }

    #[test]
    fn corrupt_trace_with_non_monotonic_epochs_is_rejected() {
        let ok = parse(
            &wrap(&[epoch_line(1, 10.0, 1), epoch_line(1, 20.0, 2)]),
            "t.json",
        )
        .expect("parses");
        assert!(check_control_plane(&ok, "t.json").is_ok());

        // Same epoch twice: the counter went backwards or stalled.
        let bad = parse(
            &wrap(&[epoch_line(1, 10.0, 2), epoch_line(1, 20.0, 2)]),
            "t.json",
        )
        .expect("parses");
        let err = check_control_plane(&bad, "t.json").expect_err("rejected");
        assert!(err.contains("non-monotonic epoch markers"), "{err}");

        // A later marker with a smaller epoch (out-of-order writes).
        let bad = parse(
            &wrap(&[epoch_line(1, 10.0, 3), epoch_line(1, 20.0, 1)]),
            "t.json",
        )
        .expect("parses");
        assert!(check_control_plane(&bad, "t.json").is_err());

        // Distinct tracks (co-deployed tenants) keep separate counters.
        let multi = parse(
            &wrap(&[epoch_line(1, 10.0, 5), epoch_line(2, 20.0, 1)]),
            "t.json",
        )
        .expect("parses");
        assert!(check_control_plane(&multi, "t.json").is_ok());
    }

    #[test]
    fn corrupt_trace_with_overlapping_swap_windows_is_rejected() {
        // Swap at 10 us draining 5000 ns holds the lane until 15 us.
        let ok = parse(
            &wrap(&[swap_line(1, 10.0, 5_000.0), swap_line(1, 15.5, 5_000.0)]),
            "t.json",
        )
        .expect("parses");
        assert!(check_control_plane(&ok, "t.json").is_ok());

        let bad = parse(
            &wrap(&[swap_line(1, 10.0, 5_000.0), swap_line(1, 12.0, 5_000.0)]),
            "t.json",
        )
        .expect("parses");
        let err = check_control_plane(&bad, "t.json").expect_err("rejected");
        assert!(err.contains("overlapping swap windows"), "{err}");

        // Overlap on different tracks is two tenants swapping — fine.
        let multi = parse(
            &wrap(&[swap_line(1, 10.0, 5_000.0), swap_line(2, 12.0, 5_000.0)]),
            "t.json",
        )
        .expect("parses");
        assert!(check_control_plane(&multi, "t.json").is_ok());
    }

    fn link_line(tid: u64, ts: f64, dur: f64) -> String {
        format!(
            "{{\"name\":\"link_transfer\",\"cat\":\"cluster\",\"ph\":\"X\",\"pid\":2,\
             \"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\"args\":{{\"wall_ns\":0,\"batch\":0,\
             \"link\":{tid},\"packets\":64,\"bytes\":96000}}}}"
        )
    }

    fn shard_line(epoch: u64, server: u64, start: u64, end: u64) -> String {
        format!(
            "{{\"name\":\"shard_range\",\"cat\":\"cluster\",\"ph\":\"i\",\"s\":\"t\",\
             \"pid\":2,\"tid\":1,\"ts\":10,\"args\":{{\"wall_ns\":0,\"batch\":0,\
             \"epoch\":{epoch},\"server\":{server},\"start\":{start},\"end\":{end}}}}}"
        )
    }

    #[test]
    fn corrupt_trace_with_overlapping_link_spans_is_rejected() {
        // A link serializes its transfers: back-to-back is fine,
        // overlap means two transfers shared the wire.
        let ok = parse(
            &wrap(&[link_line(7, 10.0, 5.0), link_line(7, 15.0, 5.0)]),
            "t.json",
        )
        .expect("parses");
        assert!(check_cluster_plane(&ok, "t.json").is_ok());

        let bad = parse(
            &wrap(&[link_line(7, 10.0, 5.0), link_line(7, 12.0, 5.0)]),
            "t.json",
        )
        .expect("parses");
        let err = check_cluster_plane(&bad, "t.json").expect_err("rejected");
        assert!(err.contains("overlapping link-busy spans"), "{err}");

        // Distinct links carry concurrent transfers — that's the rack.
        let multi = parse(
            &wrap(&[link_line(7, 10.0, 5.0), link_line(8, 12.0, 5.0)]),
            "t.json",
        )
        .expect("parses");
        assert!(check_cluster_plane(&multi, "t.json").is_ok());
    }

    #[test]
    fn corrupt_shard_maps_are_rejected() {
        const FULL: u64 = 1 << 32;
        // A complete two-server map tiles [0, 2^32) exactly.
        let ok = parse(
            &wrap(&[
                shard_line(1, 0, 0, 1 << 31),
                shard_line(1, 1, 1 << 31, FULL),
            ]),
            "t.json",
        )
        .expect("parses");
        assert!(check_cluster_plane(&ok, "t.json").is_ok());

        // A gap leaves flows unowned.
        let bad = parse(
            &wrap(&[shard_line(1, 0, 0, 1000), shard_line(1, 1, 2000, FULL)]),
            "t.json",
        )
        .expect("parses");
        let err = check_cluster_plane(&bad, "t.json").expect_err("gap rejected");
        assert!(err.contains("gap"), "{err}");

        // An overlap double-owns flows.
        let bad = parse(
            &wrap(&[shard_line(1, 0, 0, 2000), shard_line(1, 1, 1000, FULL)]),
            "t.json",
        )
        .expect("parses");
        let err = check_cluster_plane(&bad, "t.json").expect_err("overlap rejected");
        assert!(err.contains("overlap"), "{err}");

        // A truncated map does not reach 2^32.
        let bad = parse(&wrap(&[shard_line(1, 0, 0, 5000)]), "t.json").expect("parses");
        let err = check_cluster_plane(&bad, "t.json").expect_err("short map rejected");
        assert!(err.contains("not 2^32"), "{err}");

        // A map starting past zero strands the low hashes.
        let bad = parse(&wrap(&[shard_line(1, 0, 5, FULL)]), "t.json").expect("parses");
        let err = check_cluster_plane(&bad, "t.json").expect_err("late start rejected");
        assert!(err.contains("not 0"), "{err}");

        // Ranges from DIFFERENT epochs never cross-validate: two
        // disjoint-epoch half-maps are two incomplete maps.
        let bad = parse(
            &wrap(&[
                shard_line(1, 0, 0, 1 << 31),
                shard_line(2, 1, 1 << 31, FULL),
            ]),
            "t.json",
        )
        .expect("parses");
        assert!(check_cluster_plane(&bad, "t.json").is_err());
    }

    fn slo_line(ts: f64, epoch: u64, fast: f64, slow: f64, breached: u64) -> String {
        format!(
            "{{\"name\":\"slo_burn\",\"cat\":\"health\",\"ph\":\"i\",\"s\":\"t\",\"pid\":2,\
             \"tid\":1,\"ts\":{ts},\"args\":{{\"wall_ns\":0,\"batch\":0,\"epoch\":{epoch},\
             \"objective\":\"p99_latency\",\"fast_burn\":{fast},\"slow_burn\":{slow},\
             \"breached\":{breached}}}}}"
        )
    }

    fn drift_line(ts: f64, epoch: u64, drift: f64, raised: u64) -> String {
        format!(
            "{{\"name\":\"model_drift\",\"cat\":\"health\",\"ph\":\"i\",\"s\":\"t\",\"pid\":2,\
             \"tid\":1,\"ts\":{ts},\"args\":{{\"wall_ns\":0,\"batch\":0,\"epoch\":{epoch},\
             \"predicted_ns\":1000.0,\"observed_ns\":1800.0,\"drift\":{drift},\
             \"raised\":{raised}}}}}"
        )
    }

    #[test]
    fn health_report_aggregates_and_gates_against_baseline() {
        let body = wrap(&[
            slo_line(10.0, 1, 0.5, 0.2, 0),
            slo_line(20.0, 2, 3.0, 1.5, 1),
            drift_line(10.0, 1, 0.1, 0),
            drift_line(20.0, 2, 0.8, 1),
            drift_line(30.0, 3, 0.9, 1),
        ]);
        let trace = parse(&body, "t.json").expect("parses");
        let rep = health_report(&trace);
        let p99 = rep.objectives.get("p99_latency").expect("objective");
        assert_eq!((p99.0, p99.1), (2, 1));
        assert!((p99.2 - 3.0).abs() < 1e-12 && (p99.3 - 1.5).abs() < 1e-12);
        assert_eq!(rep.drift_verdicts, 3);
        assert_eq!(rep.drift_raised, 2);
        assert_eq!(rep.first_raised_epoch, 2);
        assert!((rep.max_drift - 0.9).abs() < 1e-12);

        // The JSON round-trips through the baseline gate's own fields.
        let js = health_json(&rep);
        assert_eq!(js["slo"]["p99_latency"]["breaches"].as_u64(), Some(1));
        assert_eq!(js["drift"]["raised"].as_u64(), Some(2));
    }

    #[test]
    fn typed_events_roundtrip_health_instants() {
        let trace = parse(
            &wrap(&[slo_line(10.0, 1, 2.0, 1.0, 1), drift_line(10.0, 1, 0.5, 1)]),
            "t.json",
        )
        .expect("parses");
        let events = typed_events(&trace);
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0].kind,
            EventKind::SloBurn {
                objective: "p99_latency",
                breached: true,
                ..
            }
        ));
        assert!(matches!(
            events[1].kind,
            EventKind::ModelDrift { raised: true, .. }
        ));
    }

    #[test]
    fn typed_events_roundtrip_attribution() {
        let attr = "{\"name\":\"batch_attribution\",\"cat\":\"attr\",\"ph\":\"i\",\"s\":\"t\",\
                    \"pid\":2,\"tid\":1,\"ts\":50,\"args\":{\"wall_ns\":0,\"batch\":9,\
                    \"seq\":9,\"e2e_ns\":1000,\"compute_ns\":600,\"transfer_ns\":100,\
                    \"queue_ns\":200,\"drain_ns\":0,\"merge_wait_ns\":100}}"
            .to_string();
        let egress = "{\"name\":\"batch_egress\",\"cat\":\"attr\",\"ph\":\"i\",\"s\":\"t\",\
                      \"pid\":2,\"tid\":1,\"ts\":50,\"args\":{\"wall_ns\":0,\"batch\":9,\
                      \"seq\":9,\"packets\":64,\"bytes\":4096}}"
            .to_string();
        let name_meta = "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":1,\"ts\":0,\
                         \"args\":{\"name\":\"io-tx\"}}"
            .to_string();
        let trace = parse(&wrap(&[name_meta, attr, egress]), "t.json").expect("parses");
        assert_eq!(
            trace.thread_names.get(&1).map(String::as_str),
            Some("io-tx")
        );
        let events = typed_events(&trace);
        // ResourceName synthesized + two instants.
        assert_eq!(events.len(), 3);
        let rep = attribution(&events);
        assert_eq!(rep.batches, 1);
        assert_eq!(rep.packets, 64);
        assert!((rep.mean_e2e_ns - 1000.0).abs() < 1e-9);
        assert!((rep.mean.total() - 1000.0).abs() < 1e-9);
    }

    fn flow_line(flow: u64, point: &str, server: u64, tid: u64, ts: f64, packets: u64) -> String {
        format!(
            "{{\"name\":\"flow_{point}\",\"cat\":\"flow\",\"ph\":\"i\",\"s\":\"t\",\"pid\":2,\
             \"tid\":{tid},\"ts\":{ts},\"args\":{{\"wall_ns\":0,\"batch\":1,\"flow\":{flow},\
             \"point\":\"{point}\",\"server\":{server},\"packets\":{packets}}}}}"
        )
    }

    fn session_line(state: &str, flow: u64, ts: f64, packets: u64, bytes: u64) -> String {
        format!(
            "{{\"name\":\"session_{state}\",\"cat\":\"session\",\"ph\":\"i\",\"s\":\"t\",\
             \"pid\":2,\"tid\":1,\"ts\":{ts},\"args\":{{\"wall_ns\":0,\"batch\":1,\
             \"state\":\"{state}\",\"flow\":{flow},\"packets\":{packets},\"bytes\":{bytes}}}}}"
        )
    }

    #[test]
    fn corrupt_flow_timelines_are_rejected() {
        // In-order points on one lane, plus a clean migrate handover
        // (a same-instant shard on the destination track follows the
        // migrate, and the old server drains a late point), validate.
        let ok = parse(
            &wrap(&[
                flow_line(7, "ingress", 0, 1, 10.0, 4),
                flow_line(7, "stage", 0, 1, 20.0, 4),
                flow_line(7, "migrate", 1, 5, 25.0, 0),
                flow_line(7, "shard", 1, 5, 25.0, 4),
                flow_line(7, "egress", 0, 1, 27.0, 4),
                flow_line(7, "egress", 1, 5, 30.0, 4),
            ]),
            "t.json",
        )
        .expect("parses");
        assert!(check_flow_plane(&ok, "t.json").is_ok());

        // Time going backwards on one (flow, track) lane is corrupt.
        let bad = parse(
            &wrap(&[
                flow_line(7, "stage", 0, 1, 20.0, 4),
                flow_line(7, "ingress", 0, 1, 10.0, 4),
            ]),
            "t.json",
        )
        .expect("parses");
        let err = check_flow_plane(&bad, "t.json").expect_err("rejected");
        assert!(err.contains("not time-ordered"), "{err}");

        // A migrate not answered by a same-instant shard on its own
        // track (wrong server, wrong point, or drifted instant) means
        // the two-phase swap leaked state.
        let bad = parse(
            &wrap(&[
                flow_line(7, "migrate", 1, 5, 25.0, 0),
                flow_line(7, "shard", 2, 5, 25.0, 4),
            ]),
            "t.json",
        )
        .expect("parses");
        let err = check_flow_plane(&bad, "t.json").expect_err("rejected");
        assert!(err.contains("handover"), "{err}");

        // A migrate that is the lane's last word never handed the flow
        // over at all.
        let bad =
            parse(&wrap(&[flow_line(7, "migrate", 1, 5, 25.0, 0)]), "t.json").expect("parses");
        let err = check_flow_plane(&bad, "t.json").expect_err("rejected");
        assert!(err.contains("no handover shard"), "{err}");
    }

    #[test]
    fn session_records_without_a_built_are_rejected() {
        let ok = parse(
            &wrap(&[
                session_line("built", 9, 10.0, 0, 0),
                session_line("teardown", 9, 20.0, 12, 9000),
            ]),
            "t.json",
        )
        .expect("parses");
        assert!(check_flow_plane(&ok, "t.json").is_ok());

        let bad = parse(&wrap(&[session_line("deny", 9, 10.0, 0, 0)]), "t.json").expect("parses");
        let err = check_flow_plane(&bad, "t.json").expect_err("rejected");
        assert!(err.contains("no preceding built"), "{err}");
    }

    #[test]
    fn flow_timeline_stitches_across_tracks_and_telescopes() {
        // The same flow touches three tracks on two servers; the
        // stitcher orders by simulated time and the consecutive hop
        // deltas sum to the end-to-end latency exactly.
        let trace = parse(
            &wrap(&[
                flow_line(0xbeef, "shard", 1, 9, 15.0, 8),
                flow_line(0xbeef, "ingress", 0, 1, 10.0, 8),
                flow_line(0xbeef, "stage", 1, 3, 22.5, 8),
                flow_line(0xbeef, "egress", 1, 9, 41.0, 8),
                flow_line(0xdead, "ingress", 0, 1, 12.0, 2), // other flow
            ]),
            "t.json",
        )
        .expect("parses");
        let rows = flow_timeline(&trace, 0xbeef);
        assert_eq!(rows.len(), 4);
        let points: Vec<&str> = rows.iter().map(|r| r.point.as_str()).collect();
        assert_eq!(points, ["ingress", "shard", "stage", "egress"]);
        let hop_sum: f64 = rows.windows(2).map(|w| w[1].ts_us - w[0].ts_us).sum();
        let e2e = rows.last().unwrap().ts_us - rows[0].ts_us;
        assert!((hop_sum - e2e).abs() < 1e-12);
        assert!((e2e - 31.0).abs() < 1e-12);

        // The plane digest counts both flows and all touchpoints.
        let rep = flow_report(&trace);
        assert_eq!(rep.flows.len(), 2);
        assert_eq!(rep.points.values().sum::<u64>(), 5);
    }

    #[test]
    fn flow_diff_gates_divergence_in_both_directions() {
        let body = wrap(&[
            flow_line(7, "ingress", 0, 1, 10.0, 4),
            flow_line(7, "egress", 0, 1, 30.0, 4),
            session_line("built", 7, 12.0, 0, 0),
        ]);
        let trace = parse(&body, "t.json").expect("parses");
        let rep = flow_report(&trace);
        let baseline = flow_report_json(&rep);
        assert_eq!(baseline["kind"].as_str(), Some("flow"));
        // Identical trace: nothing diverges.
        assert!(diff_flow_metrics(&baseline, &rep)
            .iter()
            .all(|(_, old, new)| (new - old).abs() <= old.abs() * 0.1 + 1.0));
        // A baseline expecting 40 ingress points against a trace with
        // 1 is a divergence even though the count went *down*.
        let fat = json!({"kind": "flow", "flows": 1, "dumps": 0,
                         "points": {"ingress": 40}, "sessions": {}});
        let rows = diff_flow_metrics(&fat, &rep);
        let ingress = rows.iter().find(|(n, _, _)| n == "points.ingress").unwrap();
        assert!((ingress.2 - ingress.1).abs() > ingress.1.abs() * 0.1 + 1.0);
    }

    #[test]
    fn typed_events_roundtrip_flow_plane() {
        let dump = "{\"name\":\"flight_dump\",\"cat\":\"flow\",\"ph\":\"i\",\"s\":\"t\",\
                    \"pid\":2,\"tid\":1,\"ts\":50,\"args\":{\"wall_ns\":0,\"batch\":0,\
                    \"reason\":\"slo_burn\",\"events\":42}}"
            .to_string();
        let trace = parse(
            &wrap(&[
                flow_line(7, "cache_hit", 0, 1, 10.0, 4),
                session_line("teardown", 7, 20.0, 12, 9000),
                dump,
            ]),
            "t.json",
        )
        .expect("parses");
        let events = typed_events(&trace);
        assert_eq!(events.len(), 3);
        assert!(matches!(
            events[0].kind,
            EventKind::FlowPoint {
                flow: 7,
                point: "cache_hit",
                packets: 4,
                ..
            }
        ));
        assert!(matches!(
            events[1].kind,
            EventKind::Session {
                state: "teardown",
                packets: 12,
                bytes: 9000,
                ..
            }
        ));
        assert!(matches!(
            events[2].kind,
            EventKind::FlightDump {
                reason: "slo_burn",
                events: 42,
            }
        ));
    }

    #[test]
    fn diff_flags_regressions_over_threshold() {
        let rep = AttributionReport {
            batches: 10,
            packets: 640,
            mean_e2e_ns: 1200.0,
            p99_e2e_ns: 2000.0,
            max_e2e_ns: 2500.0,
            mean: Buckets {
                compute_ns: 700.0,
                transfer_ns: 100.0,
                queue_ns: 300.0,
                drain_ns: 0.0,
                merge_wait_ns: 100.0,
            },
            total: Buckets::default(),
        };
        let baseline = json!({
            "mean_e2e_ns": 1000.0,
            "p99_e2e_ns": 2000.0,
            "mean": {
                "compute_ns": 700.0, "transfer_ns": 100.0, "queue_ns": 100.0,
                "drain_ns": 0.0, "merge_wait_ns": 100.0,
            },
        });
        let rows = diff_metrics(&baseline, &rep);
        let regressed: Vec<&str> = rows
            .iter()
            .filter(|(_, old, new)| *new > old * 1.10 + 1.0)
            .map(|(n, _, _)| n.as_str())
            .collect();
        // e2e rose 20%, queue tripled; drain 0 → 0 stays clean.
        assert_eq!(regressed, ["mean_e2e_ns", "mean.queue_ns"]);
    }
}
