//! Figure 8 substrate: real DPI matching under no-match vs full-match
//! traffic and the CPU cost model's batch-size behaviour.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nfc_click::element::RunCtx;
use nfc_click::Element;
use nfc_nf::Nf;
use nfc_packet::traffic::{PayloadPolicy, SizeDist, TrafficGenerator, TrafficSpec};

fn dpi_match_ratio(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_dpi_traffic_pattern");
    for (label, ratio) in [("no_match", 0.0), ("full_match", 1.0)] {
        let spec =
            TrafficSpec::udp(SizeDist::Fixed(1024)).with_payload(PayloadPolicy::MatchRatio {
                patterns: Nf::default_ids_signatures(),
                ratio,
            });
        let mut gen = TrafficGenerator::new(spec, 1);
        let batch = gen.batch(256);
        g.throughput(Throughput::Bytes(batch.total_bytes() as u64));
        g.bench_with_input(BenchmarkId::new("dpi_batch", label), &batch, |b, batch| {
            let nf = Nf::dpi("dpi");
            let mut run = nf.graph().clone().compile().expect("compiles");
            b.iter(|| {
                let out = run.push_merged(nf.entry(), black_box(batch.clone()));
                black_box(out)
            })
        });
    }
    g.finish();
}

fn ipsec_batch_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_ipsec_batch_size");
    for batch_size in [32usize, 256] {
        let mut gen = TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(256)), 2);
        let batch = gen.batch(batch_size);
        g.throughput(Throughput::Elements(batch_size as u64));
        g.bench_with_input(
            BenchmarkId::new("encrypt_batch", batch_size),
            &batch,
            |b, batch| {
                let mut enc =
                    nfc_nf::elements::IpsecEncrypt::new(nfc_nf::elements::IpsecSa::example());
                let mut ctx = RunCtx::default();
                b.iter(|| {
                    let out = enc.process(black_box(batch.clone()), &mut ctx);
                    black_box(out)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, dpi_match_ratio, ipsec_batch_sizes);
criterion_main!(benches);
