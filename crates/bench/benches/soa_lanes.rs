//! SoA/residency ablation (Figure-8 style): persistent kernels vs
//! launch-per-batch dispatch as SM slots saturate.
//!
//! A fixed 4-stage IPsec chain is swept in batch size. Every doubling of
//! the batch doubles each persistent kernel's SM-slot demand
//! (`batch / 128` slots), so the sweep walks the chain from a lightly
//! loaded SM array into full oversubscription of the HPCA'18 device
//! complex (2 × 24 slots): small batches leave every kernel resident at
//! low occupancy, mid-sized batches pack devices past the co-residency
//! pressure knee, and the largest batches cannot be placed at all — the
//! residency pass spills them to launch-per-batch dispatch. Each point
//! runs twice — `GpuMode::Persistent` (residency-aware) and
//! `GpuMode::LaunchPerBatch` — and the per-point advantage
//! `persistent / launch_per_batch` is the ablation curve.
//!
//! Asserted in-bench:
//!
//! * while the SM array is comfortably inside capacity (no spills,
//!   occupancy below the pressure knee), persistence clearly pays:
//!   frequent small-batch launches are exactly what the paper's
//!   persistent kernels amortize away;
//! * the sweep reaches saturation (spills exist), and a crossover point
//!   exists from which persistence never pays again (advantage stays
//!   below [`PAYOFF`] for the rest of the sweep — co-residency pressure
//!   may dent the curve earlier, but only saturation ends the payoff);
//! * the crossover never precedes the first spill, and at the terminal
//!   fully-spilled point the two modes converge to parity — a spilled
//!   plan *is* launch-per-batch, so persistence demonstrably degraded
//!   instead of oversubscribing the array.
//!
//! The persistent run is additionally repeated under both SM-residency
//! packers — the first-fit-decreasing baseline and the pressure-aware
//! spread packer — and the spread packer must dominate FFD at every
//! sweep point (strictly better on at least one): balancing resident
//! kernels across the device complex keeps peak slot utilization, and
//! with it the co-residency multiplier, no higher than FFD's.
//!
//! The curves and the crossover are recorded in `BENCH_soa.json` at the
//! repository root.

use nfc_core::{Deployment, Policy, RunOutcome, Sfc};
use nfc_hetero::{residency::PackStrategy, GpuMode};
use nfc_nf::Nf;
use nfc_packet::traffic::{SizeDist, TrafficGenerator, TrafficSpec};
use serde_json::json;

/// Advantage threshold below which persistence "stops paying".
const PAYOFF: f64 = 1.05;
const CHAIN_LEN: usize = 4;
const PKT_BYTES: usize = 256;
/// Batch sizes swept: slot demand per kernel is `batch / 128`, so the
/// four kernels demand 8, 16, 32, 64 and 128 slots in total against the
/// 48-slot complex.
const BATCHES: [usize; 5] = [256, 512, 1024, 2048, 4096];

fn run_point(batch: usize, mode: GpuMode, packer: PackStrategy, n_batches: usize) -> RunOutcome {
    let sfc = Sfc::new(
        "ipsec-x4",
        (0..CHAIN_LEN)
            .map(|i| Nf::ipsec(format!("ipsec{i}")))
            .collect(),
    );
    let mut dep = Deployment::new(sfc, Policy::GpuOnly { mode })
        .with_batch_size(batch)
        .with_packer(packer);
    let mut traffic = TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(PKT_BYTES)), 42);
    dep.run(&mut traffic, n_batches)
}

struct Point {
    batch: usize,
    resident: usize,
    spilled: usize,
    max_occupancy_pct: usize,
    persistent_gbps: f64,
    ffd_gbps: f64,
    ffd_max_occupancy_pct: usize,
    launch_gbps: f64,
    advantage: f64,
}

fn max_occupancy_pct(out: &RunOutcome) -> usize {
    (0..out.residency.devices)
        .map(|d| out.residency.device_slots_used(d) * 100 / out.residency.slots_per_device.max(1))
        .max()
        .unwrap_or(0)
}

fn main() {
    let full = std::env::args().any(|a| a == "--bench");
    let n_batches = if full { 24 } else { 10 };
    let mut points: Vec<Point> = Vec::new();
    println!("batch  resident spilled  occ%  spread      ffd         launch/batch  advantage");
    for &batch in &BATCHES {
        let pers = run_point(batch, GpuMode::Persistent, PackStrategy::Spread, n_batches);
        let ffd = run_point(batch, GpuMode::Persistent, PackStrategy::Ffd, n_batches);
        let lpb = run_point(
            batch,
            GpuMode::LaunchPerBatch,
            PackStrategy::Spread,
            n_batches,
        );
        assert!(
            pers.residency.within_capacity(),
            "batch {batch}: adopted plan exceeds SM capacity"
        );
        assert!(
            ffd.residency.within_capacity(),
            "batch {batch}: FFD plan exceeds SM capacity"
        );
        // Both packers obey the same never-oversubscribe spill rule, so
        // they must agree on how many kernels stay resident.
        assert_eq!(
            pers.residency.resident.len(),
            ffd.residency.resident.len(),
            "batch {batch}: packers disagree on the resident set size"
        );
        let max_occ = max_occupancy_pct(&pers);
        let advantage = pers.report.throughput_gbps / lpb.report.throughput_gbps;
        println!(
            "{batch:>5}  {:>8} {:>7}  {max_occ:>3}%  {:>8.2} G  {:>8.2} G  {:>10.2} G  {advantage:>8.2}x",
            pers.residency.resident.len(),
            pers.residency.spilled.len(),
            pers.report.throughput_gbps,
            ffd.report.throughput_gbps,
            lpb.report.throughput_gbps,
        );
        points.push(Point {
            batch,
            resident: pers.residency.resident.len(),
            spilled: pers.residency.spilled.len(),
            max_occupancy_pct: max_occ,
            persistent_gbps: pers.report.throughput_gbps,
            ffd_gbps: ffd.report.throughput_gbps,
            ffd_max_occupancy_pct: max_occupancy_pct(&ffd),
            launch_gbps: lpb.report.throughput_gbps,
            advantage,
        });
    }
    let first_spill = points.iter().find(|p| p.spilled > 0).map(|p| p.batch);
    // Crossover: the first point from which persistence never pays
    // again (advantage stays below PAYOFF for the rest of the sweep —
    // co-residency pressure can dent the curve earlier, but only
    // saturation ends the payoff for good).
    let crossover = (0..points.len())
        .find(|&i| points[i..].iter().all(|p| p.advantage < PAYOFF))
        .map(|i| points[i].batch);
    let last = points.last().expect("non-empty sweep");
    println!(
        "first spill at batch {first_spill:?}; persistence stops paying (<{PAYOFF}x) at batch \
         {crossover:?}"
    );
    // Comfortably inside capacity (resident, below the pressure knee)
    // the persistent kernels must clearly pay for themselves.
    for p in points
        .iter()
        .filter(|p| p.spilled == 0 && p.max_occupancy_pct <= 50)
    {
        assert!(
            p.advantage >= PAYOFF,
            "batch {}: unpressured resident advantage {:.2}x below {PAYOFF}x",
            p.batch,
            p.advantage
        );
    }
    // Saturation must exist in the sweep, and the terminal fully-spilled
    // point must have degraded to launch-per-batch parity.
    let first_spill = first_spill.expect("sweep never oversubscribed the SM array");
    assert_eq!(
        last.resident, 0,
        "terminal point should spill every kernel, {} still resident",
        last.resident
    );
    assert!(
        (last.advantage - 1.0).abs() < 0.02,
        "fully spilled plan should match launch-per-batch, got {:.3}x",
        last.advantage
    );
    let crossover =
        crossover.expect("sweep never reached the point where persistence stops paying");
    assert!(
        crossover >= first_spill,
        "persistence stopped paying at batch {crossover}, before the first spill at {first_spill}"
    );
    // Packer ablation: the pressure-aware spread packer must dominate
    // first-fit-decreasing at every sweep point — balancing resident
    // kernels never raises the peak co-residency multiplier — and must
    // be strictly better wherever FFD crowds a device past the pressure
    // knee that spreading avoids.
    for p in &points {
        assert!(
            p.persistent_gbps >= p.ffd_gbps,
            "batch {}: spread packer {:.3} G below FFD {:.3} G",
            p.batch,
            p.persistent_gbps,
            p.ffd_gbps
        );
    }
    let strict = points
        .iter()
        .filter(|p| p.persistent_gbps > p.ffd_gbps * 1.001)
        .count();
    assert!(
        strict >= 1,
        "spread packer never strictly beat FFD anywhere on the sweep"
    );
    println!(
        "spread packer strictly beats FFD at {strict} of {} sweep points",
        points.len()
    );
    let report = json!({
        "benchmark": "soa_lanes_residency_ablation",
        "chain": format!("ipsec x{CHAIN_LEN}, GPU-only"),
        "pkt_bytes": PKT_BYTES,
        "n_batches": n_batches,
        "sm_capacity": { "devices": 2, "slots_per_device": 24 },
        "payoff_threshold": PAYOFF,
        "first_spill_batch": first_spill,
        "crossover_batch": crossover,
        "packer_strictly_better_points": points
            .iter()
            .filter(|p| p.persistent_gbps > p.ffd_gbps * 1.001)
            .count(),
        "points": points.iter().map(|p| json!({
            "batch_size": p.batch,
            "slots_per_kernel": p.batch.div_ceil(128),
            "resident_kernels": p.resident,
            "spilled_kernels": p.spilled,
            "max_device_occupancy_pct": p.max_occupancy_pct,
            "ffd_max_device_occupancy_pct": p.ffd_max_occupancy_pct,
            "persistent_gbps": p.persistent_gbps,
            "persistent_ffd_gbps": p.ffd_gbps,
            "launch_per_batch_gbps": p.launch_gbps,
            "persistent_advantage": p.advantage,
        })).collect::<Vec<_>>(),
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_soa.json");
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serializes") + "\n",
    )
    .expect("write BENCH_soa.json");
    println!("wrote {path}");
}
