//! Figure 7 substrate: dependency analysis and chain re-organization.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nfc_core::{ReorgSfc, Sfc};
use nfc_nf::Nf;

fn reorg(c: &mut Criterion) {
    let chain = |n: usize| -> Sfc {
        Sfc::new(
            "mixed",
            (0..n)
                .map(|i| match i % 4 {
                    0 => Nf::firewall(format!("fw{i}"), 100, 1),
                    1 => Nf::ids(format!("ids{i}")),
                    2 => Nf::probe(format!("p{i}")),
                    _ => Nf::load_balancer(format!("lb{i}"), 2),
                })
                .collect(),
        )
    };
    for n in [4usize, 8, 16] {
        let sfc = chain(n);
        c.bench_function(format!("fig7_reorg_analyze_{n}nfs"), |b| {
            b.iter(|| black_box(ReorgSfc::analyze(&sfc, 4)))
        });
    }
}

criterion_group!(benches, reorg);
criterion_main!(benches);
