//! Ablation substrate: partitioning algorithm quality/speed tradeoffs on
//! synthetic graphs (KL vs agglomerative vs MFMC), and flat vs multilevel
//! KL.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nfc_graphpart::{agglomerative, kl, maxflow, Objective, PartGraph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_graph(n: usize, seed: u64) -> PartGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = PartGraph::new();
    for i in 0..n {
        let cpu = rng.gen_range(5.0..50.0);
        let gpu = if i % 2 == 0 { cpu / 8.0 } else { cpu * 3.0 };
        g.add_node(cpu, gpu);
    }
    for i in 1..n {
        g.add_edge(i - 1, i, rng.gen_range(0.1..2.0));
        if i % 5 == 0 {
            let j = rng.gen_range(0..i);
            if j != i - 1 {
                g.add_edge(j, i, rng.gen_range(0.1..2.0));
            }
        }
    }
    g
}

fn partitioners(c: &mut Criterion) {
    let mut grp = c.benchmark_group("ablation_partitioners");
    for n in [64usize, 256] {
        let g = random_graph(n, 7);
        grp.bench_with_input(BenchmarkId::new("kl_multilevel", n), &g, |b, g| {
            b.iter(|| black_box(kl::partition(g, kl::KlOptions::default())))
        });
        grp.bench_with_input(BenchmarkId::new("kl_flat", n), &g, |b, g| {
            b.iter(|| black_box(kl::partition_flat(g, kl::KlOptions::default())))
        });
        grp.bench_with_input(BenchmarkId::new("agglomerative", n), &g, |b, g| {
            b.iter(|| {
                let seeds = agglomerative::default_seeds(g);
                black_box(agglomerative::partition(g, &seeds, Objective::default()))
            })
        });
        grp.bench_with_input(BenchmarkId::new("mfmc", n), &g, |b, g| {
            b.iter(|| {
                let unary: Vec<(f64, f64)> = (0..g.len())
                    .map(|v| (g.weight(v)[0], g.weight(v)[1]))
                    .collect();
                black_box(maxflow::mfmc_assign(&unary, g.edges()))
            })
        });
    }
    grp.finish();
}

criterion_group!(benches, partitioners);
criterion_main!(benches);
