//! Figure 15 substrate: profiling, expansion and graph partitioning.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nfc_core::allocator::{allocate, PartitionAlgo};
use nfc_core::expansion::Expansion;
use nfc_core::profiler::Profiler;
use nfc_hetero::{CostModel, GpuMode, PlatformConfig};
use nfc_nf::Nf;
use nfc_packet::traffic::{SizeDist, TrafficGenerator, TrafficSpec};

fn gta(c: &mut Criterion) {
    // Profile a representative NF once.
    let nf = Nf::dpi("dpi");
    let mut run = nf.graph().clone().compile().expect("compiles");
    let mut gen = TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(512)), 1);
    for _ in 0..8 {
        run.push_merged(nf.entry(), gen.batch(256));
    }
    let model = CostModel::new(PlatformConfig::hpca18());
    let weights = Profiler::new(model, GpuMode::Persistent).measure(&run);

    c.bench_function("fig15_expand_delta10", |b| {
        b.iter(|| black_box(Expansion::expand(nf.graph(), &weights, 0.1)))
    });
    for algo in [
        PartitionAlgo::Kl,
        PartitionAlgo::Agglomerative,
        PartitionAlgo::Mfmc,
    ] {
        c.bench_function(format!("fig15_allocate_{algo:?}"), |b| {
            b.iter(|| black_box(allocate(nf.graph(), &weights, algo, 0.1)))
        });
    }
}

criterion_group!(benches, gta);
criterion_main!(benches);
