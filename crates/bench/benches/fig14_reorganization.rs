//! Figure 14 substrate: NF synthesis and XOR branch merging.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use nfc_core::orchestrator::merge_branch_batches;
use nfc_core::synthesizer::synthesize;
use nfc_nf::Nf;
use nfc_packet::traffic::{SizeDist, TrafficGenerator, TrafficSpec};

fn synthesis(c: &mut Criterion) {
    let fw = Nf::firewall("fw", 200, 1);
    let ids = Nf::ids("ids");
    let dpi = Nf::dpi("dpi");
    c.bench_function("fig14_synthesize_fw_ids_dpi", |b| {
        b.iter(|| black_box(synthesize(&[&fw, &ids, &dpi])))
    });
}

fn xor_merge(c: &mut Criterion) {
    let mut gen = TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(256)), 3);
    let original = gen.batch(256);
    // Two branches: one modifies a payload byte, one passes through.
    let mut branch_a = original.clone();
    for p in branch_a.iter_mut() {
        if let Ok(pl) = p.l4_payload_mut() {
            if !pl.is_empty() {
                pl[0] ^= 0xFF;
            }
        }
    }
    let branch_b = original.clone();
    let mut g = c.benchmark_group("fig14_xor_merge");
    g.throughput(Throughput::Elements(256));
    g.bench_function("merge_2_branches_256", |b| {
        b.iter(|| {
            black_box(merge_branch_batches(
                black_box(&original),
                black_box(&[branch_a.clone(), branch_b.clone()]),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, synthesis, xor_merge);
criterion_main!(benches);
