//! Figure 6 substrate: the offload-ratio cost model sweep.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nfc_click::{KernelClass, WorkProfile};
use nfc_hetero::{CoRunContext, CostModel, ElementLoad, GpuMode, PlatformConfig};

fn ratio_sweep(c: &mut Criterion) {
    let model = CostModel::new(PlatformConfig::hpca18());
    let load = ElementLoad::new(
        WorkProfile::new(150.0, 22.0),
        Some(KernelClass::Crypto),
        256,
        256 * 64,
    );
    let solo = CoRunContext::solo();
    c.bench_function("fig6_ratio_sweep_11pts", |b| {
        b.iter(|| {
            let mut best = (0.0f64, 0.0f64);
            for i in 0..=10 {
                let r = i as f64 / 10.0;
                let t =
                    model.offload_throughput_gbps(black_box(&load), r, GpuMode::Persistent, &solo);
                if t > best.1 {
                    best = (r, t);
                }
            }
            black_box(best)
        })
    });
}

criterion_group!(benches, ratio_sweep);
criterion_main!(benches);
