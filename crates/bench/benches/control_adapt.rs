//! Adaptive control plane benchmark: idle overhead and recovery.
//!
//! Part 1 (idle overhead): on steady traffic the enabled controller
//! never swaps, so its entire cost is passive window accounting plus one
//! signature/drift evaluation per epoch. The wall-clock overhead against
//! the disabled-controller oracle must stay under 1 %.
//!
//! Part 2 (recovery): a DPI chain is hit by a match-ratio flood (benign
//! -> hostile, pattern matching ~4.5x more expensive per packet). The
//! adaptive controller re-partitions online and must beat every static
//! policy — CpuOnly, GpuOnly, FixedRatio (provisioned for the benign
//! phase), NBA's per-batch heuristic, and the stale NFCompass plan — on
//! aggregate throughput across the shift.
//!
//! Results are recorded in `BENCH_control.json` at the repository root.

use criterion::{black_box, Criterion};
use nfc_core::{ControllerConfig, ControllerReport, Deployment, Policy, RunOutcome, Sfc};
use nfc_hetero::GpuMode;
use nfc_nf::Nf;
use nfc_packet::traffic::{PayloadPolicy, SizeDist, TrafficGenerator, TrafficSpec};
use serde_json::json;
use std::time::Instant;

const BATCH_SIZE: usize = 256;
const PKT_BYTES: usize = 512;
const RATE_GBPS: f64 = 40.0;

fn chain() -> Sfc {
    Sfc::new("dpi", vec![Nf::dpi("dpi")])
}

/// Benign phase (nothing matches) followed by a hostile phase (every
/// payload matches the IDS signatures).
fn shifting_phases() -> Vec<TrafficGenerator> {
    [0.0, 1.0]
        .iter()
        .enumerate()
        .map(|(i, &ratio)| {
            TrafficGenerator::new(
                TrafficSpec::udp(SizeDist::Fixed(PKT_BYTES))
                    .with_rate_gbps(RATE_GBPS)
                    .with_payload(PayloadPolicy::MatchRatio {
                        patterns: Nf::default_ids_signatures(),
                        ratio,
                    }),
                5 + i as u64,
            )
        })
        .collect()
}

fn steady_phases() -> Vec<TrafficGenerator> {
    vec![TrafficGenerator::new(
        TrafficSpec::udp(SizeDist::Fixed(PKT_BYTES)).with_rate_gbps(20.0),
        7,
    )]
}

fn ctrl_cfg() -> ControllerConfig {
    ControllerConfig {
        epoch_batches: 8,
        ..ControllerConfig::default()
    }
}

fn run(
    policy: Policy,
    phases: &mut [TrafficGenerator],
    n_batches: usize,
    cfg: &ControllerConfig,
) -> (f64, Vec<RunOutcome>, ControllerReport) {
    let mut dep = Deployment::new(chain(), policy).with_batch_size(BATCH_SIZE);
    let start = Instant::now();
    let (outs, report) = dep.run_adaptive(phases, n_batches, cfg);
    (start.elapsed().as_secs_f64(), outs, report)
}

/// Aggregate throughput across equal-byte phases (harmonic mean of the
/// per-phase simulated throughputs).
fn aggregate_gbps(outs: &[RunOutcome]) -> f64 {
    let n = outs.len() as f64;
    n / outs
        .iter()
        .map(|o| 1.0 / o.report.throughput_gbps)
        .sum::<f64>()
}

fn control_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("control_adapt");
    g.bench_function("dpi_shift_adaptive_x16batches", |b| {
        b.iter(|| {
            black_box(run(
                Policy::nfcompass(),
                &mut shifting_phases(),
                16,
                &ctrl_cfg(),
            ))
        })
    });
    g.finish();
}

/// Best-of-`reps` wall time for the steady workload under one config.
fn idle_wall(cfg: &ControllerConfig, n_batches: usize, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let (secs, _, report) = run(Policy::nfcompass(), &mut steady_phases(), n_batches, cfg);
        assert_eq!(report.applied(), 0, "steady traffic must never swap");
        best = best.min(secs);
    }
    best
}

fn emit_report(full: bool) {
    // Part 1: idle overhead on steady traffic.
    let (idle_batches, reps) = if full { (400, 5) } else { (48, 2) };
    let off = idle_wall(&ControllerConfig::disabled(), idle_batches, reps);
    let on = idle_wall(&ctrl_cfg(), idle_batches, reps);
    let overhead = (on - off) / off;
    println!(
        "idle controller overhead: {:.3}% (on {:.1} ms vs off {:.1} ms, {idle_batches} batches)",
        overhead * 100.0,
        on * 1e3,
        off * 1e3
    );
    // The smoke run is too short for stable wall clocks; the bar applies
    // to the full run.
    if full {
        assert!(
            overhead < 0.01,
            "idle controller must cost < 1%, got {:.3}%",
            overhead * 100.0
        );
    }

    // Part 2: recovery after the benign -> hostile flip.
    let n_batches = if full { 96 } else { 48 };
    let statics: Vec<(&str, Policy)> = vec![
        ("cpu_only", Policy::CpuOnly),
        (
            "gpu_only",
            Policy::GpuOnly {
                mode: GpuMode::Persistent,
            },
        ),
        (
            "fixed_ratio_60",
            Policy::FixedRatio {
                ratio: 0.6,
                mode: GpuMode::Persistent,
            },
        ),
        ("nba_adaptive", Policy::NbaAdaptive),
        ("nfcompass_stale", Policy::nfcompass()),
    ];
    let mut rows = Vec::new();
    for (label, policy) in statics {
        let (_, outs, _) = run(
            policy,
            &mut shifting_phases(),
            n_batches,
            &ControllerConfig::disabled(),
        );
        rows.push((label, aggregate_gbps(&outs), outs));
    }
    let (_, adaptive_outs, report) = run(
        Policy::nfcompass(),
        &mut shifting_phases(),
        n_batches,
        &ctrl_cfg(),
    );
    let adaptive = aggregate_gbps(&adaptive_outs);
    println!(
        "\n{:<18} {:>10} {:>12} {:>12}",
        "policy", "agg Gbps", "benign Gbps", "hostile Gbps"
    );
    for (label, agg, outs) in &rows {
        println!(
            "{label:<18} {agg:>10.2} {:>12.2} {:>12.2}",
            outs[0].report.throughput_gbps, outs[1].report.throughput_gbps
        );
    }
    println!(
        "{:<18} {adaptive:>10.2} {:>12.2} {:>12.2}   ({} swaps, {} triggers)",
        "adaptive",
        adaptive_outs[0].report.throughput_gbps,
        adaptive_outs[1].report.throughput_gbps,
        report.applied(),
        report.triggers
    );
    assert!(
        report.applied() >= 1,
        "the flood must drive at least one adopted swap: {report:?}"
    );
    for (label, agg, _) in &rows {
        assert!(
            adaptive > *agg,
            "adaptive {adaptive:.2} Gbps must beat static {label} {agg:.2} Gbps"
        );
    }

    let mut policies = serde_json::Value::Object(Default::default());
    for (label, agg, outs) in &rows {
        policies[*label] = json!({
            "aggregate_gbps": agg,
            "benign_gbps": outs[0].report.throughput_gbps,
            "hostile_gbps": outs[1].report.throughput_gbps,
        });
    }
    let applied_swaps: Vec<f64> = report
        .adaptations
        .iter()
        .filter(|a| a.applied)
        .map(|a| a.swap_ns / 1e3)
        .collect();
    let mean_swap_us = applied_swaps.iter().sum::<f64>() / applied_swaps.len().max(1) as f64;
    policies["adaptive"] = json!({
        "aggregate_gbps": adaptive,
        "benign_gbps": adaptive_outs[0].report.throughput_gbps,
        "hostile_gbps": adaptive_outs[1].report.throughput_gbps,
        "epochs": report.epochs,
        "triggers": report.triggers,
        "refines": report.refines,
        "applied_swaps": report.applied(),
        "mean_swap_us": mean_swap_us,
    });
    let reportv = json!({
        "benchmark": "control_adapt",
        "chain": "DPI (IDS signature match)",
        "traffic": format!(
            "UDP {PKT_BYTES}B @ {RATE_GBPS} Gbps, match ratio 0.0 -> 1.0"
        ),
        "batch_size": BATCH_SIZE,
        "batches_per_phase": n_batches,
        "idle_overhead_pct": overhead * 100.0,
        "idle_overhead_bar_pct": 1.0,
        "policies": policies,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_control.json");
    std::fs::write(
        path,
        serde_json::to_string_pretty(&reportv).expect("serializes") + "\n",
    )
    .expect("write BENCH_control.json");
    println!("wrote {path}");
}

fn main() {
    let full = std::env::args().any(|a| a == "--bench");
    let mut c = Criterion::default().configure_from_args();
    control_benches(&mut c);
    emit_report(full);
}
