//! Figure 5 substrate: the real cost of batch split/merge re-organization.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use nfc_packet::traffic::{SizeDist, TrafficGenerator, TrafficSpec};
use nfc_packet::Batch;

fn batch_reorg(c: &mut Criterion) {
    let mut gen = TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(64)), 1);
    let batch = gen.batch(256);
    let mut g = c.benchmark_group("fig5_batch_split");
    g.throughput(Throughput::Elements(256));
    g.bench_function("split_2way_256", |b| {
        b.iter(|| {
            let parts = batch.clone().split_by(2, |i, _| i % 2);
            black_box(parts)
        })
    });
    g.bench_function("split_then_merge_ordered_256", |b| {
        b.iter(|| {
            let parts = batch.clone().split_by(2, |i, _| i % 2);
            black_box(Batch::merge_ordered(parts))
        })
    });
    g.bench_function("passthrough_clone_256", |b| {
        b.iter(|| black_box(batch.clone()))
    });
    g.finish();
}

criterion_group!(benches, batch_reorg);
criterion_main!(benches);
