//! Cluster-scale benchmark: rack scaling and live shard rebalancing.
//!
//! Part 1 (scale-out): a four-firewall chain — re-organized by the
//! analyzer into four parallel branches (the paper's Figure 13 b shape)
//! — is offered a load that saturates one Table-I box. The same chain
//! sharded across an 8-server rack, with every shard hand-off charged
//! on the 40 GbE inter-server links, must sustain at least 3x the
//! single-box aggregate throughput.
//!
//! Part 2 (adaptive rebalancing): a stateful NAT -> DPI chain on
//! Zipf-skewed flows is hit by a payload flood (benign -> hostile).
//! Hash sharding piles the hot flows onto few servers, and the cluster
//! batch completion is gated by the hottest one. The live controller
//! sheds ring vnodes from hot to cold (state migrated over the links,
//! loss-free) and must beat the static shard map's aggregate throughput
//! across the shift.
//!
//! Results are recorded in `BENCH_cluster.json` at the repository root.

use criterion::{black_box, Criterion};
use nfc_cluster::{ClusterDeployment, ClusterOutcome, ClusterSpec, RebalanceConfig};
use nfc_core::{Policy, Sfc};
use nfc_nf::Nf;
use nfc_packet::traffic::{FlowSpec, PayloadPolicy, SizeDist, TrafficGenerator, TrafficSpec};
use serde_json::json;

const SCALE_BATCH: usize = 2048;
const SCALE_RATE_GBPS: f64 = 200.0;
const SCALE_PKT_BYTES: usize = 512;
const SCALE_FW_RULES: usize = 8192;

const FLOOD_BATCH: usize = 512;
const FLOOD_RATE_GBPS: f64 = 32.0;
const FLOOD_PKT_BYTES: usize = 256;
const FLOOD_SERVERS: usize = 8;

/// Four heavyweight read-only firewalls: the analyzer re-organizes
/// them into four parallel singleton branches, and the deep ACLs make
/// the chain compute-bound enough that one Table-I box saturates well
/// below the offered load.
fn branch_chain() -> Sfc {
    Sfc::new(
        "fw-x4",
        (0..4)
            .map(|i| Nf::firewall(format!("fw{i}"), SCALE_FW_RULES, 1))
            .collect(),
    )
}

fn stateful_chain() -> Sfc {
    Sfc::new(
        "nat-dpi",
        vec![Nf::nat("nat", [192, 168, 0, 1]), Nf::dpi("dpi")],
    )
}

/// Fixed offered load regardless of rack size: one box saturates, the
/// rack absorbs.
fn scale_traffic(seed: u64) -> TrafficGenerator {
    TrafficGenerator::new(
        TrafficSpec::udp(SizeDist::Fixed(SCALE_PKT_BYTES))
            .with_rate_gbps(SCALE_RATE_GBPS)
            .with_flows(FlowSpec {
                count: 1024,
                ..FlowSpec::default()
            }),
        seed,
    )
}

/// Benign phase (nothing matches the IDS signatures) followed by a
/// hostile phase (every payload matches, ~4.5x per-packet DPI cost).
/// The Zipf skew concentrates the flood onto few flow hashes.
fn flood_phases() -> Vec<TrafficGenerator> {
    [0.0, 1.0]
        .iter()
        .enumerate()
        .map(|(i, &ratio)| {
            TrafficGenerator::new(
                TrafficSpec::udp(SizeDist::Fixed(FLOOD_PKT_BYTES))
                    .with_rate_gbps(FLOOD_RATE_GBPS)
                    .with_flows(
                        FlowSpec {
                            count: 64,
                            ..FlowSpec::default()
                        }
                        .with_skew(1.3),
                    )
                    .with_payload(PayloadPolicy::MatchRatio {
                        patterns: Nf::default_ids_signatures(),
                        ratio,
                    }),
                41 + i as u64,
            )
        })
        .collect()
}

fn scale_run(n_servers: usize, n_batches: usize) -> ClusterOutcome {
    let mut cluster = ClusterDeployment::build(
        ClusterSpec::uniform(n_servers),
        &branch_chain(),
        Policy::nfcompass(),
        |d| d.with_batch_size(SCALE_BATCH),
    );
    cluster.run(&mut scale_traffic(5), n_batches)
}

fn flood_run(rebalance: RebalanceConfig, batches_per_phase: usize) -> ClusterOutcome {
    let spec = ClusterSpec::uniform(FLOOD_SERVERS).with_rebalance(rebalance);
    let mut cluster = ClusterDeployment::build(spec, &stateful_chain(), Policy::nfcompass(), |d| {
        d.with_batch_size(FLOOD_BATCH)
    });
    cluster.run_phased(&mut flood_phases(), batches_per_phase)
}

fn adaptive_config() -> RebalanceConfig {
    RebalanceConfig {
        epoch_batches: 4,
        imbalance_threshold: 1.10,
        hysteresis_epochs: 1,
        cooldown_epochs: 0,
        vnodes_per_move: 8,
    }
}

fn cluster_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_scale");
    g.sample_size(10);
    g.bench_function("shard_4servers_x12batches", |b| {
        b.iter(|| black_box(scale_run(4, 12)))
    });
    g.finish();
}

fn emit_report(full: bool) {
    // Part 1: 8-server rack vs one box under the same saturating load.
    let n_batches = if full { 64 } else { 24 };
    let one = scale_run(1, n_batches);
    let eight = scale_run(8, n_batches);
    let speedup = eight.report.throughput_gbps / one.report.throughput_gbps;
    println!(
        "{:>7} {:>12} {:>14} {:>12}",
        "servers", "agg Gbps", "p99 lat (us)", "drops"
    );
    for (n, o) in [(1usize, &one), (8, &eight)] {
        println!(
            "{n:>7} {:>12.2} {:>14.2} {:>12}",
            o.report.throughput_gbps,
            o.report.p99_latency_ns / 1e3,
            o.report.dropped_batches
        );
    }
    println!("scale-out speedup at 8 servers: {speedup:.2}x (bar: 3x)");
    assert!(
        speedup >= 3.0,
        "8-server rack must sustain >= 3x one box, got {speedup:.2}x \
         ({:.2} vs {:.2} Gbps)",
        eight.report.throughput_gbps,
        one.report.throughput_gbps
    );

    // Part 2: adaptive rebalancing vs the static shard map across the
    // benign -> hostile flood.
    let batches_per_phase = if full { 64 } else { 32 };
    let adaptive = flood_run(adaptive_config(), batches_per_phase);
    let static_map = flood_run(RebalanceConfig::disabled(), batches_per_phase);
    println!(
        "\n{:<22} {:>10} {:>14} {:>11} {:>14}",
        "configuration", "agg Gbps", "p99 lat (us)", "rebalances", "migrated (KB)"
    );
    for (label, o) in [("static shard map", &static_map), ("adaptive", &adaptive)] {
        println!(
            "{label:<22} {:>10.2} {:>14.2} {:>11} {:>14.1}",
            o.report.throughput_gbps,
            o.report.p99_latency_ns / 1e3,
            o.rebalances,
            o.migrated_bytes as f64 / 1024.0
        );
    }
    assert!(
        adaptive.rebalances >= 1,
        "the flood must trip the cluster controller"
    );
    assert!(
        adaptive.report.throughput_gbps > static_map.report.throughput_gbps,
        "adaptive {:.2} Gbps must beat the static shard map {:.2} Gbps",
        adaptive.report.throughput_gbps,
        static_map.report.throughput_gbps
    );

    let report = json!({
        "benchmark": "cluster_scale",
        "scale_out": {
            "chain": format!(
                "fw-x4 ({SCALE_FW_RULES}-rule ACLs) re-organized into 4 parallel branches"
            ),
            "traffic": format!("UDP {SCALE_PKT_BYTES}B @ {SCALE_RATE_GBPS} Gbps"),
            "batch_size": SCALE_BATCH,
            "batches": n_batches,
            "one_box_gbps": one.report.throughput_gbps,
            "rack8_gbps": eight.report.throughput_gbps,
            "speedup": speedup,
            "speedup_bar": 3.0,
            "rack8_p99_us": eight.report.p99_latency_ns / 1e3,
        },
        "rebalancing": {
            "chain": "NAT -> DPI (stateful)",
            "traffic": format!(
                "UDP {FLOOD_PKT_BYTES}B @ {FLOOD_RATE_GBPS} Gbps, Zipf 1.3, \
                 match ratio 0.0 -> 1.0"
            ),
            "servers": FLOOD_SERVERS,
            "batch_size": FLOOD_BATCH,
            "batches_per_phase": batches_per_phase,
            "static_gbps": static_map.report.throughput_gbps,
            "adaptive_gbps": adaptive.report.throughput_gbps,
            "adaptive_p99_us": adaptive.report.p99_latency_ns / 1e3,
            "static_p99_us": static_map.report.p99_latency_ns / 1e3,
            "rebalances": adaptive.rebalances,
            "migrated_bytes": adaptive.migrated_bytes,
        },
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serializes") + "\n",
    )
    .expect("write BENCH_cluster.json");
    println!("wrote {path}");
}

fn main() {
    let full = std::env::args().any(|a| a == "--bench");
    let mut c = Criterion::default().configure_from_args();
    cluster_benches(&mut c);
    emit_report(full);
}
