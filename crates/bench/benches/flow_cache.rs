//! Flow-aware fast-path benchmark: cache-on vs cache-off on Zipf-skewed
//! traffic through an ACL(1k rules) + LPM + classifier chain.
//!
//! Both configurations replay the exact same pre-generated batches
//! through the same chain; egress and per-element statistics must be
//! byte-identical (the fast path is a pure wall-clock optimization).
//! The measured throughputs, hit rate and speedup are recorded in
//! `BENCH_flowcache.json` at the repository root.

use criterion::{black_box, BenchmarkId, Criterion};
use nfc_click::element::config_hash;
use nfc_click::ElementGraph;
use nfc_core::flowcache::FlowCacheMode;
use nfc_core::{Deployment, ExecMode, Policy, RunOutcome, Sfc};
use nfc_nf::acl::synth;
use nfc_nf::catalog::synth_routes_v4;
use nfc_nf::elements::IpLookup;
use nfc_nf::lpm::Dir24_8;
use nfc_nf::{Nf, NfKind};
use nfc_packet::traffic::{FlowSpec, SizeDist, TrafficGenerator, TrafficSpec};
use nfc_packet::Batch;
use serde_json::json;
use std::sync::Arc;
use std::time::Instant;

const BATCH_SIZE: usize = 256;
const PKT_BYTES: usize = 512;
const ACL_RULES: usize = 1000;
const LPM_ROUTES: usize = 4096;
const FLOWS: usize = 2048;
const ZIPF_SKEW: f64 = 1.0;
const CACHE_CAPACITY: usize = 1 << 15;

/// A pure-LPM router stage (single `IpLookup` element). The catalog's
/// full IPv4 forwarder rewrites TTL/MACs and is therefore not
/// cache-eligible; route lookup itself is a per-flow decision.
fn lpm_router(name: &str) -> Nf {
    let routes = synth_routes_v4(LPM_ROUTES, 2);
    let mut cfg_bytes = Vec::new();
    for r in &routes {
        cfg_bytes.extend_from_slice(&r.prefix.to_be_bytes());
        cfg_bytes.push(r.len);
        cfg_bytes.extend_from_slice(&r.next_hop.to_be_bytes());
    }
    let cfg = config_hash(&cfg_bytes);
    let table = Arc::new(Dir24_8::from_routes(&routes, 20));
    let mut g = ElementGraph::new();
    g.add(IpLookup::new(table, cfg));
    Nf::from_graph(name, NfKind::Ipv4Forwarder, g)
}

/// The issue's chain: enforcing ACL firewall (header classifier + 1k
/// rules), LPM route lookup, and a classifier-style load balancer.
fn chain() -> Sfc {
    Sfc::new(
        "acl-lpm-classify",
        vec![
            Nf::firewall_with("acl", synth::generate(ACL_RULES, 1), true),
            lpm_router("rt"),
            Nf::load_balancer("lb", 8),
        ],
    )
}

fn traffic() -> TrafficGenerator {
    let spec = TrafficSpec::udp(SizeDist::Fixed(PKT_BYTES)).with_flows(FlowSpec {
        count: FLOWS,
        ..FlowSpec::default().with_skew(ZIPF_SKEW)
    });
    TrafficGenerator::new(spec, 7)
}

fn configs() -> Vec<(&'static str, FlowCacheMode)> {
    vec![
        ("cache_off", FlowCacheMode::Off),
        (
            "cache_on",
            FlowCacheMode::On {
                capacity: CACHE_CAPACITY,
            },
        ),
    ]
}

/// Pre-generates the workload once so the timed region is the chain
/// (ACL classification, LPM lookup, cache probes), not the synthesizer.
fn workload(n_batches: usize) -> Vec<Batch> {
    let mut gen = traffic();
    (0..n_batches).map(|_| gen.batch(BATCH_SIZE)).collect()
}

fn run_config(mode: FlowCacheMode, batches: &[Batch]) -> (f64, RunOutcome, Vec<Batch>) {
    let mut dep = Deployment::new(chain(), Policy::CpuOnly)
        .with_batch_size(BATCH_SIZE)
        .with_exec_mode(ExecMode::Serial)
        .with_flow_cache(mode);
    let mut gen = traffic();
    let start = Instant::now();
    let (out, egress) = dep.run_replay(&mut gen, batches);
    (start.elapsed().as_secs_f64(), out, egress)
}

fn flow_cache_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow_cache");
    let batches = workload(10);
    for (label, mode) in configs() {
        let batches = &batches;
        g.bench_function(
            BenchmarkId::new("acl1k_lpm_lb_x10batches", label),
            move |b| b.iter(|| black_box(run_config(mode, batches))),
        );
    }
    g.finish();
}

/// Measures both configurations, asserts byte-identical egress and
/// statistics, and writes `BENCH_flowcache.json` at the repository root.
fn emit_report(full: bool) {
    let n_batches = if full { 256 } else { 16 };
    let reps = if full { 3 } else { 2 };
    let batches = workload(n_batches);
    let mut rows = Vec::new();
    let mut reference: Option<(RunOutcome, Vec<Batch>)> = None;
    for (label, mode) in configs() {
        let mut best = f64::INFINITY;
        let mut kept = None;
        for _ in 0..reps {
            let (secs, out, egress) = run_config(mode, &batches);
            best = best.min(secs);
            kept = Some((out, egress));
        }
        let (out, egress) = kept.expect("at least one rep");
        match &reference {
            None => reference = Some((out.clone(), egress.clone())),
            Some((ref_out, ref_egress)) => {
                assert_eq!(
                    ref_egress, &egress,
                    "{label}: egress differs from cache_off"
                );
                assert_eq!(
                    ref_out.stage_stats, out.stage_stats,
                    "{label}: per-element stats differ from cache_off"
                );
                assert_eq!(ref_out.egress_packets, out.egress_packets);
                assert_eq!(ref_out.egress_bytes, out.egress_bytes);
            }
        }
        let wire_bytes = (n_batches * BATCH_SIZE * PKT_BYTES) as f64;
        let gbps = wire_bytes * 8.0 / best / 1e9;
        let cc = out.flow_cache;
        let probes = cc.hits + cc.misses;
        let hit_rate = if probes > 0 {
            cc.hits as f64 / probes as f64
        } else {
            0.0
        };
        println!(
            "{label:<10} {:>8.1} ms for {n_batches} batches  ({gbps:.2} Gbit/s offered, \
             hit rate {:.1}%, {} evictions, {} invalidations)",
            best * 1e3,
            hit_rate * 100.0,
            cc.evictions,
            cc.invalidations
        );
        rows.push((label, best, gbps, hit_rate, cc));
    }
    let speedup = rows[0].1 / rows[1].1;
    println!("flow-cache speedup vs cache_off: {speedup:.2}x");
    // The short smoke run has not amortized its compulsory misses
    // (one per flow), so the throughput bar applies to the full run.
    if full {
        assert!(
            rows[1].3 > 0.5,
            "Zipf({ZIPF_SKEW}) over {FLOWS} flows must mostly hit, got {:.1}%",
            rows[1].3 * 100.0
        );
        assert!(
            speedup >= 2.0,
            "flow cache must be >= 2x over the cache-off baseline, got {speedup:.2}x"
        );
    }
    let mut cfgs = serde_json::Value::Object(Default::default());
    for (label, secs, gbps, hit_rate, cc) in &rows {
        cfgs[*label] = json!({
            "wall_s": secs,
            "offered_gbps": gbps,
            "hit_rate": hit_rate,
            "hits": cc.hits,
            "misses": cc.misses,
            "evictions": cc.evictions,
            "invalidations": cc.invalidations,
            "speedup_vs_cache_off": rows[0].1 / secs,
        });
    }
    let report = json!({
        "benchmark": "flow_cache",
        "chain": "ACL(1k rules) firewall + DIR-24-8 LPM + load-balancer classifier",
        "traffic": format!("UDP {PKT_BYTES}B, {FLOWS} flows, Zipf({ZIPF_SKEW})"),
        "batch_size": BATCH_SIZE,
        "n_batches": n_batches,
        "cache_capacity": CACHE_CAPACITY,
        "egress_byte_identical": true,
        "configs": cfgs,
        "speedup_cache_on_vs_cache_off": speedup,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_flowcache.json");
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serializes") + "\n",
    )
    .expect("write BENCH_flowcache.json");
    println!("wrote {path}");
}

fn main() {
    let full = std::env::args().any(|a| a == "--bench");
    let mut c = Criterion::default().configure_from_args();
    flow_cache_benches(&mut c);
    emit_report(full);
}
