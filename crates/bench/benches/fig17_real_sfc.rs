//! Figure 17 substrate: ACL classification cost vs rule count.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nfc_nf::acl::{synth, AclTable, Action};
use nfc_packet::traffic::{SizeDist, TrafficGenerator, TrafficSpec};

fn acl_scaling(c: &mut Criterion) {
    let mut gen = TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(64)), 1);
    let tuples: Vec<_> = gen
        .batch(256)
        .iter()
        .map(|p| p.five_tuple().expect("valid"))
        .collect();
    let mut g = c.benchmark_group("fig17_acl_classify");
    for rules in [200usize, 1_000, 10_000] {
        let acl = AclTable::new(synth::generate(rules, 21), Action::Allow);
        g.bench_with_input(
            BenchmarkId::new("classify_256pkts", rules),
            &acl,
            |b, acl| {
                b.iter(|| {
                    let mut denied = 0u32;
                    for t in &tuples {
                        if acl.classify(black_box(t)).rule.is_some() {
                            denied += 1;
                        }
                    }
                    black_box(denied)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, acl_scaling);
criterion_main!(benches);
