//! Microbenchmarks of the real packet-processing substrates: crypto,
//! pattern matching, route lookup, checksums, batch operations.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use nfc_nf::ac::AhoCorasick;
use nfc_nf::crypto::{hmac_sha1, Aes128, Sha1};
use nfc_nf::dfa::Dfa;
use nfc_nf::lpm::{Dir24_8, WaldvogelV6};
use nfc_nf::{catalog, Nf};
use nfc_packet::checksum;

fn crypto_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    let aes = Aes128::new(b"nfcompass-aeskey");
    let payload_1k = vec![0xA5u8; 1024];
    g.throughput(Throughput::Bytes(16));
    g.bench_function("aes128_block", |b| {
        let mut block = [0u8; 16];
        b.iter(|| {
            aes.encrypt_block(black_box(&mut block));
        })
    });
    g.throughput(Throughput::Bytes(1024));
    g.bench_function("aes128_ctr_1k", |b| {
        let mut buf = payload_1k.clone();
        b.iter(|| aes.ctr_apply(1, 42, black_box(&mut buf)))
    });
    g.bench_function("sha1_1k", |b| {
        b.iter(|| Sha1::digest(black_box(&payload_1k)))
    });
    g.bench_function("hmac_sha1_1k", |b| {
        b.iter(|| hmac_sha1(b"key", black_box(&payload_1k)))
    });
    g.finish();
}

fn matching_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("matching");
    let ac = AhoCorasick::new(Nf::default_ids_signatures());
    let dfa = Dfa::compile(r"GET /[\w/]*\.php\?\w+=").expect("compiles");
    let clean = vec![b'x'; 1460];
    let mut dirty = clean.clone();
    dirty[700..716].copy_from_slice(b"ATTACK_SHELLCODE");
    g.throughput(Throughput::Bytes(1460));
    g.bench_function("ac_no_match_1460", |b| {
        b.iter(|| ac.is_match(black_box(&clean)))
    });
    g.bench_function("ac_match_1460", |b| {
        b.iter(|| ac.find_all(black_box(&dirty)))
    });
    g.bench_function("dfa_no_match_1460", |b| {
        b.iter(|| dfa.is_match(black_box(&clean)))
    });
    g.finish();
}

fn lookup_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("lookup");
    let routes = catalog::synth_routes_v4(10_000, 1);
    let dir = Dir24_8::from_routes(&routes, 20);
    let v6 = WaldvogelV6::build(&catalog::synth_routes_v6(5_000, 2));
    g.bench_function("dir24_8_lookup", |b| {
        let mut a = 0x0A00_0001u32;
        b.iter(|| {
            a = a.wrapping_add(2654435761);
            dir.lookup(black_box(a))
        })
    });
    g.bench_function("waldvogel_v6_lookup", |b| {
        let mut a = 0x2001_0000u128 << 96;
        b.iter(|| {
            a = a.wrapping_add(0x9E37_79B9_7F4A_7C15);
            v6.lookup(black_box(a))
        })
    });
    g.finish();
}

fn checksum_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("checksum");
    let buf = vec![0x5Au8; 1500];
    g.throughput(Throughput::Bytes(1500));
    g.bench_function("internet_checksum_1500", |b| {
        b.iter(|| checksum::checksum(black_box(&buf)))
    });
    g.bench_function("incremental_update32", |b| {
        b.iter(|| checksum::update32(black_box(0x1234), 0xC0A8_0001, 0xCB00_7101))
    });
    g.finish();
}

criterion_group!(
    benches,
    crypto_benches,
    matching_benches,
    lookup_benches,
    checksum_benches
);
criterion_main!(benches);
