//! Engine benchmark: CoW branch duplication + worker-pool execution vs
//! the serial deep-copy baseline on a 4-branch re-organized SFC.
//!
//! Four configurations run the same chain on the same traffic:
//!
//! * `serial_deepcopy` — the pre-engine behavior: branches run one after
//!   another and each receives an eagerly copied batch.
//! * `serial_cow` — duplication is a refcount bump; the XOR merge skips
//!   branches whose buffers are still shared.
//! * `parallel_cow` — CoW plus the scoped worker pool
//!   (`NFC_THREADS` / available parallelism).
//! * `parallel_cow_lanes_off` — `parallel_cow` with the SoA header-lane
//!   sweep disabled, isolating what the columnar path buys on top of the
//!   engine.
//! * `parallel_cow_simd_off` — `parallel_cow` with the wide-word SIMD
//!   kernels disabled (scalar lane sweep), isolating what the batched
//!   compares buy on top of the columnar layout.
//!
//! Egress must be byte-identical across all four; the measured
//! throughputs and the speedups are recorded in `BENCH_engine.json` at
//! the repository root.

use criterion::{black_box, BenchmarkId, Criterion};
use nfc_core::{Deployment, Duplication, ExecMode, Policy, RunOutcome, Sfc, TelemetryMode};
use nfc_hetero::GpuMode;
use nfc_nf::Nf;
use nfc_packet::traffic::{SizeDist, TrafficGenerator, TrafficSpec};
use nfc_packet::Batch;
use nfc_telemetry::{
    DriftWatchdog, FlowSampler, HealthState, Recorder, SketchKey, SketchSet, SloSpec,
    DEFAULT_SKETCH_ALPHA,
};
use serde_json::json;
use std::time::Instant;

const BATCH_SIZE: usize = 256;
const PKT_BYTES: usize = 1024;

fn configs() -> Vec<(&'static str, ExecMode, Duplication, bool, bool)> {
    vec![
        (
            "serial_deepcopy",
            ExecMode::Serial,
            Duplication::DeepCopy,
            true,
            true,
        ),
        ("serial_cow", ExecMode::Serial, Duplication::Cow, true, true),
        (
            "parallel_cow",
            ExecMode::auto(),
            Duplication::Cow,
            true,
            true,
        ),
        (
            "parallel_cow_lanes_off",
            ExecMode::auto(),
            Duplication::Cow,
            false,
            true,
        ),
        (
            "parallel_cow_simd_off",
            ExecMode::auto(),
            Duplication::Cow,
            true,
            false,
        ),
    ]
}

/// Four read-only firewalls: the analyzer re-organizes them into four
/// parallel singleton branches (the paper's Figure 13 b shape).
fn chain() -> Sfc {
    Sfc::new(
        "fw-x4",
        (0..4)
            .map(|i| Nf::firewall(format!("fw{i}"), 256, 1))
            .collect(),
    )
}

fn deployment(exec: ExecMode, dup: Duplication, lanes: bool, simd: bool) -> Deployment {
    let policy = Policy::ReorgOnly {
        max_branches: 4,
        synthesize: false,
        ratio: 0.0,
        mode: GpuMode::Persistent,
    };
    Deployment::new(chain(), policy)
        .with_batch_size(BATCH_SIZE)
        .with_exec_mode(exec)
        .with_duplication(dup)
        .with_lanes(lanes)
        .with_simd(simd)
        .without_slo()
        .without_flow_trace()
}

/// Pre-generates the workload once so the timed region is the engine
/// (duplication, branch execution, merge), not the traffic synthesizer.
fn workload(n_batches: usize) -> Vec<Batch> {
    let mut traffic = TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(PKT_BYTES)), 7);
    (0..n_batches).map(|_| traffic.batch(BATCH_SIZE)).collect()
}

fn run_config(
    exec: ExecMode,
    dup: Duplication,
    lanes: bool,
    simd: bool,
    batches: &[Batch],
) -> (f64, RunOutcome, Vec<Batch>) {
    run_with_telemetry(exec, dup, lanes, simd, TelemetryMode::Off, batches)
}

fn run_with_telemetry(
    exec: ExecMode,
    dup: Duplication,
    lanes: bool,
    simd: bool,
    telemetry: TelemetryMode,
    batches: &[Batch],
) -> (f64, RunOutcome, Vec<Batch>) {
    let mut dep = deployment(exec, dup, lanes, simd).with_telemetry(telemetry);
    let mut traffic = TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(PKT_BYTES)), 7);
    let start = Instant::now();
    let (out, egress) = dep.run_replay(&mut traffic, batches);
    (start.elapsed().as_secs_f64(), out, egress)
}

/// Estimates what the disabled telemetry hooks cost on the hot path:
/// times a large batch of no-op recorder probes (the exact shape the
/// runtime uses — `start()` then an `is_enabled()` branch), scales by
/// the number of events an instrumented run actually records, and
/// expresses that as a percentage of the telemetry-off wall time.
fn disabled_hook_overhead_pct(events: u64, wall_s: f64) -> f64 {
    let rec = Recorder::disabled();
    const PROBES: u64 = 4_000_000;
    let start = Instant::now();
    for i in 0..PROBES {
        let t = rec.start();
        if black_box(rec.is_enabled()) {
            unreachable!("recorder is disabled");
        }
        black_box(t);
        black_box(i);
    }
    let ns_per_probe = start.elapsed().as_secs_f64() * 1e9 / PROBES as f64;
    events as f64 * ns_per_probe / (wall_s * 1e9) * 100.0
}

/// Estimates the armed health plane's per-batch cost: times the exact
/// accounting the runtime does for every completed batch (SLO window
/// bookkeeping, e2e + per-stage sketch records, the drift watchdog) plus
/// an amortized epoch close, scales by the batch count of the measured
/// run, and expresses it as a percentage of the telemetry-off wall time.
fn health_plane_overhead_pct(n_batches: u64, wall_s: f64) -> f64 {
    let spec = SloSpec {
        p99_latency_ns: 1.0,
        epoch_batches: 16,
        ..Default::default()
    };
    let mut state = HealthState::new(spec);
    let mut watchdog = DriftWatchdog::new(0.5, 2);
    let mut sketches = SketchSet::new(DEFAULT_SKETCH_ALPHA);
    const PROBES: u64 = 200_000;
    let start = Instant::now();
    for i in 0..PROBES {
        let t = (i % 97) as f64 + 1.0;
        state.observe_batch(t * 100.0, 1024, t, t + 100.0);
        sketches.record(SketchKey::chain("e2e_ns"), t * 100.0);
        for s in 0..4u32 {
            sketches.record(SketchKey::stage("stage_wall_ns", s, "cpu"), t);
        }
        watchdog.observe(t * 90.0, t * 100.0, &mut sketches);
        if i % 16 == 0 {
            black_box(state.epoch());
            black_box(watchdog.epoch());
        }
    }
    black_box(sketches.len());
    let ns_per_batch = start.elapsed().as_secs_f64() * 1e9 / PROBES as f64;
    n_batches as f64 * ns_per_batch / (wall_s * 1e9) * 100.0
}

/// Estimates the armed flow-forensics cost on the hot path: times the
/// per-packet sampling decision (a modulo against the flow hash — the
/// only work unsampled packets pay), scales by the packet count of the
/// measured run, and expresses it as a percentage of the trace-off wall
/// time. Sampled flows additionally pay one event append per touchpoint,
/// but at 1/256 that term is two orders of magnitude smaller.
fn flow_plane_overhead_pct(packets: u64, wall_s: f64) -> f64 {
    let sampler = FlowSampler::new(256);
    const PROBES: u64 = 4_000_000;
    let start = Instant::now();
    let mut hits = 0u64;
    for i in 0..PROBES {
        if sampler.sampled(black_box(i as u32).wrapping_mul(0x9e37_79b9)) {
            hits += 1;
        }
    }
    black_box(hits);
    let ns_per_probe = start.elapsed().as_secs_f64() * 1e9 / PROBES as f64;
    packets as f64 * ns_per_probe / (wall_s * 1e9) * 100.0
}

fn engine_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    let batches = workload(10);
    for (label, exec, dup, lanes, simd) in configs() {
        let batches = &batches;
        g.bench_function(BenchmarkId::new("4branch_x10batches", label), move |b| {
            b.iter(|| black_box(run_config(exec, dup, lanes, simd, batches)))
        });
    }
    g.finish();
}

/// Measures all four configurations, checks functional equivalence, and
/// writes `BENCH_engine.json` at the repository root.
fn emit_report(full: bool) {
    let n_batches = if full { 64 } else { 16 };
    let reps = if full { 3 } else { 2 };
    let batches = workload(n_batches);
    let mut rows = Vec::new();
    let mut reference: Option<(RunOutcome, Vec<Batch>)> = None;
    for (label, exec, dup, lanes, simd) in configs() {
        let mut best = f64::INFINITY;
        let mut kept = None;
        for _ in 0..reps {
            let (secs, out, egress) = run_config(exec, dup, lanes, simd, &batches);
            best = best.min(secs);
            kept = Some((out, egress));
        }
        let (out, egress) = kept.expect("at least one rep");
        match &reference {
            None => reference = Some((out.clone(), egress.clone())),
            Some((ref_out, ref_egress)) => {
                assert_eq!(
                    ref_egress, &egress,
                    "{label}: egress differs from serial_deepcopy"
                );
                assert_eq!(
                    ref_out.stage_stats, out.stage_stats,
                    "{label}: per-element stats differ from serial_deepcopy"
                );
                assert_eq!(ref_out.merge_conflicts, out.merge_conflicts);
            }
        }
        let wire_bytes = (n_batches * BATCH_SIZE * PKT_BYTES) as f64;
        let gbps = wire_bytes * 8.0 / best / 1e9;
        println!(
            "{label:<18} {:>8.1} ms for {n_batches} batches  ({gbps:.2} Gbit/s offered)",
            best * 1e3
        );
        rows.push((label, best, gbps, out.width, lanes, simd));
    }
    let baseline = rows[0].1;
    let cow = baseline / rows[1].1;
    let parallel = baseline / rows[2].1;
    println!("speedup vs serial_deepcopy: serial_cow {cow:.2}x, parallel_cow {parallel:.2}x");
    assert!(
        parallel >= 2.0,
        "engine must be >= 2x over the deep-copy serial baseline, got {parallel:.2}x"
    );
    // SoA header-lane rider: same parallel CoW engine with the columnar
    // sweep off vs on. The egress equality above already proved the two
    // paths byte-identical; here the lanes must also pay for themselves.
    let lanes_gain = rows[3].1 / rows[2].1;
    println!("speedup lanes on vs off (parallel_cow): {lanes_gain:.2}x");
    assert!(
        lanes_gain >= 1.3,
        "SoA header lanes must be >= 1.3x over the per-packet path, got {lanes_gain:.2}x"
    );
    // Wide-word SIMD rider: same parallel CoW engine sweeping lanes
    // either with the batched 8-wide kernels or the scalar per-row
    // path. Egress equality above already proved them byte-identical;
    // the wide words must also pay for themselves.
    let simd_gain = rows[4].1 / rows[2].1;
    println!("speedup simd on vs off (parallel_cow): {simd_gain:.2}x");
    assert!(
        simd_gain >= 1.2,
        "wide-word SIMD kernels must be >= 1.2x over the scalar lane sweep, got {simd_gain:.2}x"
    );
    // Telemetry rider: an instrumented run must keep byte-identical
    // egress, and the disabled hooks left in the hot path must cost
    // under 1% of the telemetry-off parallel configuration.
    let (tel_secs, tel_out, tel_egress) = run_with_telemetry(
        ExecMode::auto(),
        Duplication::Cow,
        true,
        true,
        TelemetryMode::Memory,
        &batches,
    );
    let (ref_out, ref_egress) = reference.as_ref().expect("reference row");
    assert_eq!(
        ref_egress, &tel_egress,
        "telemetry-on egress differs from serial_deepcopy"
    );
    assert_eq!(
        ref_out.stage_stats, tel_out.stage_stats,
        "telemetry-on per-element stats differ from serial_deepcopy"
    );
    let digest = tel_out.telemetry.expect("telemetry digest");
    let overhead_pct = disabled_hook_overhead_pct(digest.events, rows[2].1);
    println!(
        "telemetry: {} events in {:.1} ms instrumented; disabled-hook overhead \
         {overhead_pct:.4}% of parallel_cow",
        digest.events,
        tel_secs * 1e3
    );
    assert!(
        overhead_pct < 1.0,
        "disabled telemetry must stay under 1% of the hot path, got {overhead_pct:.4}%"
    );
    // Health-plane rider: arming an SLO keeps egress byte-identical and
    // the armed accounting (burn windows, sketches, drift watchdog)
    // stays under 1% of the telemetry-off parallel wall time.
    let mut armed = deployment(ExecMode::auto(), Duplication::Cow, true, true)
        .with_telemetry(TelemetryMode::Memory)
        .with_slo(SloSpec {
            p99_latency_ns: 1.0,
            epoch_batches: 8,
            ..Default::default()
        });
    let mut armed_traffic = TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(PKT_BYTES)), 7);
    let (armed_out, armed_egress) = armed.run_replay(&mut armed_traffic, &batches);
    assert_eq!(
        ref_egress, &armed_egress,
        "SLO-armed egress differs from serial_deepcopy"
    );
    assert_eq!(
        ref_out.stage_stats, armed_out.stage_stats,
        "SLO-armed per-element stats differ from serial_deepcopy"
    );
    let health_pct = health_plane_overhead_pct(n_batches as u64, rows[2].1);
    println!("health plane: armed accounting costs {health_pct:.4}% of parallel_cow");
    assert!(
        health_pct < 1.0,
        "the armed health plane must stay under 1% of the hot path, got {health_pct:.4}%"
    );
    // Flow-forensics rider: arming 1/256 deterministic flow tracing
    // keeps egress byte-identical, and the per-packet sampling decision
    // costs under 1% of the telemetry-off parallel wall time.
    let mut traced = deployment(ExecMode::auto(), Duplication::Cow, true, true)
        .with_telemetry(TelemetryMode::Memory)
        .with_flow_trace(256);
    let mut traced_traffic = TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(PKT_BYTES)), 7);
    let (traced_out, traced_egress) = traced.run_replay(&mut traced_traffic, &batches);
    assert_eq!(
        ref_egress, &traced_egress,
        "flow-traced egress differs from serial_deepcopy"
    );
    assert_eq!(
        ref_out.stage_stats, traced_out.stage_stats,
        "flow-traced per-element stats differ from serial_deepcopy"
    );
    let flow_pct = flow_plane_overhead_pct((n_batches * BATCH_SIZE) as u64, rows[2].1);
    println!("flow plane: 1/256 sampling costs {flow_pct:.4}% of parallel_cow");
    assert!(
        flow_pct < 1.0,
        "the armed flow plane must stay under 1% of the hot path, got {flow_pct:.4}%"
    );
    let mut cfgs = serde_json::Value::Object(Default::default());
    for (label, secs, gbps, _, lanes, simd) in &rows {
        cfgs[*label] = json!({
            "wall_s": secs,
            "offered_gbps": gbps,
            "speedup_vs_serial_deepcopy": baseline / secs,
            "soa_lanes": lanes,
            "simd": simd,
        });
    }
    let report = json!({
        "benchmark": "engine_parallel",
        "chain": "fw-x4 (256-rule ACLs) re-organized into 4 parallel branches",
        "batch_size": BATCH_SIZE,
        "pkt_bytes": PKT_BYTES,
        "n_batches": n_batches,
        "threads": ExecMode::auto().threads(),
        "egress_byte_identical": true,
        "configs": cfgs,
        "speedup_parallel_cow_vs_serial_deepcopy": parallel,
        "speedup_soa_lanes_on_vs_off": lanes_gain,
        "speedup_simd_on_vs_off": simd_gain,
        "telemetry": {
            "events": digest.events,
            "instrumented_wall_s": tel_secs,
            "disabled_hook_overhead_pct": overhead_pct,
        },
        "health_plane": {
            "egress_byte_identical": true,
            "armed_overhead_pct": health_pct,
        },
        "flow_plane": {
            "egress_byte_identical": true,
            "sampling_rate": 256,
            "armed_overhead_pct": flow_pct,
        },
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serializes") + "\n",
    )
    .expect("write BENCH_engine.json");
    println!("wrote {path}");
}

fn main() {
    let full = std::env::args().any(|a| a == "--bench");
    let mut c = Criterion::default().configure_from_args();
    engine_benches(&mut c);
    emit_report(full);
}
