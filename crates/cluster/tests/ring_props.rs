//! Property tests for the consistent-hash ring (satellite of the
//! cluster PR): balance for arbitrary server counts, and minimal
//! disruption on resize — the two properties stateful-NF stickiness
//! rests on.

use nfc_cluster::{HashRing, FLOW_SPACE};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// With 64 vnodes per server the ring stays balanced for ANY server
    /// count: every server owns some arc, the map tiles the flow space
    /// exactly, and no server owns more than 3x its fair share.
    #[test]
    fn ring_balance_bound_holds_for_arbitrary_server_counts(n in 1usize..40) {
        let ring = HashRing::new(n, 64);
        let map = ring.shard_map();
        prop_assert_eq!(map[0].start, 0);
        prop_assert_eq!(map.last().unwrap().end, FLOW_SPACE);
        for w in map.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start, "gap or overlap in shard map");
        }
        let shares = ring.shares();
        prop_assert_eq!(shares.len(), n, "every server must own an arc");
        let fair = 1.0 / n as f64;
        for (s, share) in shares {
            prop_assert!(share > 0.0, "server {} owns nothing", s);
            prop_assert!(
                share <= 3.0 * fair,
                "server {} owns {:.4}, more than 3x fair share {:.4}",
                s, share, fair
            );
        }
    }

    /// Adding a server only moves flows TO the new server: any hash
    /// whose owner changes must now map to the newcomer.
    #[test]
    fn adding_a_server_disrupts_minimally(
        n in 1usize..16,
        hashes in proptest::collection::vec(any::<u32>(), 64),
    ) {
        let before = HashRing::new(n, 32);
        let mut after = before.clone();
        let newcomer = after.add_server();
        for h in hashes {
            let (old, new) = (before.server_for(h), after.server_for(h));
            prop_assert!(
                new == old || new == newcomer,
                "hash {:#x} moved {} -> {} instead of to new server {}",
                h, old, new, newcomer
            );
        }
    }

    /// Removing a server only moves the flows it owned: any hash whose
    /// owner changes must have belonged to the removed server.
    #[test]
    fn removing_a_server_disrupts_minimally(
        n in 2usize..16,
        victim_pick in any::<u32>(),
        hashes in proptest::collection::vec(any::<u32>(), 64),
    ) {
        let before = HashRing::new(n, 32);
        let victim = victim_pick % n as u32;
        let mut after = before.clone();
        after.remove_server(victim);
        for h in hashes {
            let (old, new) = (before.server_for(h), after.server_for(h));
            prop_assert_ne!(new, victim, "retired server still owns {:#x}", h);
            prop_assert!(
                new == old || old == victim,
                "hash {:#x} moved {} -> {} without belonging to victim {}",
                h, old, new, victim
            );
        }
    }
}
