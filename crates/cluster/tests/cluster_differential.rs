//! Differential proof obligations for the cluster runtime:
//!
//! 1. An N=1 cluster (shard or segment mode) is *byte-identical* to the
//!    plain single-box [`Deployment`] oracle — same egress bytes, same
//!    packet order, same per-element statistics, same egress counters.
//! 2. At any N, flow-space sharding preserves per-flow packet order and
//!    loses nothing — including under *arbitrary* forced rebalance
//!    schedules (proptested), where state migrates between servers
//!    mid-run.

use std::collections::HashMap;

use nfc_cluster::{ClusterDeployment, ClusterSpec, PlacementMode, RebalanceConfig};
use nfc_core::{Deployment, Policy, Sfc};
use nfc_nf::Nf;
use nfc_packet::traffic::{FlowSpec, PayloadPolicy, SizeDist, TrafficGenerator, TrafficSpec};
use nfc_packet::Batch;
use proptest::prelude::*;

const BATCH: usize = 128;

fn sfc() -> Sfc {
    Sfc::new("dpi-ipsec", vec![Nf::dpi("dpi"), Nf::ipsec("ipsec")])
}

fn traffic(seed: u64) -> TrafficGenerator {
    // Under-capacity (4 Gbps vs a 40 GbE box) so no run ever
    // tail-drops and the loss-free contracts are unconditional.
    TrafficGenerator::new(
        TrafficSpec::udp(SizeDist::Fixed(256))
            .with_rate_gbps(4.0)
            .with_payload(PayloadPolicy::MatchRatio {
                patterns: Nf::default_ids_signatures(),
                ratio: 0.2,
            }),
        seed,
    )
}

fn configure(d: Deployment) -> Deployment {
    d.with_batch_size(BATCH)
}

/// Asserts every per-flow subsequence of the concatenated egress is in
/// strictly increasing sequence order (flows sticky, batches merged).
fn assert_per_flow_order(egress: &[Batch], label: &str) {
    let mut last_seq: HashMap<u32, u64> = HashMap::new();
    for b in egress {
        for p in b.iter() {
            if let Some(&prev) = last_seq.get(&p.meta.flow_hash) {
                assert!(
                    p.meta.seq > prev,
                    "{label}: flow {:#x} reordered (seq {} after {})",
                    p.meta.flow_hash,
                    p.meta.seq,
                    prev
                );
            }
            last_seq.insert(p.meta.flow_hash, p.meta.seq);
        }
    }
}

/// Asserts two egress streams carry the same packets in the same order
/// (payload bytes and sequence numbers). Unlike full [`Batch`] equality
/// this ignores `arrival_ns`, which link hops legitimately shift.
fn assert_same_payloads(a: &[Batch], b: &[Batch], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: egress batch counts differ");
    for (i, (ba, bb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ba.len(), bb.len(), "{label}: batch {i} sizes differ");
        for (pa, pb) in ba.iter().zip(bb.iter()) {
            assert_eq!(pa.meta.seq, pb.meta.seq, "{label}: batch {i} order");
            assert_eq!(pa.data(), pb.data(), "{label}: batch {i} payload");
        }
    }
}

fn assert_matches_oracle(mode: PlacementMode, label: &str) {
    let spec = ClusterSpec::uniform(1).with_mode(mode);
    let mut cluster = ClusterDeployment::build(spec, &sfc(), Policy::nfcompass(), configure);
    let (outcome, egress) = cluster.run_collect(&mut traffic(7), 60);

    let mut oracle = configure(Deployment::new(sfc(), Policy::nfcompass()));
    let (oracle_out, oracle_egress) = oracle.run_collect(&mut traffic(7), 60);

    assert_eq!(
        oracle_out.report.dropped_batches, 0,
        "{label}: oracle dropped"
    );
    assert_eq!(
        outcome.report.dropped_batches, 0,
        "{label}: cluster dropped"
    );
    assert_eq!(
        egress, oracle_egress,
        "{label}: egress must be byte-identical"
    );
    assert_eq!(
        outcome.per_server[0].stage_stats, oracle_out.stage_stats,
        "{label}: per-element statistics must match"
    );
    assert_eq!(outcome.egress_packets, oracle_out.egress_packets, "{label}");
    assert_eq!(outcome.egress_bytes, oracle_out.egress_bytes, "{label}");
    assert_eq!(
        outcome.per_server[0].merge_conflicts, oracle_out.merge_conflicts,
        "{label}"
    );
    assert_eq!(outcome.report.packets, oracle_out.report.packets, "{label}");
    assert_eq!(outcome.report.bytes, oracle_out.report.bytes, "{label}");
}

#[test]
fn n1_shard_cluster_is_byte_identical_to_the_single_box_oracle() {
    assert_matches_oracle(PlacementMode::Shard, "shard");
}

#[test]
fn n1_segment_cluster_is_byte_identical_to_the_single_box_oracle() {
    assert_matches_oracle(PlacementMode::Segment, "segment");
}

#[test]
fn sharded_cluster_preserves_per_flow_order_and_loses_nothing() {
    let n_batches = 40;
    let spec = ClusterSpec::uniform(4);
    let mut cluster = ClusterDeployment::build(spec, &sfc(), Policy::nfcompass(), configure);
    let (outcome, egress) = cluster.run_collect(&mut traffic(11), n_batches);
    assert_eq!(
        outcome.report.dropped_batches, 0,
        "under-capacity run dropped"
    );
    // The dpi+ipsec chain forwards every packet, so zero loss means the
    // cluster egresses exactly what was offered.
    assert_eq!(outcome.egress_packets, (n_batches * BATCH) as u64);
    assert_per_flow_order(&egress, "static 4-server shard");
    // Sanity: the work actually spread — more than one server saw traffic.
    let active = outcome
        .per_server
        .iter()
        .filter(|o| o.egress_packets > 0)
        .count();
    assert!(active > 1, "sharding should engage multiple servers");
}

#[test]
fn segment_cluster_is_byte_identical_at_n2() {
    // Segment mode routes EVERY packet through every segment in chain
    // order, so its functional path is the single box's regardless of N
    // (state included: each NF lives on exactly one server). Only the
    // warm-up draw differs per tenant, so compare two segment runs of
    // different rack shapes batch-for-batch instead of against the
    // single-box oracle: identical chains, identical measured traffic.
    let mk = |n: usize| {
        let spec = ClusterSpec::uniform(n).with_mode(PlacementMode::Segment);
        let mut c = ClusterDeployment::build(spec, &sfc(), Policy::nfcompass(), |d| {
            let mut d = configure(d);
            d.warmup_batches = 0;
            d
        });
        c.run_collect(&mut traffic(13), 40)
    };
    let (out1, egress1) = mk(1);
    let (out2, egress2) = mk(2);
    assert_eq!(out1.report.dropped_batches, 0);
    assert_eq!(out2.report.dropped_batches, 0);
    assert_same_payloads(&egress1, &egress2, "segment egress must not depend on N");
    assert_eq!(out1.egress_packets, out2.egress_packets);
    assert_eq!(out1.egress_bytes, out2.egress_bytes);
    assert_eq!(out2.placement.len(), sfc().len());
}

#[test]
fn live_rebalancing_engages_on_skewed_traffic_and_stays_loss_free() {
    // Zipf-skewed flows pile most packets onto few flow hashes, so some
    // servers run hot; an aggressive controller must actually move
    // shards, migrate state over the links, and still lose nothing.
    let spec = ClusterSpec::uniform(4).with_rebalance(RebalanceConfig {
        epoch_batches: 4,
        imbalance_threshold: 1.05,
        hysteresis_epochs: 1,
        cooldown_epochs: 0,
        vnodes_per_move: 4,
    });
    // NAT carries real per-flow state (its translation tables), so a
    // shard move must actually migrate bytes over the links.
    let stateful = Sfc::new(
        "nat-dpi",
        vec![Nf::nat("nat", [192, 168, 0, 1]), Nf::dpi("dpi")],
    );
    let mut cluster = ClusterDeployment::build(spec, &stateful, Policy::nfcompass(), configure);
    let mut gen = TrafficGenerator::new(
        TrafficSpec::udp(SizeDist::Fixed(256))
            .with_rate_gbps(4.0)
            .with_flows(
                FlowSpec {
                    count: 64,
                    ..FlowSpec::default()
                }
                .with_skew(1.2),
            ),
        3,
    );
    let n_batches = 64;
    let (outcome, egress) = cluster.run_collect(&mut gen, n_batches);
    assert_eq!(
        outcome.report.dropped_batches, 0,
        "rebalancing must be loss-free"
    );
    assert_eq!(outcome.egress_packets, (n_batches * BATCH) as u64);
    assert!(
        outcome.rebalances >= 1,
        "skewed load should trip the controller (got {})",
        outcome.rebalances
    );
    assert!(outcome.migrated_bytes > 0, "moves should migrate state");
    assert_per_flow_order(&egress, "adaptive 4-server shard");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For ANY schedule of forced shard moves — any batch index, any
    /// (from, to) pair, including no-ops and out-of-range servers — the
    /// cluster loses nothing and per-flow order is preserved. The
    /// forced path shares the apply code with the live controller.
    #[test]
    fn any_rebalance_schedule_preserves_order_and_loses_nothing(
        moves in proptest::collection::vec((0usize..30, 0u32..5, 0u32..5), 1..6),
        seed in 1u64..500,
    ) {
        let n_batches = 30;
        let spec = ClusterSpec::uniform(4);
        let mut cluster =
            ClusterDeployment::build(spec, &sfc(), Policy::nfcompass(), configure);
        let (outcome, egress) = cluster.run_with_moves(&mut traffic(seed), n_batches, &moves);
        prop_assert_eq!(outcome.report.dropped_batches, 0);
        prop_assert_eq!(outcome.egress_packets, (n_batches * BATCH) as u64);
        assert_per_flow_order(&egress, &format!("moves {moves:?} seed {seed}"));

        // The static twin of the same rack sees the same packets (same
        // warm-up draw): rebalancing must not change WHAT egresses,
        // only WHERE flows were processed.
        let spec = ClusterSpec::uniform(4);
        let mut static_cluster =
            ClusterDeployment::build(spec, &sfc(), Policy::nfcompass(), configure);
        let (static_out, _) = static_cluster.run_collect(&mut traffic(seed), n_batches);
        prop_assert_eq!(outcome.egress_packets, static_out.egress_packets);
    }
}

/// Cluster deployment with per-flow tracing armed at rate 1 (every
/// flow sampled — the most aggressive differential).
fn traced(d: Deployment) -> Deployment {
    configure(d)
        .with_telemetry(nfc_core::TelemetryMode::Memory)
        .with_flow_trace(1)
}

/// Same telemetry mode, tracing disarmed: the only delta vs [`traced`]
/// is the flow-forensics plane itself.
fn untraced(d: Deployment) -> Deployment {
    configure(d)
        .with_telemetry(nfc_core::TelemetryMode::Memory)
        .without_flow_trace()
}

#[test]
fn forced_migration_of_sampled_flows_stitches_one_contiguous_timeline() {
    // A forced vnode move mid-run migrates sampled flows between
    // servers; the flow plane must record the hand-over as a `migrate`
    // point answered by a same-instant `shard` on the destination's
    // track, with every later dispatch landing on the destination —
    // one contiguous timeline whose hop deltas telescope exactly to
    // the end-to-end latency. (In-flight batches dispatched before the
    // move may still drain on the old owner after the hand-over.)
    let spec = ClusterSpec::uniform(4).with_rebalance(RebalanceConfig {
        epoch_batches: 8,
        imbalance_threshold: f64::INFINITY, // forced moves only
        hysteresis_epochs: 1,
        cooldown_epochs: 0,
        vnodes_per_move: 16,
    });
    let mut cluster = ClusterDeployment::build(spec, &sfc(), Policy::nfcompass(), traced);
    let n_batches = 40;
    let (outcome, _) =
        cluster.run_with_moves(&mut traffic(17), n_batches, &[(12, 0, 1), (24, 2, 3)]);
    assert_eq!(outcome.report.dropped_batches, 0);
    let digest = outcome.telemetry.expect("memory telemetry digest");
    let mut flows: HashMap<u32, Vec<(f64, &'static str, u32)>> = HashMap::new();
    for ev in &digest.trace {
        if let nfc_telemetry::EventKind::FlowPoint {
            flow,
            point,
            server,
            ..
        } = ev.kind
        {
            let at = ev.sim.expect("flow points are sim instants").start_ns;
            flows.entry(flow).or_default().push((at, point, server));
        }
    }
    assert!(!flows.is_empty(), "rate-1 sampling saw no flows");
    let mut migrated_checked = 0;
    for (flow, mut points) in flows {
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Telescoping holds for every sampled flow, migrated or not.
        let e2e = points.last().unwrap().0 - points[0].0;
        let hop_sum: f64 = points.windows(2).map(|w| w[1].0 - w[0].0).sum();
        assert!(
            (hop_sum - e2e).abs() < 1e-9,
            "flow {flow:#010x}: hops {hop_sum} != e2e {e2e}"
        );
        let migrates: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.1 == "migrate")
            .map(|(i, _)| i)
            .collect();
        let [mi] = migrates[..] else { continue };
        let dest = points[mi].2;
        assert!(
            mi > 0,
            "flow {flow:#010x}: a migrate implies an earlier sampled dispatch"
        );
        let (at, point, server) = points[mi + 1];
        assert!(
            point == "shard" && server == dest && (at - points[mi].0).abs() < 1e-9,
            "flow {flow:#010x}: migrate not answered by a same-instant shard on the \
             destination, got {point} on server {server}"
        );
        assert!(
            points[..mi].iter().any(|p| p.2 != dest),
            "flow {flow:#010x} 'migrated' without changing servers"
        );
        assert!(
            points[mi..]
                .iter()
                .filter(|p| p.1 == "shard")
                .all(|p| p.2 == dest),
            "flow {flow:#010x} dispatched off the destination after migrating"
        );
        migrated_checked += 1;
    }
    assert!(
        migrated_checked > 0,
        "forced moves must migrate at least one sampled flow with traffic on both sides"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Differential: for ANY forced-migration schedule and seed, the
    /// cluster's egress (payloads, counters, rebalance accounting) is
    /// bit-identical with flow tracing armed at rate 1 and disarmed —
    /// forensics is purely observational even across migrations.
    #[test]
    fn flow_tracing_on_off_is_bit_identical_under_any_migration_schedule(
        moves in proptest::collection::vec((0usize..30, 0u32..4, 0u32..4), 1..4),
        seed in 1u64..200,
    ) {
        let run = |armed: bool| {
            let cfg: fn(Deployment) -> Deployment = if armed { traced } else { untraced };
            let spec = ClusterSpec::uniform(3);
            let mut cluster = ClusterDeployment::build(spec, &sfc(), Policy::nfcompass(), cfg);
            cluster.run_with_moves(&mut traffic(seed), 30, &moves)
        };
        let (out_on, egress_on) = run(true);
        let (out_off, egress_off) = run(false);
        prop_assert_eq!(egress_on, egress_off, "tracing must not touch egress");
        prop_assert_eq!(out_on.egress_packets, out_off.egress_packets);
        prop_assert_eq!(out_on.egress_bytes, out_off.egress_bytes);
        prop_assert_eq!(out_on.rebalances, out_off.rebalances);
        prop_assert_eq!(out_on.migrated_bytes, out_off.migrated_bytes);
        prop_assert_eq!(out_on.shard_map, out_off.shard_map);
    }
}
