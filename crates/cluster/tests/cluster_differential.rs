//! Differential proof obligations for the cluster runtime:
//!
//! 1. An N=1 cluster (shard or segment mode) is *byte-identical* to the
//!    plain single-box [`Deployment`] oracle — same egress bytes, same
//!    packet order, same per-element statistics, same egress counters.
//! 2. At any N, flow-space sharding preserves per-flow packet order and
//!    loses nothing — including under *arbitrary* forced rebalance
//!    schedules (proptested), where state migrates between servers
//!    mid-run.

use std::collections::HashMap;

use nfc_cluster::{ClusterDeployment, ClusterSpec, PlacementMode, RebalanceConfig};
use nfc_core::{Deployment, Policy, Sfc};
use nfc_nf::Nf;
use nfc_packet::traffic::{FlowSpec, PayloadPolicy, SizeDist, TrafficGenerator, TrafficSpec};
use nfc_packet::Batch;
use proptest::prelude::*;

const BATCH: usize = 128;

fn sfc() -> Sfc {
    Sfc::new("dpi-ipsec", vec![Nf::dpi("dpi"), Nf::ipsec("ipsec")])
}

fn traffic(seed: u64) -> TrafficGenerator {
    // Under-capacity (4 Gbps vs a 40 GbE box) so no run ever
    // tail-drops and the loss-free contracts are unconditional.
    TrafficGenerator::new(
        TrafficSpec::udp(SizeDist::Fixed(256))
            .with_rate_gbps(4.0)
            .with_payload(PayloadPolicy::MatchRatio {
                patterns: Nf::default_ids_signatures(),
                ratio: 0.2,
            }),
        seed,
    )
}

fn configure(d: Deployment) -> Deployment {
    d.with_batch_size(BATCH)
}

/// Asserts every per-flow subsequence of the concatenated egress is in
/// strictly increasing sequence order (flows sticky, batches merged).
fn assert_per_flow_order(egress: &[Batch], label: &str) {
    let mut last_seq: HashMap<u32, u64> = HashMap::new();
    for b in egress {
        for p in b.iter() {
            if let Some(&prev) = last_seq.get(&p.meta.flow_hash) {
                assert!(
                    p.meta.seq > prev,
                    "{label}: flow {:#x} reordered (seq {} after {})",
                    p.meta.flow_hash,
                    p.meta.seq,
                    prev
                );
            }
            last_seq.insert(p.meta.flow_hash, p.meta.seq);
        }
    }
}

/// Asserts two egress streams carry the same packets in the same order
/// (payload bytes and sequence numbers). Unlike full [`Batch`] equality
/// this ignores `arrival_ns`, which link hops legitimately shift.
fn assert_same_payloads(a: &[Batch], b: &[Batch], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: egress batch counts differ");
    for (i, (ba, bb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ba.len(), bb.len(), "{label}: batch {i} sizes differ");
        for (pa, pb) in ba.iter().zip(bb.iter()) {
            assert_eq!(pa.meta.seq, pb.meta.seq, "{label}: batch {i} order");
            assert_eq!(pa.data(), pb.data(), "{label}: batch {i} payload");
        }
    }
}

fn assert_matches_oracle(mode: PlacementMode, label: &str) {
    let spec = ClusterSpec::uniform(1).with_mode(mode);
    let mut cluster = ClusterDeployment::build(spec, &sfc(), Policy::nfcompass(), configure);
    let (outcome, egress) = cluster.run_collect(&mut traffic(7), 60);

    let mut oracle = configure(Deployment::new(sfc(), Policy::nfcompass()));
    let (oracle_out, oracle_egress) = oracle.run_collect(&mut traffic(7), 60);

    assert_eq!(
        oracle_out.report.dropped_batches, 0,
        "{label}: oracle dropped"
    );
    assert_eq!(
        outcome.report.dropped_batches, 0,
        "{label}: cluster dropped"
    );
    assert_eq!(
        egress, oracle_egress,
        "{label}: egress must be byte-identical"
    );
    assert_eq!(
        outcome.per_server[0].stage_stats, oracle_out.stage_stats,
        "{label}: per-element statistics must match"
    );
    assert_eq!(outcome.egress_packets, oracle_out.egress_packets, "{label}");
    assert_eq!(outcome.egress_bytes, oracle_out.egress_bytes, "{label}");
    assert_eq!(
        outcome.per_server[0].merge_conflicts, oracle_out.merge_conflicts,
        "{label}"
    );
    assert_eq!(outcome.report.packets, oracle_out.report.packets, "{label}");
    assert_eq!(outcome.report.bytes, oracle_out.report.bytes, "{label}");
}

#[test]
fn n1_shard_cluster_is_byte_identical_to_the_single_box_oracle() {
    assert_matches_oracle(PlacementMode::Shard, "shard");
}

#[test]
fn n1_segment_cluster_is_byte_identical_to_the_single_box_oracle() {
    assert_matches_oracle(PlacementMode::Segment, "segment");
}

#[test]
fn sharded_cluster_preserves_per_flow_order_and_loses_nothing() {
    let n_batches = 40;
    let spec = ClusterSpec::uniform(4);
    let mut cluster = ClusterDeployment::build(spec, &sfc(), Policy::nfcompass(), configure);
    let (outcome, egress) = cluster.run_collect(&mut traffic(11), n_batches);
    assert_eq!(
        outcome.report.dropped_batches, 0,
        "under-capacity run dropped"
    );
    // The dpi+ipsec chain forwards every packet, so zero loss means the
    // cluster egresses exactly what was offered.
    assert_eq!(outcome.egress_packets, (n_batches * BATCH) as u64);
    assert_per_flow_order(&egress, "static 4-server shard");
    // Sanity: the work actually spread — more than one server saw traffic.
    let active = outcome
        .per_server
        .iter()
        .filter(|o| o.egress_packets > 0)
        .count();
    assert!(active > 1, "sharding should engage multiple servers");
}

#[test]
fn segment_cluster_is_byte_identical_at_n2() {
    // Segment mode routes EVERY packet through every segment in chain
    // order, so its functional path is the single box's regardless of N
    // (state included: each NF lives on exactly one server). Only the
    // warm-up draw differs per tenant, so compare two segment runs of
    // different rack shapes batch-for-batch instead of against the
    // single-box oracle: identical chains, identical measured traffic.
    let mk = |n: usize| {
        let spec = ClusterSpec::uniform(n).with_mode(PlacementMode::Segment);
        let mut c = ClusterDeployment::build(spec, &sfc(), Policy::nfcompass(), |d| {
            let mut d = configure(d);
            d.warmup_batches = 0;
            d
        });
        c.run_collect(&mut traffic(13), 40)
    };
    let (out1, egress1) = mk(1);
    let (out2, egress2) = mk(2);
    assert_eq!(out1.report.dropped_batches, 0);
    assert_eq!(out2.report.dropped_batches, 0);
    assert_same_payloads(&egress1, &egress2, "segment egress must not depend on N");
    assert_eq!(out1.egress_packets, out2.egress_packets);
    assert_eq!(out1.egress_bytes, out2.egress_bytes);
    assert_eq!(out2.placement.len(), sfc().len());
}

#[test]
fn live_rebalancing_engages_on_skewed_traffic_and_stays_loss_free() {
    // Zipf-skewed flows pile most packets onto few flow hashes, so some
    // servers run hot; an aggressive controller must actually move
    // shards, migrate state over the links, and still lose nothing.
    let spec = ClusterSpec::uniform(4).with_rebalance(RebalanceConfig {
        epoch_batches: 4,
        imbalance_threshold: 1.05,
        hysteresis_epochs: 1,
        cooldown_epochs: 0,
        vnodes_per_move: 4,
    });
    // NAT carries real per-flow state (its translation tables), so a
    // shard move must actually migrate bytes over the links.
    let stateful = Sfc::new(
        "nat-dpi",
        vec![Nf::nat("nat", [192, 168, 0, 1]), Nf::dpi("dpi")],
    );
    let mut cluster = ClusterDeployment::build(spec, &stateful, Policy::nfcompass(), configure);
    let mut gen = TrafficGenerator::new(
        TrafficSpec::udp(SizeDist::Fixed(256))
            .with_rate_gbps(4.0)
            .with_flows(
                FlowSpec {
                    count: 64,
                    ..FlowSpec::default()
                }
                .with_skew(1.2),
            ),
        3,
    );
    let n_batches = 64;
    let (outcome, egress) = cluster.run_collect(&mut gen, n_batches);
    assert_eq!(
        outcome.report.dropped_batches, 0,
        "rebalancing must be loss-free"
    );
    assert_eq!(outcome.egress_packets, (n_batches * BATCH) as u64);
    assert!(
        outcome.rebalances >= 1,
        "skewed load should trip the controller (got {})",
        outcome.rebalances
    );
    assert!(outcome.migrated_bytes > 0, "moves should migrate state");
    assert_per_flow_order(&egress, "adaptive 4-server shard");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For ANY schedule of forced shard moves — any batch index, any
    /// (from, to) pair, including no-ops and out-of-range servers — the
    /// cluster loses nothing and per-flow order is preserved. The
    /// forced path shares the apply code with the live controller.
    #[test]
    fn any_rebalance_schedule_preserves_order_and_loses_nothing(
        moves in proptest::collection::vec((0usize..30, 0u32..5, 0u32..5), 1..6),
        seed in 1u64..500,
    ) {
        let n_batches = 30;
        let spec = ClusterSpec::uniform(4);
        let mut cluster =
            ClusterDeployment::build(spec, &sfc(), Policy::nfcompass(), configure);
        let (outcome, egress) = cluster.run_with_moves(&mut traffic(seed), n_batches, &moves);
        prop_assert_eq!(outcome.report.dropped_batches, 0);
        prop_assert_eq!(outcome.egress_packets, (n_batches * BATCH) as u64);
        assert_per_flow_order(&egress, &format!("moves {moves:?} seed {seed}"));

        // The static twin of the same rack sees the same packets (same
        // warm-up draw): rebalancing must not change WHAT egresses,
        // only WHERE flows were processed.
        let spec = ClusterSpec::uniform(4);
        let mut static_cluster =
            ClusterDeployment::build(spec, &sfc(), Policy::nfcompass(), configure);
        let (static_out, _) = static_cluster.run_collect(&mut traffic(seed), n_batches);
        prop_assert_eq!(outcome.egress_packets, static_out.egress_packets);
    }
}
