//! Cluster-level shard rebalancing: per-server workload signatures roll
//! up to one controller that moves ring vnodes from the hottest server
//! to the coldest.
//!
//! The detector mirrors the single-box adaptive controller's shape —
//! threshold, hysteresis, cooldown — but watches a *cluster* quantity:
//! the ratio of the hottest server's windowed load to the cluster mean.
//! Acting on it is loss-free by construction: shard moves happen between
//! batches (never with a batch in flight), state migration is charged on
//! the simulated timeline over the inter-server links, and both ends'
//! flow-cache generations are bumped so no stale verdict survives the
//! ownership change.

/// Configuration for the cluster rebalancer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// Cluster batches per observation epoch (min 1).
    pub epoch_batches: usize,
    /// Trigger when `max_load / mean_load` exceeds this (e.g. `1.25`).
    pub imbalance_threshold: f64,
    /// Consecutive breached epochs required before acting.
    pub hysteresis_epochs: usize,
    /// Epochs to hold after a move before acting again.
    pub cooldown_epochs: usize,
    /// Ring vnodes shed per move.
    pub vnodes_per_move: usize,
}

impl RebalanceConfig {
    /// Live rebalancing with rack defaults: 16-batch epochs, trip at
    /// 25 % above mean for 2 consecutive epochs, 2-epoch cooldown, one
    /// vnode per move.
    pub fn default_rack() -> Self {
        RebalanceConfig {
            epoch_batches: 16,
            imbalance_threshold: 1.25,
            hysteresis_epochs: 2,
            cooldown_epochs: 2,
            vnodes_per_move: 1,
        }
    }

    /// Observation only: epochs tick and loads are rolled up, but no
    /// move is ever suggested (the static-map baseline and the N=1
    /// differential oracle).
    pub fn disabled() -> Self {
        RebalanceConfig {
            imbalance_threshold: f64::INFINITY,
            ..RebalanceConfig::default_rack()
        }
    }

    /// True when the threshold can ever trip.
    pub fn is_enabled(&self) -> bool {
        self.imbalance_threshold.is_finite()
    }
}

/// A suggested shard move: shed vnodes from `from` to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMove {
    /// Hottest server (sheds vnodes).
    pub from: u32,
    /// Coldest server (receives them).
    pub to: u32,
}

/// Rolls per-server epoch loads into rebalance decisions.
#[derive(Debug, Clone)]
pub struct ClusterController {
    cfg: RebalanceConfig,
    epoch: u64,
    breach_streak: usize,
    cooldown: usize,
    moves: u64,
}

impl ClusterController {
    /// Controller with the given configuration.
    pub fn new(cfg: RebalanceConfig) -> Self {
        ClusterController {
            cfg,
            epoch: 0,
            breach_streak: 0,
            cooldown: 0,
            moves: 0,
        }
    }

    /// Epochs observed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Moves suggested so far.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Closes one epoch with per-server windowed loads (any monotone
    /// busy-time proxy; the cluster runtime feeds signature busy-ns).
    /// Returns a move when the imbalance has persisted past hysteresis
    /// and the cooldown has expired.
    pub fn observe(&mut self, loads: &[f64]) -> Option<ShardMove> {
        self.epoch += 1;
        if loads.len() < 2 || !self.cfg.is_enabled() {
            return None;
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return None;
        }
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        if mean <= 0.0 || mean.is_nan() {
            self.breach_streak = 0;
            return None;
        }
        let (hot, hot_load) =
            loads
                .iter()
                .copied()
                .enumerate()
                .fold(
                    (0, f64::MIN),
                    |acc, (i, l)| if l > acc.1 { (i, l) } else { acc },
                );
        let (cold, _) = loads
            .iter()
            .copied()
            .enumerate()
            .fold(
                (0, f64::MAX),
                |acc, (i, l)| if l < acc.1 { (i, l) } else { acc },
            );
        if hot_load / mean <= self.cfg.imbalance_threshold || hot == cold {
            self.breach_streak = 0;
            return None;
        }
        self.breach_streak += 1;
        if self.breach_streak < self.cfg.hysteresis_epochs.max(1) {
            return None;
        }
        self.breach_streak = 0;
        self.cooldown = self.cfg.cooldown_epochs;
        self.moves += 1;
        Some(ShardMove {
            from: hot as u32,
            to: cold as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RebalanceConfig {
        RebalanceConfig {
            epoch_batches: 4,
            imbalance_threshold: 1.25,
            hysteresis_epochs: 2,
            cooldown_epochs: 2,
            vnodes_per_move: 1,
        }
    }

    #[test]
    fn trips_only_after_hysteresis() {
        let mut c = ClusterController::new(cfg());
        let skew = [10.0, 1.0, 1.0, 1.0];
        assert_eq!(c.observe(&skew), None, "first breach arms only");
        assert_eq!(
            c.observe(&skew),
            Some(ShardMove { from: 0, to: 1 }),
            "second consecutive breach acts"
        );
    }

    #[test]
    fn balanced_load_resets_the_streak() {
        let mut c = ClusterController::new(cfg());
        let skew = [10.0, 1.0];
        let even = [5.0, 5.0];
        assert_eq!(c.observe(&skew), None);
        assert_eq!(c.observe(&even), None, "breach streak reset");
        assert_eq!(c.observe(&skew), None, "needs two consecutive again");
    }

    #[test]
    fn cooldown_suppresses_back_to_back_moves() {
        let mut c = ClusterController::new(cfg());
        let skew = [10.0, 1.0, 1.0];
        c.observe(&skew);
        assert!(c.observe(&skew).is_some());
        assert_eq!(c.observe(&skew), None, "cooling");
        assert_eq!(c.observe(&skew), None, "cooling");
        c.observe(&skew); // re-arm
        assert!(c.observe(&skew).is_some(), "acts again after cooldown");
        assert_eq!(c.moves(), 2);
    }

    #[test]
    fn disabled_and_degenerate_inputs_never_trip() {
        let mut c = ClusterController::new(RebalanceConfig::disabled());
        for _ in 0..10 {
            assert_eq!(c.observe(&[100.0, 1.0]), None);
        }
        let mut c = ClusterController::new(cfg());
        assert_eq!(c.observe(&[5.0]), None, "one server cannot rebalance");
        assert_eq!(c.observe(&[0.0, 0.0]), None, "idle cluster holds");
    }
}
