//! Weighted consistent-hash ring over the 32-bit flow-hash space.
//!
//! Flow-space sharding must keep stateful NFs (NAT, LB, flow caches)
//! *sticky*: every packet of a flow lands on the server holding that
//! flow's state. A consistent-hash ring gives that plus two properties
//! the cluster controller depends on:
//!
//! * **balance** — with enough virtual nodes per server, each server
//!   owns a near-equal share of the hash space (proptested for
//!   arbitrary server counts);
//! * **minimal disruption** — adding or removing a server only moves
//!   the flows whose arcs that server's vnodes gain or lose; every
//!   other flow keeps its owner (proptested on resize).
//!
//! Ownership is *predecessor* based: the owner of hash `h` is the vnode
//! with the largest position `<= h`, wrapping past zero — so the ring
//! tiles `[0, 2^32)` into half-open `[start, end)` arcs, the exact shape
//! `nfc-trace validate` checks shard maps against.

/// Total size of the flow-hash space (`2^32`; hashes are `u32`).
pub const FLOW_SPACE: u64 = 1 << 32;

/// One contiguous arc of the flow-hash space: `[start, end)` owned by
/// `server`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// Inclusive arc start.
    pub start: u64,
    /// Exclusive arc end (`<= 2^32`).
    pub end: u64,
    /// Owning server index.
    pub server: u32,
}

/// A virtual node: a deterministic position on the ring plus its owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct VNode {
    pos: u32,
    server: u32,
    replica: u32,
}

/// Consistent-hash ring sharding the `u32` flow-hash space across
/// cluster servers.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Vnodes sorted by `(pos, server, replica)`; never empty.
    vnodes: Vec<VNode>,
    /// Replicas per server at construction/add time.
    vnodes_per_server: u32,
    /// Servers ever added (ids are stable; removed ids are retired).
    next_server: u32,
}

/// 64-bit finalizer (splitmix64 tail): decorrelates the structured
/// `(server, replica)` input into a ring position.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^= x >> 31;
    x
}

fn vnode_pos(server: u32, replica: u32) -> u32 {
    (mix64(((u64::from(server)) << 32) | u64::from(replica)) >> 32) as u32
}

impl HashRing {
    /// Ring with `servers` servers, each holding `vnodes_per_server`
    /// virtual nodes (min 1 each).
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(servers: usize, vnodes_per_server: usize) -> Self {
        assert!(servers > 0, "a ring needs at least one server");
        let mut ring = HashRing {
            vnodes: Vec::new(),
            vnodes_per_server: vnodes_per_server.max(1) as u32,
            next_server: 0,
        };
        for _ in 0..servers {
            ring.add_server();
        }
        ring
    }

    /// Servers currently owning at least the chance of an arc (distinct
    /// ids with live vnodes).
    pub fn server_count(&self) -> usize {
        let mut ids: Vec<u32> = self.vnodes.iter().map(|v| v.server).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Adds a server, returning its stable id.
    pub fn add_server(&mut self) -> u32 {
        let id = self.next_server;
        self.next_server += 1;
        for replica in 0..self.vnodes_per_server {
            self.vnodes.push(VNode {
                pos: vnode_pos(id, replica),
                server: id,
                replica,
            });
        }
        self.vnodes
            .sort_unstable_by_key(|v| (v.pos, v.server, v.replica));
        id
    }

    /// Retires `server`, dropping its vnodes. Its arcs fall to the ring
    /// predecessors; nothing else moves.
    ///
    /// # Panics
    ///
    /// Panics when removing the last server.
    pub fn remove_server(&mut self, server: u32) {
        self.vnodes.retain(|v| v.server != server);
        assert!(!self.vnodes.is_empty(), "cannot remove the last server");
    }

    /// Owner of flow hash `h`: the vnode with the largest position
    /// `<= h`, wrapping past zero.
    pub fn server_for(&self, h: u32) -> u32 {
        // partition_point gives the count of vnodes with pos <= h; its
        // predecessor is the owner, wrapping to the last vnode.
        let idx = self.vnodes.partition_point(|v| v.pos <= h);
        let owner = if idx == 0 { self.vnodes.len() } else { idx } - 1;
        self.vnodes[owner].server
    }

    /// Moves up to `count` vnodes from `from` to `to`, preferring the
    /// widest arcs (the deterministic "shed the hottest span" choice).
    /// Returns `(vnodes moved, hash-space span moved)` — `(0, 0)` when
    /// `from` has nothing to give.
    pub fn move_vnodes(&mut self, from: u32, to: u32, count: usize) -> (usize, u64) {
        if from == to || count == 0 {
            return (0, 0);
        }
        // Never strip a server bare: stickiness requires every live
        // server keep at least one vnode.
        let owned: Vec<usize> = (0..self.vnodes.len())
            .filter(|&i| self.vnodes[i].server == from)
            .collect();
        if owned.len() <= 1 {
            return (0, 0);
        }
        let mut by_width: Vec<(u64, usize)> =
            owned.iter().map(|&i| (self.arc_width(i), i)).collect();
        by_width.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let n = count.min(owned.len() - 1);
        let mut moved = 0u64;
        for &(width, i) in by_width.iter().take(n) {
            self.vnodes[i].server = to;
            moved += width;
        }
        // Re-sort: ownership changed but positions did not, so order is
        // stable; keep the (pos, server, replica) invariant anyway.
        self.vnodes
            .sort_unstable_by_key(|v| (v.pos, v.server, v.replica));
        (n, moved)
    }

    /// Width of the arc `[vnodes[i].pos, successor.pos)`, wrapping.
    fn arc_width(&self, i: usize) -> u64 {
        let pos = u64::from(self.vnodes[i].pos);
        let next = u64::from(self.vnodes[(i + 1) % self.vnodes.len()].pos);
        if self.vnodes.len() == 1 {
            FLOW_SPACE
        } else if next > pos {
            next - pos
        } else {
            FLOW_SPACE - pos + next
        }
    }

    /// The shard map in effect: half-open arcs tiling `[0, 2^32)`
    /// exactly, in ascending `start` order. Zero-width arcs (vnodes
    /// sharing a position) are omitted.
    pub fn shard_map(&self) -> Vec<ShardRange> {
        let mut map = Vec::with_capacity(self.vnodes.len() + 1);
        // The span before the first vnode wraps: it belongs to the last
        // vnode (the predecessor of hash 0 going backwards).
        let first = u64::from(self.vnodes[0].pos);
        if first > 0 {
            map.push(ShardRange {
                start: 0,
                end: first,
                server: self.vnodes[self.vnodes.len() - 1].server,
            });
        }
        for (i, v) in self.vnodes.iter().enumerate() {
            let start = u64::from(v.pos);
            let end = if i + 1 < self.vnodes.len() {
                u64::from(self.vnodes[i + 1].pos)
            } else {
                FLOW_SPACE
            };
            if end > start {
                map.push(ShardRange {
                    start,
                    end,
                    server: v.server,
                });
            }
        }
        map
    }

    /// Share of the hash space each *live* server owns, as
    /// `(server, fraction)` pairs in ascending server order.
    pub fn shares(&self) -> Vec<(u32, f64)> {
        let mut acc: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        for r in self.shard_map() {
            *acc.entry(r.server).or_insert(0) += r.end - r.start;
        }
        acc.into_iter()
            .map(|(s, w)| (s, w as f64 / FLOW_SPACE as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_tiles_the_flow_space_exactly() {
        for n in [1, 2, 3, 8, 17] {
            let ring = HashRing::new(n, 64);
            let map = ring.shard_map();
            assert_eq!(map[0].start, 0);
            assert_eq!(map.last().unwrap().end, FLOW_SPACE);
            for w in map.windows(2) {
                assert_eq!(w[0].end, w[1].start, "gap or overlap at {w:?}");
            }
        }
    }

    #[test]
    fn server_for_agrees_with_the_shard_map() {
        let ring = HashRing::new(5, 16);
        for r in ring.shard_map() {
            for h in [r.start, (r.start + r.end - 1) / 2, r.end - 1] {
                assert_eq!(ring.server_for(h as u32), r.server, "hash {h} inside {r:?}");
            }
        }
    }

    #[test]
    fn single_server_owns_everything() {
        let ring = HashRing::new(1, 8);
        assert_eq!(ring.shares(), vec![(0, 1.0)]);
        assert_eq!(ring.server_for(0), 0);
        assert_eq!(ring.server_for(u32::MAX), 0);
    }

    #[test]
    fn move_vnodes_shifts_span_between_servers() {
        let mut ring = HashRing::new(2, 32);
        let before: std::collections::BTreeMap<u32, f64> = ring.shares().into_iter().collect();
        let (n, moved) = ring.move_vnodes(0, 1, 4);
        assert_eq!(n, 4);
        assert!(moved > 0);
        let after: std::collections::BTreeMap<u32, f64> = ring.shares().into_iter().collect();
        let delta = moved as f64 / FLOW_SPACE as f64;
        assert!((after[&1] - before[&1] - delta).abs() < 1e-12);
        assert!((before[&0] - after[&0] - delta).abs() < 1e-12);
    }

    #[test]
    fn move_never_strips_a_server_bare() {
        let mut ring = HashRing::new(2, 3);
        // Ask for more vnodes than server 0 can give up.
        ring.move_vnodes(0, 1, 99);
        assert_eq!(ring.server_count(), 2, "server 0 must keep one vnode");
    }

    #[test]
    fn noop_moves_move_nothing() {
        let mut ring = HashRing::new(3, 8);
        assert_eq!(ring.move_vnodes(1, 1, 4), (0, 0));
        assert_eq!(ring.move_vnodes(0, 2, 0), (0, 0));
    }
}
