//! # nfc-cluster — one SFC across a simulated rack
//!
//! Promotes the single-box runtime to a *cluster*: N heterogeneous
//! servers (each a full [`nfc_hetero::PlatformConfig`] with its own CPU
//! cores, GPUs and PCIe links) joined by an inter-server link model
//! ([`nfc_hetero::LinkSpec`]) whose bandwidth, latency and
//! serialization are charged on the same simulated timeline as
//! everything else.
//!
//! The crate answers three questions:
//!
//! * **Where does the chain run?** [`place_chain`] min-cuts the SFC
//!   across servers (via `nfc-graphpart`'s max-flow solver) in
//!   [`PlacementMode::Segment`], or replicates it everywhere in
//!   [`PlacementMode::Shard`].
//! * **Which server owns which flow?** A consistent-hash [`HashRing`]
//!   shards the 32-bit flow-hash space so stateful NFs stay sticky:
//!   every packet of a flow lands on the server holding its state.
//! * **What happens when load skews?** Per-server
//!   `WorkloadSignature`s roll up to a [`ClusterController`] that sheds
//!   ring vnodes from the hottest server to the coldest through a
//!   loss-free two-phase swap — state migration charged over the links,
//!   flow-cache generations bumped on both ends, ownership flipped
//!   strictly between batches.
//!
//! Correctness is anchored by two differential obligations (see
//! `tests/`): an N=1 cluster is byte-identical to the plain
//! [`nfc_core::Deployment`] oracle, and at any N per-flow packet order
//! is preserved across arbitrary rebalance schedules with zero loss.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod deploy;
pub mod place;
pub mod ring;

pub use balance::{ClusterController, RebalanceConfig, ShardMove};
pub use deploy::{ClusterDeployment, ClusterOutcome, ClusterSpec};
pub use place::{place_chain, NfWeight, PlacementMode};
pub use ring::{HashRing, ShardRange, FLOW_SPACE};
