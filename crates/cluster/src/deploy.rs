//! The rack runtime: one SFC deployed across N simulated heterogeneous
//! servers, joined by an inter-server link model.
//!
//! Execution keeps the repo's two-layer discipline intact across the
//! rack. *Functionally*, every packet still traverses real element
//! graphs — on whichever server owns it — and cluster egress is
//! re-merged in packet-sequence order, so per-flow order is preserved
//! by construction. *Temporally*, every machine's CPU cores, GPU
//! queues and PCIe links register with ONE shared [`PipelineSim`], and
//! shard hand-offs, chain-segment hops and state migrations are
//! charged on per-server link resources exactly like DMA is charged on
//! `pcie-h2d` inside a box.
//!
//! Two proof obligations anchor the design (tested in
//! `tests/cluster_differential.rs`):
//!
//! 1. **N=1 oracle identity** — a one-server cluster takes the
//!    single-`Deployment` code path exactly (no split, no merge, no
//!    link charges, no arrival shifts), so egress bytes, packet order
//!    and per-element statistics are byte-identical to
//!    [`Deployment::run_collect`].
//! 2. **Order preservation at any N** — flows are sticky to shards
//!    (one server per flow hash), each sub-batch preserves its packets'
//!    relative order, and [`Batch::merge_ordered`] restores the global
//!    sequence; rebalances happen strictly between batches, so no shift
//!    schedule can reorder or lose a flow's packets.

use nfc_core::{BatchResult, Deployment, PlatformResources, Policy, PreparedSfc, RunOutcome, Sfc};
use nfc_hetero::sim::StatsAccumulator;
use nfc_hetero::{CostModel, LinkSpec, PipelineSim, PlatformConfig, ResourceId, SimReport};
use nfc_packet::traffic::TrafficGenerator;
use nfc_packet::Batch;
use nfc_telemetry::{EventKind, Telemetry, TelemetrySummary};

use crate::balance::{ClusterController, RebalanceConfig};
use crate::place::{place_chain, NfWeight, PlacementMode};
use crate::ring::{HashRing, ShardRange, FLOW_SPACE};

/// MTU used to convert migrated state bytes into link packets.
const MIGRATION_MTU: usize = 1500;

/// A simulated rack: per-server platforms plus the link joining them.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// One platform description per server (heterogeneity welcome).
    pub servers: Vec<PlatformConfig>,
    /// Inter-server link model, charged on the simulated timeline.
    pub link: LinkSpec,
    /// Virtual ring nodes per server (shard granularity).
    pub vnodes_per_server: usize,
    /// How the chain maps onto the rack.
    pub mode: PlacementMode,
    /// Live shard rebalancing policy (disabled = static map).
    pub rebalance: RebalanceConfig,
}

impl ClusterSpec {
    /// `n` identical Table-I servers on a 40 GbE rack link, 64 vnodes
    /// each, shard placement, static map.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "a cluster needs at least one server");
        ClusterSpec {
            servers: vec![PlatformConfig::hpca18(); n],
            link: LinkSpec::rack_40g(),
            vnodes_per_server: 64,
            mode: PlacementMode::Shard,
            rebalance: RebalanceConfig::disabled(),
        }
    }

    /// Replaces the inter-server link model.
    pub fn with_link(mut self, link: LinkSpec) -> Self {
        self.link = link;
        self
    }

    /// Appends a (possibly different) server platform.
    pub fn with_server(mut self, platform: PlatformConfig) -> Self {
        self.servers.push(platform);
        self
    }

    /// Sets the shard granularity (vnodes per server).
    pub fn with_vnodes(mut self, vnodes: usize) -> Self {
        self.vnodes_per_server = vnodes.max(1);
        self
    }

    /// Selects the placement mode.
    pub fn with_mode(mut self, mode: PlacementMode) -> Self {
        self.mode = mode;
        self
    }

    /// Arms (or re-tunes) live shard rebalancing.
    pub fn with_rebalance(mut self, cfg: RebalanceConfig) -> Self {
        self.rebalance = cfg;
        self
    }

    /// Servers in the rack.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// True when the rack has no servers (an unusable spec).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }
}

/// Outcome of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Aggregate temporal report (cluster-level completions: a batch
    /// completes when its slowest shard clears the egress link).
    pub report: SimReport,
    /// Per-server outcomes (per-segment in [`PlacementMode::Segment`]),
    /// each with its own temporal report and per-element statistics.
    pub per_server: Vec<RunOutcome>,
    /// Packets that left the cluster.
    pub egress_packets: u64,
    /// Wire bytes that left the cluster.
    pub egress_bytes: u64,
    /// Shard moves the controller (or a forced schedule) applied.
    pub rebalances: u64,
    /// Stateful-NF bytes migrated over the links by those moves.
    pub migrated_bytes: u64,
    /// NF index → server assignment ([`PlacementMode::Segment`]; empty
    /// in shard mode, where every server runs the full chain).
    pub placement: Vec<usize>,
    /// Final shard map (empty in segment mode).
    pub shard_map: Vec<ShardRange>,
    /// End-of-run telemetry digest (`None` when telemetry is off).
    pub telemetry: Option<TelemetrySummary>,
}

/// Per-server link endpoints registered with the shared simulator.
struct ServerLinks {
    rx: ResourceId,
    tx: ResourceId,
}

/// One SFC deployed across a [`ClusterSpec`] rack.
pub struct ClusterDeployment {
    spec: ClusterSpec,
    /// One deployment per server (shard) or per chain segment (segment).
    tenants: Vec<Deployment>,
    /// Server hosting each tenant (identity in shard mode).
    tenant_servers: Vec<usize>,
    /// NF → server assignment (segment mode; empty in shard mode).
    placement: Vec<usize>,
}

impl ClusterDeployment {
    /// Deploys `sfc` under `policy` across the rack. `configure` is
    /// applied to every per-server [`Deployment`] (batch size, packer,
    /// telemetry, …) so the N=1 differential can build the cluster and
    /// its oracle from the same closure.
    ///
    /// In [`PlacementMode::Segment`] the chain is first min-cut into
    /// contiguous per-server segments ([`place_chain`]) using per-NF
    /// element counts as compute weights and core-capacity as the
    /// balance bias; each segment becomes its own sub-chain deployment.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no servers.
    pub fn build(
        spec: ClusterSpec,
        sfc: &Sfc,
        policy: Policy,
        configure: impl Fn(Deployment) -> Deployment,
    ) -> Self {
        assert!(!spec.is_empty(), "a cluster needs at least one server");
        match spec.mode {
            PlacementMode::Shard => {
                let tenants: Vec<Deployment> = spec
                    .servers
                    .iter()
                    .map(|p| {
                        configure(Deployment::with_model(
                            sfc.clone(),
                            policy,
                            CostModel::new(*p),
                        ))
                    })
                    .collect();
                let tenant_servers = (0..tenants.len()).collect();
                ClusterDeployment {
                    spec,
                    tenants,
                    tenant_servers,
                    placement: Vec::new(),
                }
            }
            PlacementMode::Segment => {
                let weights: Vec<NfWeight> = sfc
                    .nfs()
                    .iter()
                    .map(|nf| NfWeight {
                        compute: nf.graph().node_count() as f64,
                        edge_bytes: MIGRATION_MTU as f64,
                    })
                    .collect();
                let capacities: Vec<f64> = spec
                    .servers
                    .iter()
                    .map(|p| (p.cpu.sockets * p.cpu.cores_per_socket) as f64 * p.cpu.freq_ghz)
                    .collect();
                let placement = place_chain(&weights, spec.len(), &capacities, &spec.link);
                // Group the (contiguous, monotone) assignment into
                // per-server sub-chains.
                let mut tenants = Vec::new();
                let mut tenant_servers = Vec::new();
                let mut start = 0usize;
                while start < placement.len() {
                    let server = placement[start];
                    let end = placement[start..]
                        .iter()
                        .position(|&s| s != server)
                        .map(|off| start + off)
                        .unwrap_or(placement.len());
                    let seg_nfs = sfc.nfs()[start..end].to_vec();
                    let seg_sfc = Sfc::new(format!("{}-seg{}", sfc.name(), tenants.len()), seg_nfs);
                    tenants.push(configure(Deployment::with_model(
                        seg_sfc,
                        policy,
                        CostModel::new(spec.servers[server]),
                    )));
                    tenant_servers.push(server);
                    start = end;
                }
                ClusterDeployment {
                    spec,
                    tenants,
                    tenant_servers,
                    placement,
                }
            }
        }
    }

    /// The rack description.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// NF → server assignment (empty in shard mode).
    pub fn placement(&self) -> &[usize] {
        &self.placement
    }

    /// Runs `n_batches` batches from `traffic` across the rack.
    pub fn run(&mut self, traffic: &mut TrafficGenerator, n_batches: usize) -> ClusterOutcome {
        self.run_collect(traffic, n_batches).0
    }

    /// Like [`ClusterDeployment::run`], additionally returning every
    /// cluster egress batch in completion order (the differential
    /// tests' handle).
    pub fn run_collect(
        &mut self,
        traffic: &mut TrafficGenerator,
        n_batches: usize,
    ) -> (ClusterOutcome, Vec<Batch>) {
        match self.spec.mode {
            PlacementMode::Shard => {
                self.run_sharded(std::slice::from_mut(traffic), n_batches, true, &[])
            }
            PlacementMode::Segment => self.run_segmented(traffic, n_batches, true),
        }
    }

    /// Runs a sequence of traffic *phases* on one continuous timeline
    /// (`batches_per_phase` cluster batches each) — the benign→hostile
    /// sweep shape. Phase boundaries advance each generator to the
    /// previous phase's traffic clock, so arrivals stay monotone.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty, or in segment mode.
    pub fn run_phased(
        &mut self,
        phases: &mut [TrafficGenerator],
        batches_per_phase: usize,
    ) -> ClusterOutcome {
        assert!(!phases.is_empty(), "need at least one phase");
        assert_eq!(
            self.spec.mode,
            PlacementMode::Shard,
            "phased traffic needs shard placement"
        );
        self.run_sharded(phases, batches_per_phase, false, &[]).0
    }

    /// Shard-mode run with a *forced* rebalance schedule: before batch
    /// `i`, each `(i, from, to)` entry moves one ring vnode from `from`
    /// to `to` through the full two-phase swap (state migration charged
    /// over the links, flow caches invalidated on both ends). The
    /// order-preservation proptest drives arbitrary schedules through
    /// this; the live controller path shares the same apply code.
    ///
    /// # Panics
    ///
    /// Panics in segment mode (rebalancing is a shard-mode concept).
    pub fn run_with_moves(
        &mut self,
        traffic: &mut TrafficGenerator,
        n_batches: usize,
        moves: &[(usize, u32, u32)],
    ) -> (ClusterOutcome, Vec<Batch>) {
        assert_eq!(
            self.spec.mode,
            PlacementMode::Shard,
            "forced shard moves need shard placement"
        );
        self.run_sharded(std::slice::from_mut(traffic), n_batches, true, moves)
    }

    /// Registers one server's platform, prepares its chain, then
    /// registers its link endpoints (after `prepare` so the N=1 resource
    /// layout matches the single-box oracle exactly up to the links).
    #[allow(clippy::too_many_arguments)]
    fn prepare_server(
        dep: &mut Deployment,
        sim: &mut PipelineSim,
        traffic: &mut TrafficGenerator,
        user_base: &mut u64,
        handle: &nfc_telemetry::TelemetryHandle,
        server: usize,
    ) -> (PlatformResources, PreparedSfc, ServerLinks) {
        let res = PlatformResources::register(sim, dep.model());
        let mut prep = dep.prepare(sim, &res, traffic, &[], user_base, handle);
        prep.set_server(server as u32);
        let links = ServerLinks {
            rx: sim.add_resource(format!("link{server}-rx"), 0.0),
            tx: sim.add_resource(format!("link{server}-tx"), 0.0),
        };
        (res, prep, links)
    }

    /// Charges one link hop and records its span.
    fn charge_link(
        sim: &mut PipelineSim,
        link: &LinkSpec,
        res: ResourceId,
        earliest: f64,
        packets: usize,
        bytes: usize,
    ) -> (f64, f64) {
        let span = sim.schedule_span(res, earliest, link.transfer_ns(packets, bytes), 0);
        let rec = sim.recorder_mut();
        if rec.is_enabled() {
            rec.sim_span(
                res.index() as u32,
                span.0,
                span.1,
                EventKind::LinkTransfer {
                    link: res.index() as u32,
                    packets: packets as u32,
                    bytes: bytes as u64,
                },
            );
        }
        span
    }

    /// Emits the full shard map as `ShardRange` instants (each arc on
    /// its owner's rx-link track).
    fn emit_shard_map(
        sim: &mut PipelineSim,
        links: &[ServerLinks],
        ring: &HashRing,
        epoch: u64,
        at_ns: f64,
    ) {
        if !sim.recorder_mut().is_enabled() {
            return;
        }
        for r in ring.shard_map() {
            let track = links[r.server as usize].rx.index() as u32;
            sim.recorder_mut().sim_instant(
                track,
                at_ns,
                EventKind::ShardRange {
                    epoch,
                    server: r.server,
                    start: r.start,
                    end: r.end,
                },
            );
        }
    }

    /// Applies one shard move through the two-phase swap: ring
    /// ownership flips between batches, the migrated state share is
    /// charged over both ends' links, and both ends' flow caches are
    /// invalidated. Returns `(vnodes moved, migrated bytes)` —
    /// `(0, 0)` when the move was a no-op.
    #[allow(clippy::too_many_arguments)]
    fn apply_move(
        sim: &mut PipelineSim,
        spec: &ClusterSpec,
        ring: &mut HashRing,
        preps: &mut [PreparedSfc],
        links: &[ServerLinks],
        from: u32,
        to: u32,
        now: f64,
        epoch: u64,
        flow_owners: &mut [(u32, u32)],
        pending_migrates: &mut Vec<u32>,
        link_busy: &mut [f64],
    ) -> (usize, u64) {
        let n = preps.len() as u32;
        if from >= n || to >= n {
            return (0, 0);
        }
        let (vnodes, span) = ring.move_vnodes(from, to, spec.rebalance.vnodes_per_move.max(1));
        if vnodes == 0 {
            return (0, 0);
        }
        // The moved flows' share of the source server's stateful-NF
        // footprint ships over the wire: out the hot server's tx link,
        // into the cold server's rx link, serialized like any transfer.
        let frac = span as f64 / FLOW_SPACE as f64;
        let state = (preps[from as usize].state_bytes() as f64 * frac).ceil() as usize;
        let mut swap_end = now;
        if state > 0 {
            let pkts = state.div_ceil(MIGRATION_MTU);
            let (s1, e1) =
                Self::charge_link(sim, &spec.link, links[from as usize].tx, now, pkts, state);
            let (s2, e2) =
                Self::charge_link(sim, &spec.link, links[to as usize].rx, e1, pkts, state);
            link_busy[from as usize * 2 + 1] += e1 - s1;
            link_busy[to as usize * 2] += e2 - s2;
            swap_end = e2;
        }
        preps[from as usize].invalidate_flow_caches();
        preps[to as usize].invalidate_flow_caches();
        let rec = sim.recorder_mut();
        if rec.is_enabled() {
            rec.sim_instant(
                links[from as usize].tx.index() as u32,
                now,
                EventKind::ClusterRebalance {
                    epoch,
                    from,
                    to,
                    vnodes: vnodes as u32,
                    migrated_bytes: state as u64,
                    swap_ns: swap_end - now,
                },
            );
        }
        Self::emit_shard_map(sim, links, ring, epoch, swap_end);
        // Sampled flows whose ring owner just changed get a `migrate`
        // point queued here and stamped on the *destination* server's
        // track when their next batch lands there. Deferring keeps each
        // per-track timeline exactly time-ordered: the rebalance
        // decision instant interleaves arbitrarily with per-server
        // delivery times, so stamping at decision (or transfer-end)
        // time would let the marker postdate the flow's next hand-off.
        // The transfer span itself lives in `cluster_rebalance::swap_ns`.
        for (hash, owner) in flow_owners.iter_mut() {
            let new_owner = ring.server_for(*hash);
            if new_owner != *owner {
                *owner = new_owner;
                if !pending_migrates.contains(hash) {
                    pending_migrates.push(*hash);
                }
            }
        }
        (vnodes, state as u64)
    }

    fn run_sharded(
        &mut self,
        phases: &mut [TrafficGenerator],
        batches_per_phase: usize,
        collect: bool,
        forced_moves: &[(usize, u32, u32)],
    ) -> (ClusterOutcome, Vec<Batch>) {
        let n = self.tenants.len();
        let tel = Telemetry::new(self.tenants[0].telemetry.clone());
        let handle = tel.handle();
        let mut sim = PipelineSim::new();
        sim.set_recorder(handle.recorder());
        let recording = sim.recorder_mut().is_enabled();
        let mut user_base = 1u64;
        let mut res = Vec::with_capacity(n);
        let mut preps = Vec::with_capacity(n);
        let mut links = Vec::with_capacity(n);
        for (s, dep) in self.tenants.iter_mut().enumerate() {
            let (r, p, l) =
                Self::prepare_server(dep, &mut sim, &mut phases[0], &mut user_base, &handle, s);
            res.push(r);
            preps.push(p);
            links.push(l);
        }
        let mut ring = HashRing::new(n, self.spec.vnodes_per_server);
        Self::emit_shard_map(&mut sim, &links, &ring, 0, 0.0);
        let batch_size = self.tenants[0].batch_size;
        let mut cluster_stats = StatsAccumulator::new();
        let mut server_stats: Vec<StatsAccumulator> =
            (0..n).map(|_| StatsAccumulator::new()).collect();
        let mut controller = ClusterController::new(self.spec.rebalance);
        let epoch_batches = self.spec.rebalance.epoch_batches.max(1);
        let mut window_batches = vec![0u64; n];
        for p in preps.iter_mut() {
            p.snapshot_window();
        }
        let mut egress = Vec::new();
        let (mut egress_packets, mut egress_bytes) = (0u64, 0u64);
        let (mut rebalances, mut migrated_bytes) = (0u64, 0u64);
        let mut rebalance_epoch = 0u64;
        let mut now = 0f64;
        let mut traffic_clock = 0u64;
        let mut b = 0usize;
        // Forensics/observability bookkeeping: current ring owner of
        // every sampled flow seen (for `migrate` stamps), per-link busy
        // time, and distinct flows landed per server (for the cluster
        // gauges). All recording-gated: the off path never touches them.
        let mut flow_owners: Vec<(u32, u32)> = Vec::new();
        let mut pending_migrates: Vec<u32> = Vec::new();
        let mut link_busy: Vec<f64> = vec![0.0; 2 * n];
        let mut server_flows: Vec<std::collections::HashSet<u32>> =
            (0..n).map(|_| std::collections::HashSet::new()).collect();
        for (pi, traffic) in phases.iter_mut().enumerate() {
            if pi > 0 {
                traffic.advance_to(traffic_clock);
            }
            for _ in 0..batches_per_phase {
                for &(_, from, to) in forced_moves.iter().filter(|&&(at, _, _)| at == b) {
                    rebalance_epoch += 1;
                    let (vn, m) = Self::apply_move(
                        &mut sim,
                        &self.spec,
                        &mut ring,
                        &mut preps,
                        &links,
                        from,
                        to,
                        now,
                        rebalance_epoch,
                        &mut flow_owners,
                        &mut pending_migrates,
                        &mut link_busy,
                    );
                    if vn > 0 {
                        rebalances += 1;
                        migrated_bytes += m;
                    }
                }
                let batch = traffic.batch(batch_size);
                let first = batch.get(0).map(|p| p.meta.arrival_ns).unwrap_or(0) as f64;
                let last = batch.iter().last().map(|p| p.meta.arrival_ns).unwrap_or(0) as f64;
                let mean_arrival = (first + last) / 2.0;
                if n == 1 {
                    // Single server: the oracle path, bit for bit — no
                    // split, no merge, no link charges, no arrival shifts.
                    match preps[0].process_batch(&mut sim, &res[0], batch) {
                        BatchResult::Completed {
                            mean_arrival,
                            completed,
                            out,
                        } => {
                            handle.observe_ns("batch_latency_ns", completed - mean_arrival);
                            now = now.max(completed);
                            egress_packets += out.len() as u64;
                            egress_bytes += out.total_bytes() as u64;
                            cluster_stats.record_completion(
                                mean_arrival,
                                completed,
                                out.len(),
                                out.total_bytes(),
                            );
                            server_stats[0].record_completion(
                                mean_arrival,
                                completed,
                                out.len(),
                                out.total_bytes(),
                            );
                            if collect {
                                egress.push(out);
                            }
                        }
                        BatchResult::Dropped { mean_arrival } => {
                            cluster_stats.record_drop(mean_arrival);
                            server_stats[0].record_drop(mean_arrival);
                        }
                    }
                    window_batches[0] += 1;
                } else {
                    let parts =
                        batch.split_by(n, |_, p| ring.server_for(p.meta.flow_hash) as usize);
                    let mut outs: Vec<Batch> = Vec::with_capacity(n);
                    let mut cluster_done = mean_arrival;
                    let mut any_completion = false;
                    for (s, mut part) in parts.into_iter().enumerate() {
                        if part.is_empty() {
                            continue;
                        }
                        // Ingress hand-off: the shard ships over the
                        // server's rx link; its packets cannot be seen by
                        // the server before the wire delivers them.
                        let part_last =
                            part.iter().last().map(|p| p.meta.arrival_ns).unwrap_or(0) as f64;
                        let (rx_start, delivered) = Self::charge_link(
                            &mut sim,
                            &self.spec.link,
                            links[s].rx,
                            part_last,
                            part.len(),
                            part.total_bytes(),
                        );
                        link_busy[s * 2] += delivered - rx_start;
                        let delivered_ns = delivered.ceil() as u64;
                        for i in 0..part.len() {
                            if let Some(p) = part.get_mut(i) {
                                if p.meta.arrival_ns < delivered_ns {
                                    p.meta.arrival_ns = delivered_ns;
                                }
                            }
                        }
                        if recording {
                            // Stamp the shard hand-off for sampled flows at
                            // the instant the wire delivered them, and keep
                            // the owner map current so a later ring move can
                            // stamp `migrate` on the destination track.
                            let mut sampled: Vec<(u32, u32)> = Vec::new();
                            for p in part.iter() {
                                server_flows[s].insert(p.meta.flow_hash);
                                if preps[s].flow_sampled(p.meta.flow_hash) {
                                    match sampled.iter_mut().find(|(h, _)| *h == p.meta.flow_hash) {
                                        Some((_, c)) => *c += 1,
                                        None => sampled.push((p.meta.flow_hash, 1)),
                                    }
                                }
                            }
                            let track = links[s].rx.index() as u32;
                            for (hash, count) in sampled {
                                // A queued ring move materializes as a
                                // `migrate` point the instant the flow's
                                // next batch lands on its new owner.
                                if let Some(i) = pending_migrates.iter().position(|&h| h == hash) {
                                    pending_migrates.swap_remove(i);
                                    preps[s].stamp_flow_point(
                                        &mut sim, track, delivered, hash, "migrate", 0,
                                    );
                                }
                                preps[s].stamp_flow_point(
                                    &mut sim, track, delivered, hash, "shard", count,
                                );
                                match flow_owners.iter_mut().find(|(h, _)| *h == hash) {
                                    Some((_, owner)) => *owner = s as u32,
                                    None => flow_owners.push((hash, s as u32)),
                                }
                            }
                        }
                        match preps[s].process_batch(&mut sim, &res[s], part) {
                            BatchResult::Completed {
                                mean_arrival: part_arrival,
                                completed,
                                out,
                            } => {
                                // Egress hand-off back to the rack fabric.
                                let (tx_start, e) = Self::charge_link(
                                    &mut sim,
                                    &self.spec.link,
                                    links[s].tx,
                                    completed,
                                    out.len(),
                                    out.total_bytes(),
                                );
                                link_busy[s * 2 + 1] += e - tx_start;
                                server_stats[s].record_completion(
                                    part_arrival,
                                    e,
                                    out.len(),
                                    out.total_bytes(),
                                );
                                cluster_done = cluster_done.max(e);
                                any_completion = true;
                                outs.push(out);
                            }
                            BatchResult::Dropped {
                                mean_arrival: part_arrival,
                            } => {
                                server_stats[s].record_drop(part_arrival);
                                cluster_stats.record_drop(part_arrival);
                            }
                        }
                        window_batches[s] += 1;
                    }
                    now = now.max(cluster_done);
                    if any_completion {
                        let merged = Batch::merge_ordered(outs);
                        handle.observe_ns("batch_latency_ns", cluster_done - mean_arrival);
                        egress_packets += merged.len() as u64;
                        egress_bytes += merged.total_bytes() as u64;
                        cluster_stats.record_completion(
                            mean_arrival,
                            cluster_done,
                            merged.len(),
                            merged.total_bytes(),
                        );
                        if collect {
                            egress.push(merged);
                        }
                    }
                }
                // Cluster epoch: per-server signatures roll up to one load
                // vector; the controller decides hottest → coldest.
                if (b + 1).is_multiple_of(epoch_batches) {
                    let loads: Vec<f64> = preps
                        .iter()
                        .enumerate()
                        .map(|(s, p)| {
                            let sig =
                                p.epoch_signature(batch_size, sim.backlog_ns(res[s].pcie_h2d, now));
                            let busy: f64 =
                                sig.stages.iter().map(|st| st.cpu_ns + st.kernel_ns).sum();
                            busy * window_batches[s] as f64
                        })
                        .collect();
                    if let Some(mv) = controller.observe(&loads) {
                        rebalance_epoch += 1;
                        let (vn, m) = Self::apply_move(
                            &mut sim,
                            &self.spec,
                            &mut ring,
                            &mut preps,
                            &links,
                            mv.from,
                            mv.to,
                            now,
                            rebalance_epoch,
                            &mut flow_owners,
                            &mut pending_migrates,
                            &mut link_busy,
                        );
                        if vn > 0 {
                            rebalances += 1;
                            migrated_bytes += m;
                        }
                    }
                    for (s, p) in preps.iter_mut().enumerate() {
                        p.snapshot_window();
                        window_batches[s] = 0;
                    }
                }
                b += 1;
            }
            traffic_clock = traffic_clock.max(traffic.now_ns());
        }
        if recording {
            // Cluster-plane gauges: how hot each NIC link ran over the
            // whole run, and how many distinct flows each shard owns.
            let span = now.max(1.0);
            for (s, link) in links.iter().enumerate() {
                for (slot, res_id) in [(s * 2, link.rx), (s * 2 + 1, link.tx)] {
                    handle.set_gauge(
                        &format!(
                            "cluster_link_busy_ratio{{link=\"{}\"}}",
                            sim.resource_name(res_id)
                        ),
                        link_busy[slot] / span,
                    );
                }
                handle.set_gauge(
                    &format!("cluster_shard_flows{{server=\"{s}\"}}"),
                    server_flows[s].len() as f64,
                );
            }
        }
        if let Some(rec) = sim.take_recorder() {
            handle.absorb(rec);
        }
        let per_server: Vec<RunOutcome> = preps
            .into_iter()
            .zip(server_stats)
            .map(|(p, s)| p.into_outcome(s.report()))
            .collect();
        let outcome = ClusterOutcome {
            report: cluster_stats.report(),
            per_server,
            egress_packets,
            egress_bytes,
            rebalances,
            migrated_bytes,
            placement: Vec::new(),
            shard_map: ring.shard_map(),
            telemetry: tel.finish(),
        };
        (outcome, egress)
    }

    fn run_segmented(
        &mut self,
        traffic: &mut TrafficGenerator,
        n_batches: usize,
        collect: bool,
    ) -> (ClusterOutcome, Vec<Batch>) {
        let k = self.tenants.len();
        let tel = Telemetry::new(self.tenants[0].telemetry.clone());
        let handle = tel.handle();
        let mut sim = PipelineSim::new();
        sim.set_recorder(handle.recorder());
        let mut user_base = 1u64;
        let mut res = Vec::with_capacity(k);
        let mut preps = Vec::with_capacity(k);
        let mut links = Vec::with_capacity(k);
        for (t, dep) in self.tenants.iter_mut().enumerate() {
            let server = self.tenant_servers[t];
            let (r, p, l) =
                Self::prepare_server(dep, &mut sim, traffic, &mut user_base, &handle, server);
            res.push(r);
            preps.push(p);
            links.push(l);
        }
        let batch_size = self.tenants[0].batch_size;
        let mut cluster_stats = StatsAccumulator::new();
        let mut seg_stats: Vec<StatsAccumulator> =
            (0..k).map(|_| StatsAccumulator::new()).collect();
        let mut egress = Vec::new();
        let (mut egress_packets, mut egress_bytes) = (0u64, 0u64);
        for _ in 0..n_batches {
            let batch = traffic.batch(batch_size);
            let first = batch.get(0).map(|p| p.meta.arrival_ns).unwrap_or(0) as f64;
            let last = batch.iter().last().map(|p| p.meta.arrival_ns).unwrap_or(0) as f64;
            let mean_arrival = (first + last) / 2.0;
            let mut cur = Some(batch);
            let mut prev_done = 0f64;
            for t in 0..k {
                let mut input = match cur.take() {
                    Some(b) if !b.is_empty() => b,
                    other => {
                        cur = other;
                        break;
                    }
                };
                if t > 0 {
                    // Segment hop: the survivors ship to the next
                    // server; arrivals shift up to wire delivery.
                    let (_, delivered) = Self::charge_link(
                        &mut sim,
                        &self.spec.link,
                        links[t].rx,
                        prev_done,
                        input.len(),
                        input.total_bytes(),
                    );
                    let delivered_ns = delivered.ceil() as u64;
                    for i in 0..input.len() {
                        if let Some(p) = input.get_mut(i) {
                            if p.meta.arrival_ns < delivered_ns {
                                p.meta.arrival_ns = delivered_ns;
                            }
                        }
                    }
                }
                match preps[t].process_batch(&mut sim, &res[t], input) {
                    BatchResult::Completed {
                        mean_arrival: seg_arrival,
                        completed,
                        out,
                    } => {
                        seg_stats[t].record_completion(
                            seg_arrival,
                            completed,
                            out.len(),
                            out.total_bytes(),
                        );
                        prev_done = completed;
                        cur = Some(out);
                    }
                    BatchResult::Dropped {
                        mean_arrival: seg_arrival,
                    } => {
                        seg_stats[t].record_drop(seg_arrival);
                        break;
                    }
                }
            }
            match cur {
                None => cluster_stats.record_drop(mean_arrival),
                Some(out) => {
                    let done = prev_done.max(mean_arrival);
                    handle.observe_ns("batch_latency_ns", done - mean_arrival);
                    egress_packets += out.len() as u64;
                    egress_bytes += out.total_bytes() as u64;
                    cluster_stats.record_completion(
                        mean_arrival,
                        done,
                        out.len(),
                        out.total_bytes(),
                    );
                    if collect {
                        egress.push(out);
                    }
                }
            }
        }
        if let Some(rec) = sim.take_recorder() {
            handle.absorb(rec);
        }
        let per_server: Vec<RunOutcome> = preps
            .into_iter()
            .zip(seg_stats)
            .map(|(p, s)| p.into_outcome(s.report()))
            .collect();
        let outcome = ClusterOutcome {
            report: cluster_stats.report(),
            per_server,
            egress_packets,
            egress_bytes,
            rebalances: 0,
            migrated_bytes: 0,
            placement: self.placement.clone(),
            shard_map: Vec::new(),
            telemetry: tel.finish(),
        };
        (outcome, egress)
    }
}
