//! Cluster-level SFC placement: min-cutting the chain across servers.
//!
//! Two placement modes, after Sallam et al.'s max-flow formulation of
//! SFC placement (PAPERS.md):
//!
//! * [`PlacementMode::Shard`] — every server runs the *full* chain and
//!   owns a consistent-hash shard of the flow space. This is the mode
//!   that supports stateful stickiness and live rebalancing; the
//!   placement question degenerates to "which flows go where".
//! * [`PlacementMode::Segment`] — the chain itself is cut into
//!   contiguous segments, one per server, by recursive min-cut
//!   bisection over `graphpart::maxflow`: node costs are per-NF compute
//!   weights scaled by each half's aggregate capacity, edge weights are
//!   the inter-NF traffic priced through the [`LinkSpec`], and the
//!   ingress/egress NFs are pinned to the first/last halves. The solver
//!   therefore cuts where crossing traffic is cheapest, biased toward
//!   the bigger half of a heterogeneous rack.

use nfc_graphpart::maxflow::mfmc_assign;
use nfc_hetero::LinkSpec;

/// How the cluster maps one SFC onto N servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementMode {
    /// Full chain on every server; flow-space sharding decides which
    /// server processes which packet (supports live rebalancing).
    #[default]
    Shard,
    /// Chain cut into contiguous per-server segments via min-cut;
    /// batches traverse servers in segment order over the links.
    Segment,
}

/// Per-NF placement weight: the compute cost the server pays for
/// hosting the NF, and the wire bytes it forwards downstream.
#[derive(Debug, Clone, Copy)]
pub struct NfWeight {
    /// Relative compute cost of the NF (any monotone busy-time proxy).
    pub compute: f64,
    /// Wire bytes per batch crossing the edge to the *next* NF (the
    /// last NF's value prices chain egress and is not a cuttable edge).
    pub edge_bytes: f64,
}

/// Assigns each NF (chain order) to a server in `0..servers` by
/// recursive min-cut bisection, returning contiguous segments. With one
/// server (or a single-NF chain) everything lands on server 0.
///
/// `capacities` weights the halves during bisection (e.g. core counts);
/// it must have one entry per server.
///
/// # Panics
///
/// Panics if `servers == 0` or `capacities.len() != servers`.
pub fn place_chain(
    weights: &[NfWeight],
    servers: usize,
    capacities: &[f64],
    link: &LinkSpec,
) -> Vec<usize> {
    assert!(servers > 0, "placement needs at least one server");
    assert_eq!(capacities.len(), servers, "one capacity per server");
    let mut assignment = vec![0usize; weights.len()];
    if weights.is_empty() {
        return assignment;
    }
    bisect(weights, 0, servers, capacities, link, 0, &mut assignment);
    assignment
}

/// Recursively splits `nfs[lo_nf..]`' — represented by `weights` — over
/// the server interval `[s_lo, s_lo + s_n)`, writing server ids into
/// `assignment[nf_base..]`.
fn bisect(
    weights: &[NfWeight],
    s_lo: usize,
    s_n: usize,
    capacities: &[f64],
    link: &LinkSpec,
    nf_base: usize,
    assignment: &mut [usize],
) {
    if s_n == 1 || weights.len() <= 1 {
        for (i, _) in weights.iter().enumerate() {
            assignment[nf_base + i] = s_lo;
        }
        if weights.len() == 1 && s_n > 1 {
            assignment[nf_base] = s_lo;
        }
        return;
    }
    let half_a = s_n / 2;
    let cap_a: f64 = capacities[s_lo..s_lo + half_a].iter().sum();
    let cap_b: f64 = capacities[s_lo + half_a..s_lo + s_n].iter().sum();
    let cut = cut_point(weights, cap_a.max(1e-9), cap_b.max(1e-9), link);
    bisect(
        &weights[..cut],
        s_lo,
        half_a,
        capacities,
        link,
        nf_base,
        assignment,
    );
    bisect(
        &weights[cut..],
        s_lo + half_a,
        s_n - half_a,
        capacities,
        link,
        nf_base + cut,
        assignment,
    );
}

/// One min-cut bisection of a chain between two capacity pools: returns
/// the boundary index (`0..=n`) — NFs `[0, cut)` go to side A. The
/// ingress NF is pinned to A and the egress NF to B; with the pins a
/// min cut of a chain crosses exactly one edge, and any stray
/// non-contiguity from unary pressure is normalized to the first B
/// assignment.
fn cut_point(weights: &[NfWeight], cap_a: f64, cap_b: f64, link: &LinkSpec) -> usize {
    let n = weights.len();
    if n <= 1 {
        return n;
    }
    // Per-unit compute is cheaper on the bigger half; per-byte link
    // price converts crossing traffic into the same nanosecond currency.
    let unary: Vec<(f64, f64)> = weights
        .iter()
        .enumerate()
        .map(|(i, w)| {
            if i == 0 {
                (w.compute / cap_a, f64::INFINITY) // pin ingress to A
            } else if i == n - 1 {
                (f64::INFINITY, w.compute / cap_b) // pin egress to B
            } else {
                (w.compute / cap_a, w.compute / cap_b)
            }
        })
        .collect();
    let ns_per_byte = 8.0 / link.bandwidth_gbps + link.per_packet_ns / 1500.0;
    let edges: Vec<(usize, usize, f64)> = (0..n - 1)
        .map(|i| (i, i + 1, weights[i].edge_bytes.max(0.0) * ns_per_byte))
        .collect();
    let side_b = mfmc_assign(&unary, &edges);
    side_b.iter().position(|&b| b).unwrap_or(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(compute: f64, edge_bytes: f64) -> NfWeight {
        NfWeight {
            compute,
            edge_bytes,
        }
    }

    #[test]
    fn one_server_takes_the_whole_chain() {
        let chain = vec![w(1.0, 100.0); 4];
        assert_eq!(
            place_chain(&chain, 1, &[1.0], &LinkSpec::rack_40g()),
            [0; 4]
        );
    }

    #[test]
    fn cut_lands_on_the_lightest_traffic_edge() {
        // Equal compute, one edge that sheds 90 % of the traffic (a
        // dropper): the min cut must cross *after* it.
        let chain = vec![
            w(1.0, 1500.0),
            w(1.0, 150.0),
            w(1.0, 1500.0),
            w(1.0, 1500.0),
        ];
        let got = place_chain(&chain, 2, &[1.0, 1.0], &LinkSpec::rack_40g());
        assert_eq!(got, [0, 0, 1, 1], "cut should follow the shed edge");
    }

    #[test]
    fn segments_are_contiguous_and_in_server_order() {
        let chain: Vec<NfWeight> = (0..8).map(|i| w(1.0 + i as f64, 1000.0)).collect();
        let got = place_chain(&chain, 4, &[1.0; 4], &LinkSpec::rack_10g());
        let mut last = 0usize;
        for &s in &got {
            assert!(s >= last, "segments must be monotone: {got:?}");
            last = s;
        }
    }

    #[test]
    fn heterogeneous_capacity_biases_the_cut() {
        // Side B has 4x the capacity: the bigger half should absorb
        // more of the (uniform-traffic) chain than the smaller half.
        let chain = vec![w(10.0, 1500.0); 6];
        let even = place_chain(&chain, 2, &[1.0, 1.0], &LinkSpec::rack_40g());
        let skewed = place_chain(&chain, 2, &[1.0, 4.0], &LinkSpec::rack_40g());
        let count_a = |v: &[usize]| v.iter().filter(|&&s| s == 0).count();
        assert!(
            count_a(&skewed) <= count_a(&even),
            "bigger half absorbs at least as much: even {even:?}, skewed {skewed:?}"
        );
    }
}
