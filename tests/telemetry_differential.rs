//! Telemetry differential testing: recording is a pure observer. A run
//! with telemetry enabled must produce bit-identical egress bytes,
//! per-element statistics and simulated timings to the same run with
//! telemetry off — under both serial and parallel execution — and an
//! exported Chrome trace must be well-formed JSON covering every event
//! category the runtime emits.

use nfc_core::flowcache::FlowCacheMode;
use nfc_core::{Deployment, Duplication, ExecMode, Policy, RunOutcome, Sfc, TelemetryMode};
use nfc_hetero::{CostModel, GpuMode, PlatformConfig};
use nfc_nf::acl::synth;
use nfc_nf::Nf;
use nfc_packet::traffic::{FlowSpec, SizeDist, TrafficGenerator, TrafficSpec};
use nfc_packet::Batch;
use nfc_telemetry::{EventKind, SloSpec};
use std::collections::BTreeSet;

/// A chain that is both flow-cacheable (ACL firewall + load balancer
/// are verdict-capable) and offloadable (the ACL matcher carries a
/// classification kernel), so one run can emit stage, element,
/// flow-cache, GPU and partition events simultaneously.
fn traced_chain(seed: u64) -> Sfc {
    Sfc::new(
        "fw-lb",
        vec![
            Nf::firewall_with("fw", synth::generate(128, seed), true),
            Nf::load_balancer("lb", 4),
        ],
    )
}

fn skewed_traffic(seed: u64) -> TrafficGenerator {
    let spec = TrafficSpec::udp(SizeDist::Fixed(256)).with_flows(FlowSpec {
        count: 128,
        ..FlowSpec::default().with_skew(1.0)
    });
    TrafficGenerator::new(spec, seed)
}

fn run_with(
    policy: Policy,
    exec: ExecMode,
    telemetry: TelemetryMode,
    seed: u64,
) -> (RunOutcome, Vec<Batch>) {
    let mut dep = Deployment::new(traced_chain(1), policy)
        .with_batch_size(128)
        .with_exec_mode(exec)
        .with_duplication(Duplication::Cow)
        .with_flow_cache(FlowCacheMode::On { capacity: 2048 })
        .with_telemetry(telemetry);
    dep.run_collect(&mut skewed_traffic(seed), 10)
}

fn assert_bit_identical(
    label: &str,
    off: &(RunOutcome, Vec<Batch>),
    on: &(RunOutcome, Vec<Batch>),
) {
    assert_eq!(
        off.1, on.1,
        "{label}: egress batches must be byte-identical"
    );
    assert_eq!(
        off.0.stage_stats, on.0.stage_stats,
        "{label}: per-element statistics must match"
    );
    assert_eq!(off.0.egress_packets, on.0.egress_packets, "{label}");
    assert_eq!(off.0.egress_bytes, on.0.egress_bytes, "{label}");
    assert_eq!(off.0.flow_cache, on.0.flow_cache, "{label}: cache counters");
    // Recording must not perturb the simulated timeline by a single bit.
    assert_eq!(
        off.0.report.throughput_gbps.to_bits(),
        on.0.report.throughput_gbps.to_bits(),
        "{label}: simulated throughput must be bit-identical"
    );
    assert_eq!(
        off.0.report.mean_latency_ns.to_bits(),
        on.0.report.mean_latency_ns.to_bits(),
        "{label}: simulated mean latency must be bit-identical"
    );
    assert_eq!(
        off.0.report.p99_latency_ns.to_bits(),
        on.0.report.p99_latency_ns.to_bits(),
        "{label}: simulated p99 latency must be bit-identical"
    );
}

#[test]
fn telemetry_never_perturbs_serial_or_parallel_runs() {
    let policy = Policy::nfcompass();
    for (label, exec) in [
        ("serial", ExecMode::Serial),
        ("parallel4", ExecMode::Parallel { threads: 4 }),
    ] {
        let off = run_with(policy, exec, TelemetryMode::Off, 17);
        let on = run_with(policy, exec, TelemetryMode::Memory, 17);
        assert_bit_identical(label, &off, &on);
        assert!(
            off.0.telemetry.is_none(),
            "{label}: telemetry-off outcomes carry no digest"
        );
        let summary = on.0.telemetry.as_ref().expect("telemetry-on digest");
        assert!(summary.events > 0, "{label}: events were recorded");
        assert!(summary.counter("stages_executed") > 0, "{label}");
        assert!(summary.counter("elements_executed") > 0, "{label}");
        assert!(summary.counter("worker_units") > 0, "{label}");
        assert!(
            summary.counter("flow_cache_hits") > 0,
            "{label}: skewed traffic over a cached chain must hit"
        );
        assert!(
            summary.counter("partition_decisions") > 0,
            "{label}: every stage records its planning decision"
        );
    }
}

#[test]
fn parallel_and_serial_digests_agree_on_deterministic_counters() {
    // The merged event stream is absorbed in input-index order, so
    // execution-derived counters (not wall-clock histograms) match
    // across execution modes exactly.
    let policy = Policy::nfcompass();
    let serial = run_with(policy, ExecMode::Serial, TelemetryMode::Memory, 29);
    let parallel = run_with(
        policy,
        ExecMode::Parallel { threads: 4 },
        TelemetryMode::Memory,
        29,
    );
    let s = serial.0.telemetry.expect("serial digest");
    let p = parallel.0.telemetry.expect("parallel digest");
    for name in [
        "stages_executed",
        "elements_executed",
        "element_packets_in",
        "worker_units",
        "flow_cache_hits",
        "flow_cache_misses",
        "batch_splits",
        "batch_merges",
        "partition_decisions",
        "gpu_kernel_launches",
    ] {
        assert_eq!(
            s.counter(name),
            p.counter(name),
            "counter {name} must not depend on execution mode"
        );
    }
}

#[test]
fn exported_trace_covers_every_category_with_consistent_timestamps() {
    let dir = std::env::temp_dir().join(format!(
        "nfc_telemetry_difftest_{}.json",
        std::process::id()
    ));
    let path = dir.to_string_lossy().into_owned();
    let policy = Policy::FixedRatio {
        ratio: 0.5,
        mode: GpuMode::Persistent,
    };
    let out = run_with(
        policy,
        ExecMode::Serial,
        TelemetryMode::Export { path: path.clone() },
        43,
    );
    let summary = out.0.telemetry.expect("export digest");
    let written = summary.export_path.clone().expect("trace written");
    let body = std::fs::read_to_string(&written).expect("trace file readable");
    std::fs::remove_file(&written).ok();

    // The whole file is one valid JSON array...
    let parsed = serde_json::from_str(&body).expect("valid JSON");
    let events = parsed.as_array().expect("top-level array");
    assert!(!events.is_empty());
    // ...and every non-metadata object is one self-contained line with
    // the Chrome-trace schema and sane timestamps.
    let mut cats = BTreeSet::new();
    for ev in events {
        let ph = ev.get("ph").and_then(|v| v.as_str()).expect("ph field");
        if ph == "M" {
            continue; // metadata (process/thread names, drop counter)
        }
        assert!(ev.get("pid").and_then(|v| v.as_u64()).is_some());
        assert!(ev.get("tid").and_then(|v| v.as_u64()).is_some());
        assert!(ev.get("name").and_then(|v| v.as_str()).is_some());
        let ts = ev.get("ts").and_then(|v| v.as_f64()).expect("ts field");
        assert!(ts >= 0.0, "timestamps are non-negative microseconds");
        if ph == "X" {
            let dur = ev.get("dur").and_then(|v| v.as_f64()).expect("dur field");
            assert!(dur >= 0.0);
        }
        // Simulated-timeline events cross-reference their wall stamp.
        if ev.get("pid").and_then(|v| v.as_u64()) == Some(2) {
            assert!(
                ev.get("args").and_then(|a| a.get("wall_ns")).is_some(),
                "sim events carry their wall-clock stamp"
            );
        }
        cats.insert(
            ev.get("cat")
                .and_then(|v| v.as_str())
                .expect("cat field")
                .to_string(),
        );
    }
    for required in ["stage", "element", "flow-cache", "gpu", "partition"] {
        assert!(
            cats.contains(required),
            "trace must contain {required} events, got {cats:?}"
        );
    }
    assert!(
        summary.counter("gpu_kernel_launches") > 0,
        "fixed-ratio offload must launch kernels"
    );
}

// ---------------------------------------------------------------------
// Health plane: SLO burn-rate detection and the drift watchdog are pure
// observers too.
// ---------------------------------------------------------------------

/// An always-breaching latency SLO with a short epoch so a 10-batch run
/// closes two health epochs.
fn tight_slo() -> SloSpec {
    SloSpec {
        p99_latency_ns: 1.0,
        epoch_batches: 4,
        ..Default::default()
    }
}

fn run_with_slo(
    exec: ExecMode,
    telemetry: TelemetryMode,
    slo: Option<SloSpec>,
    seed: u64,
) -> (RunOutcome, Vec<Batch>) {
    let mut dep = Deployment::new(traced_chain(1), Policy::nfcompass())
        .with_batch_size(128)
        .with_exec_mode(exec)
        .with_duplication(Duplication::Cow)
        .with_flow_cache(FlowCacheMode::On { capacity: 2048 })
        .with_telemetry(telemetry)
        .without_slo();
    if let Some(spec) = slo {
        dep = dep.with_slo(spec);
    }
    dep.run_collect(&mut skewed_traffic(seed), 10)
}

#[test]
fn health_plane_never_perturbs_serial_or_parallel_runs() {
    for (label, exec) in [
        ("serial", ExecMode::Serial),
        ("parallel4", ExecMode::Parallel { threads: 4 }),
    ] {
        // With telemetry recording, arming the SLO changes nothing the
        // differential contract observes...
        let off = run_with_slo(exec, TelemetryMode::Memory, None, 31);
        let on = run_with_slo(exec, TelemetryMode::Memory, Some(tight_slo()), 31);
        assert_bit_identical(&format!("{label}/memory"), &off, &on);
        // ...and with telemetry off the armed health plane still
        // accounts silently without touching the run.
        let dark_off = run_with_slo(exec, TelemetryMode::Off, None, 31);
        let dark_on = run_with_slo(exec, TelemetryMode::Off, Some(tight_slo()), 31);
        assert_bit_identical(&format!("{label}/off"), &dark_off, &dark_on);

        // The armed, recording run did emit health instants and gauges.
        let summary = on.0.telemetry.as_ref().expect("digest");
        let breached = summary.trace.iter().any(|ev| {
            matches!(
                ev.kind,
                EventKind::SloBurn {
                    objective: "p99_latency",
                    breached: true,
                    ..
                }
            )
        });
        assert!(breached, "{label}: a 1 ns p99 ceiling must burn");
        assert!(
            summary
                .gauge("health_e2e_ns{quantile=\"0.99\"}")
                .is_some_and(|v| v > 0.0),
            "{label}: e2e quantile gauges are published at epoch close"
        );
        assert!(
            summary
                .gauge("health_slo_burn{objective=\"p99_latency\",window=\"fast\"}")
                .is_some_and(|v| v > 0.0),
            "{label}: burn-rate gauges are published at epoch close"
        );
    }
}

#[test]
fn worker_shard_sketches_merge_deterministically_across_exec_modes() {
    // Per-worker sketch shards are merged in branch-major order after
    // the parallel join, so the health gauges computed from sim-derived
    // samples are bit-identical between serial and parallel execution
    // (wall-clock shards exist too but never feed a gauge).
    let serial = run_with_slo(
        ExecMode::Serial,
        TelemetryMode::Memory,
        Some(tight_slo()),
        53,
    );
    let parallel = run_with_slo(
        ExecMode::Parallel { threads: 4 },
        TelemetryMode::Memory,
        Some(tight_slo()),
        53,
    );
    let s = serial.0.telemetry.expect("serial digest");
    let p = parallel.0.telemetry.expect("parallel digest");
    for gauge in [
        "health_e2e_ns{quantile=\"0.5\"}",
        "health_e2e_ns{quantile=\"0.95\"}",
        "health_e2e_ns{quantile=\"0.99\"}",
        "health_e2e_ns{quantile=\"0.999\"}",
        "health_slo_burn{objective=\"p99_latency\",window=\"fast\"}",
        "health_slo_burn{objective=\"p99_latency\",window=\"slow\"}",
    ] {
        let sv = s.gauge(gauge).unwrap_or_else(|| panic!("serial {gauge}"));
        let pv = p.gauge(gauge).unwrap_or_else(|| panic!("parallel {gauge}"));
        assert_eq!(
            sv.to_bits(),
            pv.to_bits(),
            "gauge {gauge} must not depend on execution mode"
        );
    }
}

/// Two offloadable stages under launch-per-batch dispatch share one GPU
/// queue with alternating kernel users, so every span pays the modeled
/// context-switch penalty — the knob the drift injection turns.
fn offload_chain() -> Sfc {
    Sfc::new(
        "fw-ids",
        vec![
            Nf::firewall_with("fw", synth::generate(128, 1), true),
            Nf::ids("ids"),
        ],
    )
}

/// Paced arrivals: at 2 Gbps a 64-packet batch leaves headroom between
/// batches, so the observed latency is compute + transfer + the modeled
/// context-switch gaps rather than an ever-growing backlog — the drift
/// ratio is then stable across epochs and cleanly separable.
fn paced_traffic(seed: u64) -> TrafficGenerator {
    let spec = TrafficSpec::udp(SizeDist::Fixed(256))
        .with_rate_gbps(2.0)
        .with_flows(FlowSpec {
            count: 128,
            ..FlowSpec::default().with_skew(1.0)
        });
    TrafficGenerator::new(spec, seed)
}

fn drift_run(ctx_switch_ns: f64, drift_threshold: f64, slo: bool) -> (RunOutcome, Vec<Batch>) {
    let model = CostModel::new(PlatformConfig::hpca18()).with_gpu_ctx_switch_ns(ctx_switch_ns);
    let policy = Policy::FixedRatio {
        ratio: 0.5,
        mode: GpuMode::LaunchPerBatch,
    };
    let mut dep = Deployment::with_model(offload_chain(), policy, model)
        .with_batch_size(64)
        .with_duplication(Duplication::Cow)
        .with_flow_cache(FlowCacheMode::Off)
        .with_telemetry(TelemetryMode::Memory)
        .without_slo();
    if slo {
        dep = dep.with_slo(SloSpec {
            epoch_batches: 4,
            drift_threshold,
            drift_hysteresis_epochs: 2,
            ..Default::default()
        });
    }
    dep.run_collect(&mut paced_traffic(9), 16)
}

/// Per-epoch `(epoch, drift, raised)` rows from the recorded trace.
fn drift_verdicts(out: &RunOutcome) -> Vec<(u64, f64, bool)> {
    out.telemetry
        .as_ref()
        .expect("digest")
        .trace
        .iter()
        .filter_map(|ev| match ev.kind {
            EventKind::ModelDrift {
                epoch,
                drift,
                raised,
                ..
            } => Some((epoch, drift, raised)),
            _ => None,
        })
        .collect()
}

#[test]
fn doubled_ctx_switch_constant_raises_model_drift_within_three_epochs() {
    let base_ctx = nfc_hetero::calib::GPU_CONTEXT_SWITCH_NS;
    // Calibrate the two drift levels with the watchdog effectively off.
    let base = drift_run(base_ctx, f64::INFINITY, true);
    let pert = drift_run(2.0 * base_ctx, f64::INFINITY, true);
    let base_drifts = drift_verdicts(&base.0);
    let pert_drifts = drift_verdicts(&pert.0);
    assert!(
        base_drifts.len() >= 3 && pert_drifts.len() >= 3,
        "16 batches at epoch=4 must close at least 3 drift epochs"
    );
    let base_max = base_drifts.iter().map(|d| d.1).fold(0.0, f64::max);
    let pert_min = pert_drifts
        .iter()
        .map(|d| d.1)
        .fold(f64::INFINITY, f64::min);
    assert!(
        pert_min > base_max,
        "doubling the context-switch constant must lift observed-over-\
         predicted drift in every epoch (base max {base_max:.4}, \
         perturbed min {pert_min:.4})"
    );

    // Armed with a ceiling between the two levels, the perturbed model
    // raises within 3 epochs (hysteresis is 2)...
    let ceiling = (base_max + pert_min) / 2.0;
    let raised_run = drift_run(2.0 * base_ctx, ceiling, true);
    let first_raised = drift_verdicts(&raised_run.0)
        .iter()
        .find(|d| d.2)
        .map(|d| d.0);
    assert_eq!(
        first_raised,
        Some(2),
        "sustained drift past the ceiling must raise ModelDrift within 3 epochs"
    );
    // ...while the unperturbed model never does.
    let quiet_run = drift_run(base_ctx, ceiling, true);
    assert!(
        drift_verdicts(&quiet_run.0).iter().all(|d| !d.2),
        "the calibrated model must stay below the ceiling"
    );

    // And the whole experiment is invisible to the data plane: the
    // perturbed run's egress is byte-identical with the health plane
    // disarmed.
    let oracle = drift_run(2.0 * base_ctx, ceiling, false);
    assert_bit_identical("drift-injection", &oracle, &raised_run);
    assert!(
        raised_run
            .0
            .telemetry
            .as_ref()
            .expect("digest")
            .gauge("health_model_drift_raised")
            .is_some_and(|v| v >= 1.0),
        "the raise count gauge must reflect the raised epochs"
    );
}
