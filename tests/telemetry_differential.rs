//! Telemetry differential testing: recording is a pure observer. A run
//! with telemetry enabled must produce bit-identical egress bytes,
//! per-element statistics and simulated timings to the same run with
//! telemetry off — under both serial and parallel execution — and an
//! exported Chrome trace must be well-formed JSON covering every event
//! category the runtime emits.

use nfc_core::flowcache::FlowCacheMode;
use nfc_core::{Deployment, Duplication, ExecMode, Policy, RunOutcome, Sfc, TelemetryMode};
use nfc_hetero::GpuMode;
use nfc_nf::acl::synth;
use nfc_nf::Nf;
use nfc_packet::traffic::{FlowSpec, SizeDist, TrafficGenerator, TrafficSpec};
use nfc_packet::Batch;
use std::collections::BTreeSet;

/// A chain that is both flow-cacheable (ACL firewall + load balancer
/// are verdict-capable) and offloadable (the ACL matcher carries a
/// classification kernel), so one run can emit stage, element,
/// flow-cache, GPU and partition events simultaneously.
fn traced_chain(seed: u64) -> Sfc {
    Sfc::new(
        "fw-lb",
        vec![
            Nf::firewall_with("fw", synth::generate(128, seed), true),
            Nf::load_balancer("lb", 4),
        ],
    )
}

fn skewed_traffic(seed: u64) -> TrafficGenerator {
    let spec = TrafficSpec::udp(SizeDist::Fixed(256)).with_flows(FlowSpec {
        count: 128,
        ..FlowSpec::default().with_skew(1.0)
    });
    TrafficGenerator::new(spec, seed)
}

fn run_with(
    policy: Policy,
    exec: ExecMode,
    telemetry: TelemetryMode,
    seed: u64,
) -> (RunOutcome, Vec<Batch>) {
    let mut dep = Deployment::new(traced_chain(1), policy)
        .with_batch_size(128)
        .with_exec_mode(exec)
        .with_duplication(Duplication::Cow)
        .with_flow_cache(FlowCacheMode::On { capacity: 2048 })
        .with_telemetry(telemetry);
    dep.run_collect(&mut skewed_traffic(seed), 10)
}

fn assert_bit_identical(
    label: &str,
    off: &(RunOutcome, Vec<Batch>),
    on: &(RunOutcome, Vec<Batch>),
) {
    assert_eq!(
        off.1, on.1,
        "{label}: egress batches must be byte-identical"
    );
    assert_eq!(
        off.0.stage_stats, on.0.stage_stats,
        "{label}: per-element statistics must match"
    );
    assert_eq!(off.0.egress_packets, on.0.egress_packets, "{label}");
    assert_eq!(off.0.egress_bytes, on.0.egress_bytes, "{label}");
    assert_eq!(off.0.flow_cache, on.0.flow_cache, "{label}: cache counters");
    // Recording must not perturb the simulated timeline by a single bit.
    assert_eq!(
        off.0.report.throughput_gbps.to_bits(),
        on.0.report.throughput_gbps.to_bits(),
        "{label}: simulated throughput must be bit-identical"
    );
    assert_eq!(
        off.0.report.mean_latency_ns.to_bits(),
        on.0.report.mean_latency_ns.to_bits(),
        "{label}: simulated mean latency must be bit-identical"
    );
    assert_eq!(
        off.0.report.p99_latency_ns.to_bits(),
        on.0.report.p99_latency_ns.to_bits(),
        "{label}: simulated p99 latency must be bit-identical"
    );
}

#[test]
fn telemetry_never_perturbs_serial_or_parallel_runs() {
    let policy = Policy::nfcompass();
    for (label, exec) in [
        ("serial", ExecMode::Serial),
        ("parallel4", ExecMode::Parallel { threads: 4 }),
    ] {
        let off = run_with(policy, exec, TelemetryMode::Off, 17);
        let on = run_with(policy, exec, TelemetryMode::Memory, 17);
        assert_bit_identical(label, &off, &on);
        assert!(
            off.0.telemetry.is_none(),
            "{label}: telemetry-off outcomes carry no digest"
        );
        let summary = on.0.telemetry.as_ref().expect("telemetry-on digest");
        assert!(summary.events > 0, "{label}: events were recorded");
        assert!(summary.counter("stages_executed") > 0, "{label}");
        assert!(summary.counter("elements_executed") > 0, "{label}");
        assert!(summary.counter("worker_units") > 0, "{label}");
        assert!(
            summary.counter("flow_cache_hits") > 0,
            "{label}: skewed traffic over a cached chain must hit"
        );
        assert!(
            summary.counter("partition_decisions") > 0,
            "{label}: every stage records its planning decision"
        );
    }
}

#[test]
fn parallel_and_serial_digests_agree_on_deterministic_counters() {
    // The merged event stream is absorbed in input-index order, so
    // execution-derived counters (not wall-clock histograms) match
    // across execution modes exactly.
    let policy = Policy::nfcompass();
    let serial = run_with(policy, ExecMode::Serial, TelemetryMode::Memory, 29);
    let parallel = run_with(
        policy,
        ExecMode::Parallel { threads: 4 },
        TelemetryMode::Memory,
        29,
    );
    let s = serial.0.telemetry.expect("serial digest");
    let p = parallel.0.telemetry.expect("parallel digest");
    for name in [
        "stages_executed",
        "elements_executed",
        "element_packets_in",
        "worker_units",
        "flow_cache_hits",
        "flow_cache_misses",
        "batch_splits",
        "batch_merges",
        "partition_decisions",
        "gpu_kernel_launches",
    ] {
        assert_eq!(
            s.counter(name),
            p.counter(name),
            "counter {name} must not depend on execution mode"
        );
    }
}

#[test]
fn exported_trace_covers_every_category_with_consistent_timestamps() {
    let dir = std::env::temp_dir().join(format!(
        "nfc_telemetry_difftest_{}.json",
        std::process::id()
    ));
    let path = dir.to_string_lossy().into_owned();
    let policy = Policy::FixedRatio {
        ratio: 0.5,
        mode: GpuMode::Persistent,
    };
    let out = run_with(
        policy,
        ExecMode::Serial,
        TelemetryMode::Export { path: path.clone() },
        43,
    );
    let summary = out.0.telemetry.expect("export digest");
    let written = summary.export_path.clone().expect("trace written");
    let body = std::fs::read_to_string(&written).expect("trace file readable");
    std::fs::remove_file(&written).ok();

    // The whole file is one valid JSON array...
    let parsed = serde_json::from_str(&body).expect("valid JSON");
    let events = parsed.as_array().expect("top-level array");
    assert!(!events.is_empty());
    // ...and every non-metadata object is one self-contained line with
    // the Chrome-trace schema and sane timestamps.
    let mut cats = BTreeSet::new();
    for ev in events {
        let ph = ev.get("ph").and_then(|v| v.as_str()).expect("ph field");
        if ph == "M" {
            continue; // metadata (process/thread names, drop counter)
        }
        assert!(ev.get("pid").and_then(|v| v.as_u64()).is_some());
        assert!(ev.get("tid").and_then(|v| v.as_u64()).is_some());
        assert!(ev.get("name").and_then(|v| v.as_str()).is_some());
        let ts = ev.get("ts").and_then(|v| v.as_f64()).expect("ts field");
        assert!(ts >= 0.0, "timestamps are non-negative microseconds");
        if ph == "X" {
            let dur = ev.get("dur").and_then(|v| v.as_f64()).expect("dur field");
            assert!(dur >= 0.0);
        }
        // Simulated-timeline events cross-reference their wall stamp.
        if ev.get("pid").and_then(|v| v.as_u64()) == Some(2) {
            assert!(
                ev.get("args").and_then(|a| a.get("wall_ns")).is_some(),
                "sim events carry their wall-clock stamp"
            );
        }
        cats.insert(
            ev.get("cat")
                .and_then(|v| v.as_str())
                .expect("cat field")
                .to_string(),
        );
    }
    for required in ["stage", "element", "flow-cache", "gpu", "partition"] {
        assert!(
            cats.contains(required),
            "trace must contain {required} events, got {cats:?}"
        );
    }
    assert!(
        summary.counter("gpu_kernel_launches") > 0,
        "fixed-ratio offload must launch kernels"
    );
}
