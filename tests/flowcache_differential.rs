//! Flow-cache differential testing: the flow-aware fast path is a pure
//! wall-clock optimization. Cache-on and cache-off runs of the same
//! deployment must agree on every egress byte (including batch lineage)
//! and every per-element statistic, and a configuration swap (ACL rule
//! reload) must invalidate the cache in one generation bump.

use nfc_core::flowcache::FlowCacheMode;
use nfc_core::{Deployment, Duplication, ExecMode, Policy, RunOutcome, Sfc, StageFlowCache};
use nfc_nf::acl::synth;
use nfc_nf::Nf;
use nfc_packet::traffic::{FlowSpec, SizeDist, TrafficGenerator, TrafficSpec};
use nfc_packet::Batch;
use proptest::prelude::*;

/// A fully cache-eligible chain: protocol classifier + enforcing ACL
/// firewall (exercises `Drop` verdicts), then a load balancer
/// (exercises multi-port `Forward` verdicts and lineage simulation).
fn cacheable_chain(rules: usize, seed: u64) -> Sfc {
    Sfc::new(
        "fw-lb",
        vec![
            Nf::firewall_with("fw", synth::generate(rules, seed), true),
            Nf::load_balancer("lb", 4),
        ],
    )
}

/// Zipf-skewed traffic over a bounded flow population — the regime the
/// fast path is built for.
fn skewed_traffic(seed: u64, flows: usize, skew: f64) -> TrafficGenerator {
    let spec = TrafficSpec::udp(SizeDist::Fixed(256)).with_flows(FlowSpec {
        count: flows.max(1),
        ..FlowSpec::default().with_skew(skew)
    });
    TrafficGenerator::new(spec, seed)
}

#[allow(clippy::too_many_arguments)]
fn run_cache_mode(
    sfc: Sfc,
    policy: Policy,
    exec: ExecMode,
    cache: FlowCacheMode,
    seed: u64,
    flows: usize,
    skew: f64,
    n_batches: usize,
) -> (RunOutcome, Vec<Batch>) {
    let mut dep = Deployment::new(sfc, policy)
        .with_batch_size(128)
        .with_exec_mode(exec)
        .with_duplication(Duplication::Cow)
        .with_flow_cache(cache);
    dep.run_collect(&mut skewed_traffic(seed, flows, skew), n_batches)
}

/// The fast path may charge a different simulated cost (hits are nearly
/// free), so unlike the engine-determinism suite the temporal report is
/// *not* compared — only the functional outputs.
fn assert_functionally_equal(
    label: &str,
    off: &(RunOutcome, Vec<Batch>),
    on: &(RunOutcome, Vec<Batch>),
) {
    assert_eq!(
        off.1, on.1,
        "{label}: egress batches must be byte-identical"
    );
    assert_eq!(
        off.0.stage_stats, on.0.stage_stats,
        "{label}: per-element statistics must match"
    );
    assert_eq!(off.0.egress_packets, on.0.egress_packets, "{label}");
    assert_eq!(off.0.egress_bytes, on.0.egress_bytes, "{label}");
    assert_eq!(off.0.merge_conflicts, on.0.merge_conflicts, "{label}");
}

#[test]
fn cache_on_matches_cache_off_across_seeds() {
    for seed in [3u64, 17, 99] {
        let off = run_cache_mode(
            cacheable_chain(256, 1),
            Policy::CpuOnly,
            ExecMode::Serial,
            FlowCacheMode::Off,
            seed,
            256,
            1.0,
            8,
        );
        let on = run_cache_mode(
            cacheable_chain(256, 1),
            Policy::CpuOnly,
            ExecMode::Serial,
            FlowCacheMode::On { capacity: 4096 },
            seed,
            256,
            1.0,
            8,
        );
        assert_functionally_equal(&format!("seed {seed}"), &off, &on);
        assert_eq!(
            off.0.flow_cache,
            Default::default(),
            "cache-off runs must not touch the flow table"
        );
        assert!(
            on.0.flow_cache.hits > 0,
            "seed {seed}: skewed traffic over 256 flows must produce cache hits \
             (got {:?})",
            on.0.flow_cache
        );
    }
}

#[test]
fn tiny_cache_evicts_but_stays_correct() {
    // Capacity far below the flow population: CLOCK eviction churns the
    // table constantly, yet the differential must still hold exactly.
    let off = run_cache_mode(
        cacheable_chain(128, 2),
        Policy::CpuOnly,
        ExecMode::Serial,
        FlowCacheMode::Off,
        7,
        512,
        0.8,
        10,
    );
    let on = run_cache_mode(
        cacheable_chain(128, 2),
        Policy::CpuOnly,
        ExecMode::Serial,
        FlowCacheMode::On { capacity: 64 },
        7,
        512,
        0.8,
        10,
    );
    assert_functionally_equal("tiny cache", &off, &on);
    assert!(
        on.0.flow_cache.evictions > 0,
        "a 64-entry table under 512 flows must evict (got {:?})",
        on.0.flow_cache
    );
}

#[test]
fn cache_composes_with_reorganized_parallel_execution() {
    // Full NFCompass policy re-organizes the chain into parallel
    // branches; each cache-eligible stage gets its own flow table and
    // the merged egress must still be bit-identical, even under the
    // parallel worker pool.
    let off = run_cache_mode(
        cacheable_chain(256, 3),
        Policy::nfcompass(),
        ExecMode::Serial,
        FlowCacheMode::Off,
        11,
        128,
        1.2,
        8,
    );
    for (label, exec) in [
        ("serial", ExecMode::Serial),
        ("parallel4", ExecMode::Parallel { threads: 4 }),
    ] {
        let on = run_cache_mode(
            cacheable_chain(256, 3),
            Policy::nfcompass(),
            exec,
            FlowCacheMode::On { capacity: 2048 },
            11,
            128,
            1.2,
            8,
        );
        assert_functionally_equal(&format!("reorg/{label}"), &off, &on);
        assert!(on.0.flow_cache.hits > 0, "reorg/{label}: expected hits");
    }
}

/// Mid-stream ACL rule-table swap: a stage cache built against one
/// compiled graph must detect the new graph's configuration hash,
/// invalidate every memoized verdict in one generation bump, and then
/// reproduce the new graph's slow path exactly.
#[test]
fn acl_rule_swap_invalidates_by_generation() {
    let compile = |rules_seed: u64| {
        let nf = Nf::firewall_with("fw", synth::generate(64, rules_seed), true);
        let entry = nf.entry();
        let run = nf.into_graph().compile().expect("firewall compiles");
        (entry, run)
    };
    let batches: Vec<Batch> = {
        let mut traffic = skewed_traffic(5, 128, 1.0);
        (0..6).map(|_| traffic.batch(128)).collect()
    };

    let (entry, mut cached_run) = compile(1);
    let mut cache = StageFlowCache::new(1024, &cached_run);

    // Phase 1: fill the cache against rule table 1 and check the fast
    // path against a fresh slow-path compile of the same rules.
    let (_, mut slow_run) = compile(1);
    for batch in &batches {
        let fast = cache.process(&mut cached_run, entry, batch.clone());
        let slow = slow_run.push_merged(entry, batch.clone());
        assert!(
            !fast.fell_back,
            "fully verdict-capable graph must not fall back"
        );
        assert_eq!(fast.out, slow, "rules 1: fast path must match slow path");
    }
    assert_eq!(slow_run.stats(), cached_run.stats(), "rules 1: statistics");
    assert!(cache.counters().hits > 0, "phase 1 must produce hits");
    assert_eq!(cache.counters().invalidations, 0);

    // Phase 2: swap in a different rule table mid-stream. Same cache,
    // new graph — every stale verdict must be invalidated at once.
    let (_, mut swapped_run) = compile(2);
    let (_, mut slow_run2) = compile(2);
    assert_ne!(
        cached_run.flow_config_hash(),
        swapped_run.flow_config_hash(),
        "different ACL rules must change the flow configuration hash"
    );
    for batch in &batches {
        let fast = cache.process(&mut swapped_run, entry, batch.clone());
        let slow = slow_run2.push_merged(entry, batch.clone());
        assert_eq!(fast.out, slow, "rules 2: fast path must match slow path");
    }
    assert_eq!(
        slow_run2.stats(),
        swapped_run.stats(),
        "rules 2: statistics"
    );
    assert_eq!(
        cache.counters().invalidations,
        1,
        "exactly one O(1) generation bump per configuration swap"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary (seed, skew, flow population, capacity): the cached run
    /// reproduces the uncached run's egress bytes and per-element
    /// statistics exactly.
    #[test]
    fn flow_cache_differential_holds_for_arbitrary_traffic(
        seed in 1u64..10_000,
        skew in 0.0f64..1.5,
        flows in 16usize..512,
        capacity in 16usize..2048,
    ) {
        let off = run_cache_mode(
            cacheable_chain(128, 9),
            Policy::CpuOnly,
            ExecMode::Serial,
            FlowCacheMode::Off,
            seed,
            flows,
            skew,
            4,
        );
        let on = run_cache_mode(
            cacheable_chain(128, 9),
            Policy::CpuOnly,
            ExecMode::Serial,
            FlowCacheMode::On { capacity },
            seed,
            flows,
            skew,
            4,
        );
        prop_assert_eq!(&off.1, &on.1);
        prop_assert_eq!(&off.0.stage_stats, &on.0.stage_stats);
        prop_assert_eq!(off.0.egress_packets, on.0.egress_packets);
        prop_assert_eq!(off.0.egress_bytes, on.0.egress_bytes);
    }
}
