//! Regression tests pinning the paper's headline result *shapes*: who
//! wins, where optima fall, where crossovers appear. Absolute numbers are
//! simulator-specific; these assertions are what EXPERIMENTS.md reports.

use nfc_core::allocator::PartitionAlgo;
use nfc_core::{Deployment, Policy, Sfc};
use nfc_hetero::GpuMode;
use nfc_nf::Nf;
use nfc_packet::traffic::{IpVersion, SizeDist, TrafficGenerator, TrafficSpec};

fn run(sfc: Sfc, policy: Policy, pkt: usize, batch: usize, n: usize) -> nfc_core::RunOutcome {
    let mut dep = Deployment::new(sfc, policy).with_batch_size(batch);
    let mut t = TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(pkt)), 42);
    dep.run(&mut t, n)
}

fn gbps(o: &nfc_core::RunOutcome) -> f64 {
    o.report.throughput_gbps
}

/// Figure 6 shape: IPsec has an interior offload optimum; IPv4 is best
/// on the CPU alone.
#[test]
fn fig6_shape_offload_optima() {
    let sweep = |name: &str, pkt: usize| -> Vec<f64> {
        (0..=10)
            .map(|r| {
                let ratio = r as f64 / 10.0;
                let policy = if ratio == 0.0 {
                    Policy::CpuOnly
                } else {
                    Policy::FixedRatio {
                        ratio,
                        mode: GpuMode::Persistent,
                    }
                };
                let nf = match name {
                    "IPv4" => Nf::ipv4_forwarder("r", 500, 1),
                    _ => Nf::ipsec("e"),
                };
                gbps(&run(Sfc::new(name, vec![nf]), policy, pkt, 256, 15))
            })
            .collect()
    };
    let ipsec = sweep("IPsec", 64);
    let best = ipsec
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap();
    assert!(
        (5..=9).contains(&best),
        "IPsec optimum interior near 70-80%, got {}0%: {ipsec:?}",
        best
    );
    let ipv4 = sweep("IPv4", 64);
    let best4 = ipv4
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap();
    assert_eq!(best4, 0, "IPv4 best CPU-only: {ipv4:?}");
}

/// Figure 7 shape: GPU-only beats CPU-only for a single IPsec, but loses
/// once the chain reaches length 3 (aggregated offload overheads).
#[test]
fn fig7_shape_gpu_benefit_inverts_with_length() {
    let chain = |n: usize| {
        Sfc::new(
            "c",
            (0..n)
                .map(|i| match i % 3 {
                    0 => Nf::ipsec(format!("e{i}")),
                    1 => Nf::ipv4_forwarder(format!("r{i}"), 200, 1),
                    _ => Nf::ids(format!("d{i}")),
                })
                .collect(),
        )
    };
    let gpu = Policy::GpuOnly {
        mode: GpuMode::LaunchPerBatch,
    };
    let g1 = gbps(&run(chain(1), gpu, 64, 256, 15));
    let c1 = gbps(&run(chain(1), Policy::CpuOnly, 64, 256, 15));
    assert!(g1 > c1, "single IPsec: GPU {g1} should beat CPU {c1}");
    let g3 = gbps(&run(chain(3), gpu, 64, 256, 15));
    let c3 = gbps(&run(chain(3), Policy::CpuOnly, 64, 256, 15));
    assert!(
        g3 < c3,
        "length-3 chain: GPU {g3} should fall behind CPU {c3}"
    );
}

/// Figure 8 shape: CPU DPI throughput declines past batch 256 while IPv4
/// keeps improving (cache-footprint knee).
#[test]
fn fig8_shape_dpi_cache_knee() {
    let dpi = |batch| {
        gbps(&run(
            Sfc::new("dpi", vec![Nf::dpi("d")]),
            Policy::CpuOnly,
            1024,
            batch,
            15,
        ))
    };
    assert!(dpi(256) > dpi(1024), "DPI: {} vs {}", dpi(256), dpi(1024));
    let v4 = |batch| {
        gbps(&run(
            Sfc::new("v4", vec![Nf::ipv4_forwarder("r", 200, 1)]),
            Policy::CpuOnly,
            64,
            batch,
            15,
        ))
    };
    assert!(v4(1024) >= v4(64) * 0.95);
}

/// Figure 14 shape: parallelization (config b) cuts latency versus the
/// sequential chain (config a); synthesis (config d) beats b on
/// throughput.
#[test]
fn fig14_shape_reorganization_wins() {
    let chain = || Sfc::new("ids4", (0..4).map(|i| Nf::ids(format!("i{i}"))).collect());
    let mk = |width: usize, synth: bool| Policy::ReorgOnly {
        max_branches: width,
        synthesize: synth,
        ratio: 0.0,
        mode: GpuMode::Persistent,
    };
    let a = run(chain(), mk(1, false), 64, 128, 15);
    let b = run(chain(), mk(4, false), 64, 128, 15);
    let d = run(chain(), mk(2, true), 64, 128, 15);
    assert!(
        b.report.p50_latency_ns < a.report.p50_latency_ns,
        "parallel latency {} < sequential {}",
        b.report.p50_latency_ns,
        a.report.p50_latency_ns
    );
    assert!(
        gbps(&d) > gbps(&b),
        "synthesis {} should beat pure parallelization {}",
        gbps(&d),
        gbps(&b)
    );
    assert_eq!(d.effective_length, 1);
}

/// Figure 15 shape: GTA reaches at least 90% of the exhaustive Optimal
/// and never loses to both CPU-only and GPU-only.
#[test]
fn fig15_shape_gta_near_optimal() {
    let gta = Policy::NfCompass {
        algo: PartitionAlgo::Kl,
        max_branches: 1,
        synthesize: false,
    };
    for (label, nfs) in [
        ("IPsec", vec![Nf::ipsec("e")]),
        ("IPsec+IDS", vec![Nf::ipsec("e"), Nf::ids("d")]),
    ] {
        let spec = TrafficSpec::udp(SizeDist::Imix);
        let run_p = |p: Policy| {
            let mut dep = Deployment::new(Sfc::new(label, nfs.clone()), p).with_batch_size(256);
            let mut t = TrafficGenerator::new(spec.clone(), 17);
            dep.run(&mut t, 15)
        };
        let g = gbps(&run_p(gta));
        let o = gbps(&run_p(Policy::Optimal));
        let c = gbps(&run_p(Policy::CpuOnly));
        let u = gbps(&run_p(Policy::GpuOnly {
            mode: GpuMode::Persistent,
        }));
        assert!(g >= 0.9 * o, "{label}: GTA {g} < 90% of optimal {o}");
        assert!(g >= c.min(u), "{label}: GTA {g} vs cpu {c} / gpu {u}");
    }
}

/// Figure 17 shape: the CPU baseline's throughput collapses with ACL
/// size while NFCompass stays nearly flat and keeps lower latency.
#[test]
fn fig17_shape_acl_scaling() {
    let chain = |rules: usize| {
        Sfc::new(
            "real",
            vec![
                Nf::firewall("fw", rules, 21),
                Nf::ipv4_forwarder("router", 500, 22),
                Nf::nat("nat", [203, 0, 113, 1]),
            ],
        )
    };
    let fc_200 = run(chain(200), Policy::CpuOnly, 64, 256, 15);
    let fc_10k = run(chain(10_000), Policy::CpuOnly, 64, 256, 15);
    let nc_200 = run(chain(200), Policy::nfcompass(), 64, 256, 15);
    let nc_10k = run(chain(10_000), Policy::nfcompass(), 64, 256, 15);
    let fc_drop = 1.0 - gbps(&fc_10k) / gbps(&fc_200);
    let nc_drop = 1.0 - gbps(&nc_10k) / gbps(&nc_200);
    assert!(fc_drop > 0.5, "FastClick-like should collapse: {fc_drop}");
    assert!(
        nc_drop < 0.3,
        "NFCompass should stay nearly flat: {nc_drop}"
    );
    assert!(
        nc_10k.report.mean_latency_ns < fc_10k.report.mean_latency_ns / 1.4,
        "NFCompass latency {} should be >=1.4x lower than {}",
        nc_10k.report.mean_latency_ns,
        fc_10k.report.mean_latency_ns
    );
}

/// IPv6 is heavier than IPv4 per packet (7 hash probes vs 2 loads), so
/// its CPU throughput is lower at the same offered load — the premise of
/// the paper's IPv6 characterization.
#[test]
fn ipv6_costs_more_than_ipv4() {
    let v4 = run(
        Sfc::new("v4", vec![Nf::ipv4_forwarder("r", 500, 1)]),
        Policy::CpuOnly,
        64,
        256,
        15,
    );
    let spec = TrafficSpec::udp(SizeDist::Fixed(64)).with_ip_version(IpVersion::V6);
    let mut dep = Deployment::new(
        Sfc::new("v6", vec![Nf::ipv6_forwarder("r6", 500, 1)]),
        Policy::CpuOnly,
    )
    .with_batch_size(256);
    let mut t = TrafficGenerator::new(spec, 42);
    let v6 = dep.run(&mut t, 15);
    assert!(gbps(&v4) > gbps(&v6));
}
