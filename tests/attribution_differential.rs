//! Attribution differential testing: the latency-attribution layer is a
//! pure observer and an exact decomposition.
//!
//! Three properties are pinned:
//!
//! 1. **Bit-identity** — enabling attribution (telemetry) changes no
//!    observable output: egress bytes, per-element statistics and
//!    simulated timings are bit-identical with telemetry on or off,
//!    under serial, parallel and adaptive execution.
//! 2. **Exact reconstruction** — for every attributed batch the five
//!    buckets (compute / transfer / queue / drain / merge-wait) sum to
//!    the batch's end-to-end simulated latency.
//! 3. **Trace-driven calibration** — `nfc_telemetry::calibrate` re-fits
//!    the cost-model constants from a calibration-shaped trace (varied
//!    batch and packet sizes decorrelating packets from bytes) to
//!    within 5% of the `calib.rs` anchors.

use nfc_core::flowcache::FlowCacheMode;
use nfc_core::{
    ControllerConfig, Deployment, Duplication, ExecMode, Policy, RunOutcome, Sfc, TelemetryMode,
};
use nfc_hetero::{calib, GpuMode, PlatformConfig};
use nfc_nf::acl::synth;
use nfc_nf::Nf;
use nfc_packet::traffic::{FlowSpec, PayloadPolicy, SizeDist, TrafficGenerator, TrafficSpec};
use nfc_packet::Batch;
use nfc_telemetry::{attribution, batch_rows, calibrate, CalibAnchors, Event, EventKind};

// ---------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------

/// Cacheable + offloadable chain (same shape as the telemetry
/// differential test) so one run exercises every event source.
fn mixed_chain() -> Sfc {
    Sfc::new(
        "fw-lb",
        vec![
            Nf::firewall_with("fw", synth::generate(128, 1), true),
            Nf::load_balancer("lb", 4),
        ],
    )
}

fn skewed_traffic(pkt: usize, seed: u64) -> TrafficGenerator {
    let spec = TrafficSpec::udp(SizeDist::Fixed(pkt)).with_flows(FlowSpec {
        count: 128,
        ..FlowSpec::default().with_skew(1.0)
    });
    TrafficGenerator::new(spec, seed)
}

fn run_fixed(exec: ExecMode, telemetry: TelemetryMode, seed: u64) -> (RunOutcome, Vec<Batch>) {
    let policy = Policy::FixedRatio {
        ratio: 0.5,
        mode: GpuMode::Persistent,
    };
    let mut dep = Deployment::new(mixed_chain(), policy)
        .with_batch_size(128)
        .with_exec_mode(exec)
        .with_duplication(Duplication::Cow)
        .with_flow_cache(FlowCacheMode::On { capacity: 2048 })
        .with_telemetry(telemetry);
    dep.run_collect(&mut skewed_traffic(256, seed), 12)
}

/// The adaptive DPI workload from `examples/adaptive_offload.rs`,
/// shrunk: a benign phase then a hostile (all-matching) phase, so the
/// controller triggers live re-partitions mid-run.
fn adaptive_phases() -> Vec<TrafficGenerator> {
    [0.0, 1.0]
        .iter()
        .enumerate()
        .map(|(i, &ratio)| {
            TrafficGenerator::new(
                TrafficSpec::udp(SizeDist::Fixed(512))
                    .with_rate_gbps(40.0)
                    .with_payload(PayloadPolicy::MatchRatio {
                        patterns: Nf::default_ids_signatures(),
                        ratio,
                    }),
                41 + i as u64,
            )
        })
        .collect()
}

fn run_adaptive(
    telemetry: TelemetryMode,
) -> (Vec<RunOutcome>, nfc_core::ControllerReport, Vec<Batch>) {
    let sfc = Sfc::new("dpi", vec![Nf::dpi("dpi")]);
    let mut dep = Deployment::new(sfc, Policy::nfcompass())
        .with_batch_size(128)
        .with_telemetry(telemetry);
    let cfg = ControllerConfig {
        epoch_batches: 8,
        ..ControllerConfig::default()
    };
    dep.run_adaptive_collect(&mut adaptive_phases(), 24, &cfg)
}

fn assert_outcome_bits(label: &str, off: &RunOutcome, on: &RunOutcome) {
    assert_eq!(off.stage_stats, on.stage_stats, "{label}: element stats");
    assert_eq!(off.egress_packets, on.egress_packets, "{label}");
    assert_eq!(off.egress_bytes, on.egress_bytes, "{label}");
    for (name, a, b) in [
        (
            "throughput",
            off.report.throughput_gbps,
            on.report.throughput_gbps,
        ),
        (
            "mean latency",
            off.report.mean_latency_ns,
            on.report.mean_latency_ns,
        ),
        (
            "p99 latency",
            off.report.p99_latency_ns,
            on.report.p99_latency_ns,
        ),
    ] {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{label}: simulated {name} must be bit-identical"
        );
    }
}

// ---------------------------------------------------------------------
// 1. Bit-identity with attribution on vs off
// ---------------------------------------------------------------------

#[test]
fn attribution_never_perturbs_serial_parallel_or_adaptive_runs() {
    for (label, exec) in [
        ("serial", ExecMode::Serial),
        ("parallel4", ExecMode::Parallel { threads: 4 }),
    ] {
        let off = run_fixed(exec, TelemetryMode::Off, 17);
        let on = run_fixed(exec, TelemetryMode::Memory, 17);
        assert_eq!(off.1, on.1, "{label}: egress batches must be identical");
        assert_outcome_bits(label, &off.0, &on.0);
        let summary = on.0.telemetry.expect("telemetry-on digest");
        assert!(
            summary
                .trace
                .iter()
                .any(|ev| matches!(ev.kind, EventKind::BatchAttribution { .. })),
            "{label}: attribution instants recorded"
        );
    }

    let off = run_adaptive(TelemetryMode::Off);
    let on = run_adaptive(TelemetryMode::Memory);
    assert_eq!(off.2, on.2, "adaptive: egress batches must be identical");
    assert_eq!(
        off.1, on.1,
        "adaptive: controller report (triggers, swaps, timeline) must be identical"
    );
    assert_eq!(off.0.len(), on.0.len());
    for (i, (a, b)) in off.0.iter().zip(on.0.iter()).enumerate() {
        assert_outcome_bits(&format!("adaptive phase {i}"), a, b);
    }
}

// ---------------------------------------------------------------------
// 2. Exact bucket reconstruction
// ---------------------------------------------------------------------

fn assert_rows_reconstruct(label: &str, events: &[Event], expect_batches: u64) {
    let rows = batch_rows(events);
    assert_eq!(
        rows.len() as u64,
        expect_batches,
        "{label}: one attribution row per batch"
    );
    for row in &rows {
        assert!(row.packets > 0, "{label}: egress packets joined");
        assert!(row.e2e_ns > 0.0, "{label}: positive end-to-end latency");
        let b = &row.buckets;
        for (name, v) in [
            ("compute", b.compute_ns),
            ("transfer", b.transfer_ns),
            ("queue", b.queue_ns),
            ("drain", b.drain_ns),
            ("merge_wait", b.merge_wait_ns),
        ] {
            assert!(
                v >= 0.0,
                "{label}: bucket {name} must be non-negative, got {v}"
            );
        }
        let total = b.total();
        let tol = 1e-9 * row.e2e_ns.max(1.0);
        assert!(
            (total - row.e2e_ns).abs() <= tol,
            "{label}: buckets must sum to e2e exactly: {} vs {} (batch {})",
            total,
            row.e2e_ns,
            row.seq
        );
    }
    let report = attribution(events);
    assert_eq!(report.batches, rows.len() as u64, "{label}");
    let sum_e2e: f64 = rows.iter().map(|r| r.e2e_ns).sum();
    assert!(
        (report.total.total() - sum_e2e).abs() <= 1e-6 * sum_e2e.max(1.0),
        "{label}: aggregate buckets must reconstruct total e2e"
    );
}

#[test]
fn buckets_sum_to_end_to_end_latency_exactly() {
    for (label, exec) in [
        ("serial", ExecMode::Serial),
        ("parallel4", ExecMode::Parallel { threads: 4 }),
    ] {
        let (outcome, _) = run_fixed(exec, TelemetryMode::Memory, 29);
        let summary = outcome.telemetry.expect("digest");
        assert_eq!(summary.dropped, 0, "{label}: no events dropped");
        assert_rows_reconstruct(label, &summary.trace, 12);
    }

    // The adaptive run adds live plan swaps, so drain windows and epoch
    // markers are present; reconstruction must still be exact.
    let (outcomes, report, _) = run_adaptive(TelemetryMode::Memory);
    let summary = outcomes[0].telemetry.as_ref().expect("digest");
    assert_eq!(summary.dropped, 0, "adaptive: no events dropped");
    assert_rows_reconstruct("adaptive", &summary.trace, 48);
    assert!(
        report.applied() > 0,
        "the hostile phase must trigger at least one applied swap"
    );
    let epochs = summary
        .trace
        .iter()
        .filter(|ev| matches!(ev.kind, EventKind::Epoch { .. }))
        .count() as u64;
    assert_eq!(epochs, report.epochs, "one epoch marker per epoch");
}

// ---------------------------------------------------------------------
// 3. Trace-driven calibration refresh
// ---------------------------------------------------------------------

/// Re-tags one run's batch lineage so traces from independent runs can
/// be concatenated without seq collisions (each run restarts its batch
/// counter from the same user base).
fn salt_batches(events: Vec<Event>, salt: u64) -> Vec<Event> {
    events
        .into_iter()
        .map(|mut ev| {
            if ev.batch != 0 {
                ev.batch += salt;
            }
            match &mut ev.kind {
                EventKind::BatchIngress { seq, .. }
                | EventKind::BatchEgress { seq, .. }
                | EventKind::BatchAttribution { seq, .. } => *seq += salt,
                _ => {}
            }
            ev
        })
        .collect()
}

/// One calibration-sweep point: a 3-stage IPsec chain (crypto kernels
/// are divergence-free, so kernel time is exactly affine in packets and
/// bytes) at a fixed offload ratio. Three persistent stages on two GPU
/// queues force stages 0 and 2 to share a queue, so every batch pays a
/// context switch — giving the teardown fit its samples.
fn calibration_run(batch: usize, pkt: usize, ratio: f64, seed: u64) -> Vec<Event> {
    let sfc = Sfc::new(
        "ipsec3",
        vec![Nf::ipsec("enc-a"), Nf::ipsec("enc-b"), Nf::ipsec("enc-c")],
    );
    let policy = Policy::FixedRatio {
        ratio,
        mode: GpuMode::Persistent,
    };
    let mut dep = Deployment::new(sfc, policy)
        .with_batch_size(batch)
        .with_exec_mode(ExecMode::Serial)
        .with_flow_cache(FlowCacheMode::Off)
        .with_telemetry(TelemetryMode::Memory);
    let outcome = dep.run(&mut skewed_traffic(pkt, seed), 8);
    let summary = outcome.telemetry.expect("digest");
    assert_eq!(summary.dropped, 0, "calibration run must not drop events");
    summary.trace
}

#[test]
fn calibrate_recovers_cost_constants_within_5_percent() {
    // Vary batch size and packet size independently so kernel packet
    // counts and byte counts decorrelate — the dispatch-intercept fit
    // needs a full-rank (packets, bytes) design matrix. Offloaded
    // packet counts stay well above the point where the kernel
    // throughput term dominates the latency floor.
    let sweep = [
        (128usize, 256usize, 0.5f64),
        (160, 512, 0.45),
        (224, 768, 0.6),
        (256, 1024, 0.4),
    ];
    let mut events: Vec<Event> = Vec::new();
    for (i, &(batch, pkt, ratio)) in sweep.iter().enumerate() {
        let trace = calibration_run(batch, pkt, ratio, 97 + i as u64);
        events.extend(salt_batches(trace, (i as u64 + 1) << 32));
    }

    let p = PlatformConfig::hpca18();
    let anchors = CalibAnchors {
        gpu_ctx_switch_ns: calib::GPU_CONTEXT_SWITCH_NS,
        gpu_dispatch_ns: calib::GPU_PERSISTENT_DISPATCH_NS,
        pcie_dma_latency_ns: p.pcie.dma_latency_ns,
        pcie_bw_gbs: p.pcie.bw_gbs,
        io_cycles_per_packet: calib::IO_CYCLES_PER_PACKET,
        ns_per_cycle: p.cpu.ns_per_cycle(),
        gpu_residency_pressure: calib::GPU_RESIDENCY_PRESSURE,
    };
    let estimates = calibrate(&events, &anchors);
    assert_eq!(estimates.len(), 6);
    for est in &estimates {
        // The ipsec3 sweep never pushes a device past half of its SM
        // slots, so the pressure fit legitimately has no pressured
        // samples here; it gets its own dedicated test below.
        if est.name == "gpu_residency_pressure" {
            continue;
        }
        assert!(
            est.samples > 0,
            "{}: the calibration sweep must produce samples",
            est.name
        );
        assert!(
            est.observed.is_finite(),
            "{}: fit must converge, got {}",
            est.name,
            est.observed
        );
        let drift = (est.observed - est.anchored).abs() / est.anchored;
        assert!(
            drift <= 0.05,
            "{}: observed {} vs anchored {} drifts {:.2}% (> 5%)",
            est.name,
            est.observed,
            est.anchored,
            drift * 100.0
        );
    }
}

/// One pressure-sweep point: an all-GPU persistent IPsec chain of
/// `stages` stages at batch 1024 (8 SM slots per kernel against 2 × 24
/// available). Two stages spread to one kernel per device (33 %
/// occupancy, unpressured baseline); four stages to two per device
/// (66 % occupancy, pressured). Same traffic seed both times, so each
/// batch's kernel work shape `(packets, bytes, kernels)` matches across
/// the runs and the pressure fit compares like with like.
fn pressure_run(stages: usize, seed: u64) -> Vec<Event> {
    let sfc = Sfc::new(
        "ipsec-pressure",
        (0..stages)
            .map(|i| Nf::ipsec(format!("enc-{i}")))
            .collect::<Vec<_>>(),
    );
    let policy = Policy::GpuOnly {
        mode: GpuMode::Persistent,
    };
    let mut dep = Deployment::new(sfc, policy)
        .with_batch_size(1024)
        .with_exec_mode(ExecMode::Serial)
        .with_flow_cache(FlowCacheMode::Off)
        .with_telemetry(TelemetryMode::Memory);
    let outcome = dep.run(&mut skewed_traffic(512, seed), 6);
    let summary = outcome.telemetry.expect("digest");
    assert_eq!(summary.dropped, 0, "pressure run must not drop events");
    summary.trace
}

#[test]
fn calibrate_refits_residency_pressure_from_observed_traces() {
    let mut events = salt_batches(pressure_run(2, 1234), 1 << 32);
    events.extend(salt_batches(pressure_run(4, 1234), 2 << 32));

    let p = PlatformConfig::hpca18();
    let anchors = CalibAnchors {
        gpu_ctx_switch_ns: calib::GPU_CONTEXT_SWITCH_NS,
        gpu_dispatch_ns: calib::GPU_PERSISTENT_DISPATCH_NS,
        pcie_dma_latency_ns: p.pcie.dma_latency_ns,
        pcie_bw_gbs: p.pcie.bw_gbs,
        io_cycles_per_packet: calib::IO_CYCLES_PER_PACKET,
        ns_per_cycle: p.cpu.ns_per_cycle(),
        gpu_residency_pressure: calib::GPU_RESIDENCY_PRESSURE,
    };
    let estimates = calibrate(&events, &anchors);
    let est = estimates
        .iter()
        .find(|e| e.name == "gpu_residency_pressure")
        .expect("pressure estimate present");
    assert!(
        est.samples > 0,
        "the 4-stage run must contribute pressured kernel samples"
    );
    // The simulator stretches pressured kernels by the exact knee model,
    // but the trace only reports occupancy to whole-percent resolution
    // (66 % for 16/24 slots), so the fitted slope lands slightly above
    // the anchor: 0.116667 / 0.32 ≈ 0.3646. A 10 % drift bound pins the
    // fit while leaving room for the quantization.
    let drift = (est.observed - est.anchored).abs() / est.anchored;
    assert!(
        drift <= 0.10,
        "gpu_residency_pressure: observed {} vs anchored {} drifts {:.2}% (> 10%)",
        est.observed,
        est.anchored,
        drift * 100.0
    );
}
