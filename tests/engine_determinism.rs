//! Execution-engine determinism: the worker pool and CoW duplication are
//! pure wall-clock optimizations. Serial deep-copy, serial CoW and
//! parallel CoW runs of the same deployment must agree on every egress
//! byte, every per-element statistic, and every simulated timing.

use nfc_core::{Deployment, Duplication, ExecMode, Policy, RunOutcome, Sfc};
use nfc_hetero::GpuMode;
use nfc_nf::Nf;
use nfc_packet::traffic::{PayloadPolicy, SizeDist, TrafficGenerator, TrafficSpec};
use nfc_packet::Batch;
use proptest::prelude::*;

/// A mixed chain the analyzer re-organizes: read-only firewall and IDS
/// parallelize; IDS also drops, exercising drop-wins merging.
fn mixed_chain() -> Sfc {
    Sfc::new(
        "fw-ids-fw",
        vec![
            Nf::firewall("fw-a", 64, 1),
            Nf::ids("ids"),
            Nf::firewall("fw-b", 64, 2),
        ],
    )
}

fn traffic(seed: u64, pkt: usize, match_ratio: f64) -> TrafficGenerator {
    let spec = if match_ratio > 0.0 {
        TrafficSpec::udp(SizeDist::Fixed(pkt)).with_payload(PayloadPolicy::MatchRatio {
            patterns: Nf::default_ids_signatures(),
            ratio: match_ratio,
        })
    } else {
        TrafficSpec::udp(SizeDist::Fixed(pkt))
    };
    TrafficGenerator::new(spec, seed)
}

#[allow(clippy::too_many_arguments)]
fn run_mode(
    sfc: Sfc,
    policy: Policy,
    exec: ExecMode,
    dup: Duplication,
    seed: u64,
    pkt: usize,
    match_ratio: f64,
    n_batches: usize,
) -> (RunOutcome, Vec<Batch>) {
    let mut dep = Deployment::new(sfc, policy)
        .with_batch_size(128)
        .with_exec_mode(exec)
        .with_duplication(dup);
    dep.run_collect(&mut traffic(seed, pkt, match_ratio), n_batches)
}

fn assert_equivalent(label: &str, a: &(RunOutcome, Vec<Batch>), b: &(RunOutcome, Vec<Batch>)) {
    assert_eq!(a.1, b.1, "{label}: egress batches must be byte-identical");
    assert_eq!(
        a.0.stage_stats, b.0.stage_stats,
        "{label}: per-element statistics must match"
    );
    assert_eq!(a.0.egress_packets, b.0.egress_packets, "{label}");
    assert_eq!(a.0.egress_bytes, b.0.egress_bytes, "{label}");
    assert_eq!(a.0.merge_conflicts, b.0.merge_conflicts, "{label}");
    // The temporal replay preserves schedule order, so even the
    // simulated timeline is bit-identical.
    assert_eq!(
        a.0.report.throughput_gbps.to_bits(),
        b.0.report.throughput_gbps.to_bits(),
        "{label}: simulated throughput must be bit-identical"
    );
    assert_eq!(
        a.0.report.p99_latency_ns.to_bits(),
        b.0.report.p99_latency_ns.to_bits(),
        "{label}: simulated latency must be bit-identical"
    );
}

#[test]
fn parallel_equals_serial_across_seeds() {
    for seed in [3u64, 17, 99] {
        let baseline = run_mode(
            mixed_chain(),
            Policy::nfcompass(),
            ExecMode::Serial,
            Duplication::DeepCopy,
            seed,
            256,
            0.3,
            12,
        );
        for (label, exec, dup) in [
            ("serial/cow", ExecMode::Serial, Duplication::Cow),
            (
                "parallel2/cow",
                ExecMode::Parallel { threads: 2 },
                Duplication::Cow,
            ),
            (
                "parallel8/deepcopy",
                ExecMode::Parallel { threads: 8 },
                Duplication::DeepCopy,
            ),
        ] {
            let got = run_mode(
                mixed_chain(),
                Policy::nfcompass(),
                exec,
                dup,
                seed,
                256,
                0.3,
                12,
            );
            assert_equivalent(&format!("seed {seed}, {label}"), &baseline, &got);
        }
    }
}

#[test]
fn forced_four_branch_join_is_deterministic_under_repetition() {
    // Stress the branch join: four parallel branches of identical NFs,
    // repeated with an oversubscribed pool. Every repetition must
    // reproduce the first run exactly (no ordering or refcount races).
    let mk = || {
        Sfc::new(
            "ipsec4",
            (0..4).map(|i| Nf::ipsec(format!("ip{i}"))).collect(),
        )
    };
    let policy = Policy::ReorgOnly {
        max_branches: 4,
        synthesize: false,
        ratio: 0.0,
        mode: GpuMode::Persistent,
    };
    let branches = vec![vec![0], vec![1], vec![2], vec![3]];
    let run_once = |exec: ExecMode| {
        let mut dep = Deployment::new(mk(), policy)
            .with_batch_size(64)
            .with_forced_branches(branches.clone())
            .with_exec_mode(exec)
            .with_duplication(Duplication::Cow);
        dep.run_collect(&mut traffic(7, 512, 0.0), 6)
    };
    let reference = run_once(ExecMode::Serial);
    assert_eq!(reference.0.width, 4);
    assert_eq!(reference.0.merge_conflicts, 0, "identical NFs must merge");
    for rep in 0..8 {
        let got = run_once(ExecMode::Parallel { threads: 16 });
        assert_equivalent(&format!("stress rep {rep}"), &reference, &got);
    }
}

#[test]
fn dropped_packets_merge_identically_in_parallel() {
    // IDS drops matching packets inside one branch; drop-wins merging
    // must give the same survivor set in every mode.
    let baseline = run_mode(
        mixed_chain(),
        Policy::nfcompass(),
        ExecMode::Serial,
        Duplication::DeepCopy,
        5,
        512,
        1.0,
        8,
    );
    let par = run_mode(
        mixed_chain(),
        Policy::nfcompass(),
        ExecMode::Parallel { threads: 4 },
        Duplication::Cow,
        5,
        512,
        1.0,
        8,
    );
    assert!(
        baseline.0.egress_packets < 8 * 128,
        "full-match traffic must see IDS drops"
    );
    assert_equivalent("drop merge", &baseline, &par);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any (seed, packet size, thread count) combination: parallel CoW
    /// execution reproduces the serial deep-copy engine exactly.
    #[test]
    fn engine_equivalence_holds_for_arbitrary_traffic(
        seed in 1u64..10_000,
        pkt in 64usize..1200,
        threads in 2usize..9,
    ) {
        let a = run_mode(
            mixed_chain(),
            Policy::nfcompass(),
            ExecMode::Serial,
            Duplication::DeepCopy,
            seed,
            pkt,
            0.2,
            4,
        );
        let b = run_mode(
            mixed_chain(),
            Policy::nfcompass(),
            ExecMode::Parallel { threads },
            Duplication::Cow,
            seed,
            pkt,
            0.2,
            4,
        );
        prop_assert_eq!(&a.1, &b.1);
        prop_assert_eq!(&a.0.stage_stats, &b.0.stage_stats);
        prop_assert_eq!(
            a.0.report.throughput_gbps.to_bits(),
            b.0.report.throughput_gbps.to_bits()
        );
    }
}
