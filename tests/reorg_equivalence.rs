//! Property-based equivalence tests for the SFC re-organization
//! machinery: whatever the orchestrator parallelizes and the synthesizer
//! merges must process packets exactly like the sequential chain.

use nfc_core::orchestrator::{merge_branch_batches, ReorgSfc};
use nfc_core::synthesizer::synthesize;
use nfc_core::Sfc;
use nfc_nf::Nf;
use nfc_packet::traffic::{PayloadPolicy, SizeDist, TrafficGenerator, TrafficSpec};
use nfc_packet::Batch;
use proptest::prelude::*;

/// The pool of NFs the generator draws chains from. All are
/// deterministic; indices match `build_nf`.
const NF_POOL: &[&str] = &["fw", "ids", "dpi", "probe", "lb", "proxy", "nat"];

fn build_nf(kind: &str, i: usize) -> Nf {
    match kind {
        "fw" => Nf::firewall(format!("fw{i}"), 100, 1),
        "ids" => Nf::ids(format!("ids{i}")),
        "dpi" => Nf::dpi(format!("dpi{i}")),
        "probe" => Nf::probe(format!("probe{i}")),
        "lb" => Nf::load_balancer(format!("lb{i}"), 2),
        "proxy" => Nf::proxy(format!("proxy{i}")),
        "nat" => Nf::nat(format!("nat{i}"), [203, 0, 113, 1]),
        other => panic!("unknown {other}"),
    }
}

fn drive(nf: &Nf, batch: Batch) -> Batch {
    let mut run = nf.graph().clone().compile().expect("compiles");
    run.push_merged(nf.entry(), batch)
}

fn run_sequential(nfs: &[Nf], batch: Batch) -> Batch {
    let mut cur = batch;
    for nf in nfs {
        cur = drive(nf, cur);
    }
    cur
}

fn run_reorganized(nfs: &[Nf], plan: &ReorgSfc, batch: Batch) -> (Batch, u64) {
    if plan.width() == 1 {
        return (run_sequential(nfs, batch), 0);
    }
    let branch_outputs: Vec<Batch> = plan
        .branches()
        .iter()
        .map(|branch| {
            let members: Vec<Nf> = branch.iter().map(|&i| nfs[i].clone()).collect();
            run_sequential(&members, batch.clone())
        })
        .collect();
    merge_branch_batches(&batch, &branch_outputs)
}

fn traffic_batch(seed: u64, n: usize) -> Batch {
    let spec = TrafficSpec::udp(SizeDist::Fixed(256)).with_payload(PayloadPolicy::MatchRatio {
        patterns: Nf::default_ids_signatures(),
        ratio: 0.3,
    });
    TrafficGenerator::new(spec, seed).batch(n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever branch structure the analyzer derives, running it in
    /// parallel with XOR merge matches the sequential chain, byte for
    /// byte — for every random chain drawn from the NF pool.
    #[test]
    fn analyzer_parallelization_preserves_semantics(
        picks in proptest::collection::vec(0usize..NF_POOL.len(), 1..5),
        width in 2usize..5,
        seed in 0u64..1000,
    ) {
        let nfs: Vec<Nf> = picks
            .iter()
            .enumerate()
            .map(|(i, &k)| build_nf(NF_POOL[k], i))
            .collect();
        let sfc = Sfc::new("prop", nfs.clone());
        let plan = ReorgSfc::analyze(&sfc, width);
        let batch = traffic_batch(seed, 48);

        let seq_out = run_sequential(&nfs, batch.clone());
        // Fresh clones for the parallel run (stateful elements).
        let nfs2: Vec<Nf> = picks
            .iter()
            .enumerate()
            .map(|(i, &k)| build_nf(NF_POOL[k], i))
            .collect();
        let (par_out, conflicts) = run_reorganized(&nfs2, &plan, batch);

        prop_assert_eq!(conflicts, 0, "plan {:?}", plan.branches());
        prop_assert_eq!(seq_out.len(), par_out.len(), "plan {:?}", plan.branches());
        for (a, b) in seq_out.iter().zip(par_out.iter()) {
            prop_assert_eq!(a.meta.seq, b.meta.seq);
            prop_assert_eq!(a.data(), b.data());
        }
    }

    /// Synthesizing any stateless sequential pair preserves semantics.
    /// (NAT is excluded: its port allocation order is an internal detail
    /// that dedup may legally change.)
    #[test]
    fn synthesis_preserves_semantics(
        a in 0usize..6,
        b in 0usize..6,
        seed in 0u64..1000,
    ) {
        let x = build_nf(NF_POOL[a], 0);
        let y = build_nf(NF_POOL[b], 1);
        let (merged, _) = synthesize(&[&x, &y]);
        let batch = traffic_batch(seed, 48);

        let x2 = build_nf(NF_POOL[a], 0);
        let y2 = build_nf(NF_POOL[b], 1);
        let seq_out = drive(&y2, drive(&x2, batch.clone()));
        let syn_out = drive(&merged, batch);

        prop_assert_eq!(seq_out.len(), syn_out.len());
        for (p, q) in seq_out.iter().zip(syn_out.iter()) {
            prop_assert_eq!(p.meta.seq, q.meta.seq);
            prop_assert_eq!(p.data(), q.data());
        }
    }

    /// Branch assignment is always a permutation preserving in-branch
    /// order, and effective length never exceeds the chain length.
    #[test]
    fn branch_assignment_is_well_formed(
        picks in proptest::collection::vec(0usize..NF_POOL.len(), 1..7),
        width in 1usize..6,
    ) {
        let nfs: Vec<Nf> = picks
            .iter()
            .enumerate()
            .map(|(i, &k)| build_nf(NF_POOL[k], i))
            .collect();
        let sfc = Sfc::new("prop", nfs);
        let plan = ReorgSfc::analyze(&sfc, width);
        let mut all: Vec<usize> = plan.branches().iter().flatten().copied().collect();
        for b in plan.branches() {
            prop_assert!(b.windows(2).all(|w| w[0] < w[1]), "order in {b:?}");
        }
        all.sort_unstable();
        prop_assert_eq!(all, (0..picks.len()).collect::<Vec<_>>());
        prop_assert!(plan.width() <= width.max(1));
        prop_assert!(plan.effective_length() <= picks.len());
    }
}
