//! Integration tests for the stateful substrate inside full deployments:
//! stream-aware IDS chains, the stateful-past-dropper rule end to end,
//! and degenerate-chain robustness.

use nfc_core::{Deployment, Policy, ReorgSfc, Sfc};
use nfc_nf::Nf;
use nfc_packet::traffic::{SizeDist, TrafficGenerator, TrafficSpec};

#[test]
fn stream_ids_deploys_and_passes_clean_tcp() {
    // Well-formed, in-order TCP flows flow through reassembly + streaming
    // match untouched.
    let sfc = Sfc::new("sids", vec![Nf::stream_ids("sids")]);
    let mut dep = Deployment::new(sfc, Policy::CpuOnly).with_batch_size(64);
    let mut traffic = TrafficGenerator::new(TrafficSpec::tcp(SizeDist::Fixed(256)), 3);
    let out = dep.run(&mut traffic, 10);
    // The generator emits each flow's packets with identical seq numbers
    // (no TCP state machine), so only a flow's *first* packet is new;
    // repeats are treated as retransmissions and dropped. Of 1024 flows,
    // the 4 warm-up batches (256 packets) already consumed some flow
    // firsts; among the 640 measured packets roughly half are firsts.
    assert!(
        (0.35..0.75).contains(&(out.egress_packets as f64 / 640.0)),
        "flow-first fraction plausible, got {}",
        out.egress_packets
    );
    assert!(out.report.throughput_gbps > 0.0);
}

#[test]
fn stream_ids_is_never_parallelized_with_writers() {
    // stream-ids is stateful + dropping: the analyzer keeps it sequential
    // with a NAT that follows it.
    let sfc = Sfc::new(
        "chain",
        vec![Nf::stream_ids("sids"), Nf::nat("nat", [203, 0, 113, 1])],
    );
    let plan = ReorgSfc::analyze(&sfc, 4);
    assert_eq!(plan.width(), 1, "branches: {:?}", plan.branches());
}

#[test]
fn probe_parallelizes_with_stream_ids() {
    // A pure reader ahead of the stateful dropper is fine in parallel.
    let sfc = Sfc::new(
        "chain",
        vec![
            Nf::probe("probe"),
            Nf::dpi("dpi"),
            Nf::firewall("fw", 50, 1),
        ],
    );
    let plan = ReorgSfc::analyze(&sfc, 4);
    assert_eq!(plan.width(), 3);
}

#[test]
fn single_element_chains_run_under_every_policy() {
    for policy in [Policy::CpuOnly, Policy::Optimal, Policy::nfcompass()] {
        let sfc = Sfc::new("one", vec![Nf::probe("p")]);
        let mut dep = Deployment::new(sfc, policy).with_batch_size(32);
        let mut traffic = TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(64)), 1);
        let out = dep.run(&mut traffic, 5);
        assert_eq!(out.egress_packets, 5 * 32, "{}", policy.label());
    }
}

#[test]
fn shaper_in_chain_limits_throughput() {
    use nfc_click::ElementGraph;
    use nfc_nf::stateful::TokenBucketShaper;
    // A 1 Gbps shaper in front of a probe: egress rate must respect the
    // token bucket even though 40 Gbps is offered.
    let mut g = ElementGraph::new();
    // 1 Gbps sustained, 30 KB burst (small so the burst allowance does
    // not dominate a short measurement window).
    let shaper = g.add(TokenBucketShaper::new(125_000_000.0, 30_000.0));
    let probe = g.add(nfc_nf::elements::Probe::new());
    g.connect(shaper, 0, probe).expect("wiring");
    let nf = Nf::from_graph("shaped", nfc_nf::NfKind::Probe, g);
    let mut run = nf.graph().clone().compile().expect("compiles");
    let mut traffic = TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(1500)), 7);
    let mut offered_bytes = 0usize;
    let mut passed_bytes = 0usize;
    let mut last_ns = 0u64;
    for _ in 0..50 {
        let batch = traffic.batch(256);
        last_ns = batch.iter().last().map(|p| p.meta.arrival_ns).unwrap_or(0);
        offered_bytes += batch.total_bytes();
        let out = run.push_at(nf.entry(), batch, last_ns);
        passed_bytes += out.iter().map(|e| e.batch.total_bytes()).sum::<usize>();
    }
    let secs = last_ns as f64 / 1e9;
    let egress_gbps = passed_bytes as f64 * 8.0 / secs / 1e9;
    let offered_gbps = offered_bytes as f64 * 8.0 / secs / 1e9;
    assert!(offered_gbps > 30.0, "offered {offered_gbps}");
    assert!(
        egress_gbps < 1.4,
        "shaper must cap near 1 Gbps, got {egress_gbps}"
    );
}

#[test]
fn reorg_only_policy_honors_stateful_rule_by_default() {
    // Without forced branches, ReorgOnly uses the analyzer and so keeps
    // IDS -> NAT sequential.
    let sfc = Sfc::new("x", vec![Nf::ids("ids"), Nf::nat("nat", [1, 2, 3, 4])]);
    let mut dep = Deployment::new(
        sfc,
        Policy::ReorgOnly {
            max_branches: 4,
            synthesize: false,
            ratio: 0.0,
            mode: nfc_hetero::GpuMode::Persistent,
        },
    )
    .with_batch_size(32);
    let mut traffic = TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(128)), 2);
    let out = dep.run(&mut traffic, 5);
    assert_eq!(out.width, 1);
    assert_eq!(out.effective_length, 2);
}
