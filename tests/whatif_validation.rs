//! What-if causal-profiling validation: the coz-style virtual speedup
//! computed from a recorded trace must agree with an *actual* ablated
//! run.
//!
//! The chain is four single-element NFs with fixed per-packet cycle
//! costs, one of which ("hot") dominates. `whatif(trace, "hot", 2.0)`
//! predicts the chain latency if the hot element were 2x faster; the
//! ablated run *makes* it exactly 2x faster (half the cycles — the
//! temporal layer charges cycles deterministically, so the ablation is
//! exact) and re-measures. The acceptance bound from the issue: the
//! predicted mean end-to-end latency is within 15% of the measured one.

use nfc_click::element::RunCtx;
use nfc_click::{Element, ElementActions, ElementClass, ElementGraph};
use nfc_core::{Deployment, Policy, Sfc, TelemetryMode};
use nfc_nf::{Nf, NfKind};
use nfc_packet::traffic::{FlowSpec, SizeDist, TrafficGenerator, TrafficSpec};
use nfc_packet::Batch;
use nfc_telemetry::{batch_rows, whatif};

/// A pass-through element whose only effect is a fixed per-packet cycle
/// charge on the temporal layer, so an ablation that halves `cycles` is
/// *exactly* a 2x speedup of this element.
#[derive(Debug, Clone)]
struct Spin {
    name: String,
    cycles: f64,
}

impl Element for Spin {
    fn name(&self) -> &str {
        &self.name
    }
    fn class(&self) -> ElementClass {
        ElementClass::Inspector
    }
    fn actions(&self) -> ElementActions {
        ElementActions::read_header()
    }
    fn process(&mut self, batch: Batch, _ctx: &mut RunCtx) -> Vec<Batch> {
        vec![batch]
    }
    fn clone_box(&self) -> Box<dyn Element> {
        Box::new(self.clone())
    }
    fn base_cost(&self) -> f64 {
        self.cycles
    }
}

fn spin_nf(name: &str, cycles: f64) -> Nf {
    let mut g = ElementGraph::new();
    g.add(Spin {
        name: name.to_string(),
        cycles,
    });
    Nf::from_graph(name, NfKind::Probe, g)
}

/// Four NFs forced onto four branches so each gets its own worker lane
/// (`cpu:<name>`); only the hot NF's lane name contains "hot".
fn chain(hot_cycles: f64) -> Sfc {
    Sfc::new(
        "whatif-chain",
        vec![
            spin_nf("hot", hot_cycles),
            spin_nf("cold-a", 400.0),
            spin_nf("cold-b", 400.0),
            spin_nf("cold-c", 400.0),
        ],
    )
}

fn traffic(seed: u64) -> TrafficGenerator {
    let spec = TrafficSpec::udp(SizeDist::Fixed(256))
        .with_rate_gbps(2.0)
        .with_flows(FlowSpec {
            count: 64,
            ..FlowSpec::default()
        });
    TrafficGenerator::new(spec, seed)
}

fn run_chain(hot_cycles: f64) -> nfc_telemetry::TelemetrySummary {
    let mut dep = Deployment::new(chain(hot_cycles), Policy::CpuOnly)
        .with_batch_size(64)
        .with_forced_branches(vec![vec![0], vec![1], vec![2], vec![3]])
        .with_telemetry(TelemetryMode::Memory)
        .without_slo();
    let (outcome, _) = dep.run_collect(&mut traffic(7), 12);
    outcome.telemetry.expect("memory telemetry digest")
}

fn mean_e2e(trace: &[nfc_telemetry::Event]) -> f64 {
    let rows = batch_rows(trace);
    assert!(!rows.is_empty(), "trace must carry attributed batches");
    rows.iter().map(|r| r.e2e_ns).sum::<f64>() / rows.len() as f64
}

#[test]
fn whatif_prediction_matches_actual_ablation_within_15_percent() {
    let baseline = run_chain(4_000.0);
    let report = whatif(&baseline.trace, "hot", 2.0);

    // The virtual speedup targeted exactly the hot NF's worker lane.
    assert_eq!(
        report.matched_resources,
        vec!["cpu:hot".to_string()],
        "only the hot lane may match"
    );
    assert!(report.batches > 0, "estimate must aggregate real batches");
    assert!(
        report.speedup > 1.2,
        "a dominant element at 2x must predict a real chain speedup, got {}",
        report.speedup
    );
    assert!(
        (report.baseline_mean_e2e_ns - mean_e2e(&baseline.trace)).abs()
            < 1e-6 * report.baseline_mean_e2e_ns,
        "whatif baseline must equal the trace's measured mean"
    );

    // Actually ablate: half the cycles is exactly "hot is 2x faster".
    let ablated = run_chain(2_000.0);
    let measured = mean_e2e(&ablated.trace);
    let rel_err = (report.predicted_mean_e2e_ns - measured).abs() / measured;
    assert!(
        rel_err < 0.15,
        "whatif predicted {:.0} ns, ablated run measured {:.0} ns ({:.1}% off)",
        report.predicted_mean_e2e_ns,
        measured,
        100.0 * rel_err
    );

    // Per-epoch drill-down is populated and self-consistent.
    for ep in &report.epochs {
        assert!(ep.predicted_ns <= ep.baseline_ns * (1.0 + 1e-9));
    }
}

#[test]
fn whatif_with_unit_factor_is_identity() {
    let baseline = run_chain(4_000.0);
    let report = whatif(&baseline.trace, "hot", 1.0);
    assert!(
        (report.speedup - 1.0).abs() < 1e-9,
        "factor 1.0 must predict no change, got {}",
        report.speedup
    );
    // An element no lane matches predicts no change either.
    let none = whatif(&baseline.trace, "no-such-element", 3.0);
    assert!(none.matched_resources.is_empty());
    assert!((none.speedup - 1.0).abs() < 1e-9);
}
