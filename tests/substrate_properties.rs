//! Property-based tests of the functional substrates: checksums, crypto,
//! matching, lookup and NAT invariants hold for arbitrary inputs.

use nfc_click::element::RunCtx;
use nfc_click::Element;
use nfc_nf::ac::AhoCorasick;
use nfc_nf::crypto::{hmac_sha1, Aes128, Sha1};
use nfc_nf::elements::{IpsecDecrypt, IpsecEncrypt, IpsecSa, Nat};
use nfc_nf::lpm::{Dir24_8, RouteV4, TrieV4, WaldvogelV6};
use nfc_packet::{checksum, Batch, Packet};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn checksum_incremental_equals_recompute(
        data in proptest::collection::vec(any::<u8>(), 20..200),
        idx in 0usize..9,
        new_word in any::<u16>(),
    ) {
        let mut buf = data.clone();
        let off = (idx * 2).min(buf.len() - 2);
        let old = u16::from_be_bytes([buf[off], buf[off + 1]]);
        let c0 = checksum::checksum(&buf);
        buf[off..off + 2].copy_from_slice(&new_word.to_be_bytes());
        prop_assert_eq!(checksum::update16(c0, old, new_word), checksum::checksum(&buf));
    }

    #[test]
    fn aes_ctr_is_an_involution(
        key in any::<[u8; 16]>(),
        nonce in any::<u32>(),
        iv in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let aes = Aes128::new(&key);
        let mut buf = data.clone();
        aes.ctr_apply(nonce, iv, &mut buf);
        aes.ctr_apply(nonce, iv, &mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn sha1_incremental_chunking_is_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..500),
        chunk in 1usize..64,
    ) {
        let mut h = Sha1::new();
        for c in data.chunks(chunk) {
            h.update(c);
        }
        prop_assert_eq!(h.finish(), Sha1::digest(&data));
    }

    #[test]
    fn hmac_distinguishes_keys_and_messages(
        key in proptest::collection::vec(any::<u8>(), 1..80),
        msg in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let tag = hmac_sha1(&key, &msg);
        // Flipping one message byte changes the tag.
        if !msg.is_empty() {
            let mut other = msg.clone();
            other[0] ^= 1;
            prop_assert_ne!(hmac_sha1(&key, &other), tag);
        }
        // Flipping one key byte changes the tag.
        let mut k2 = key.clone();
        k2[0] ^= 1;
        prop_assert_ne!(hmac_sha1(&k2, &msg), tag);
    }

    #[test]
    fn aho_corasick_agrees_with_naive_search(
        patterns in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..6), 1..6),
        haystack in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let ac = AhoCorasick::new(patterns.clone());
        let got = ac.is_match(&haystack);
        let expect = patterns.iter().any(|p| {
            !p.is_empty() && haystack.windows(p.len()).any(|w| w == p.as_slice())
        });
        prop_assert_eq!(got, expect);
        // Count agreement too.
        let naive: usize = patterns
            .iter()
            .map(|p| haystack.windows(p.len()).filter(|w| *w == p.as_slice()).count())
            .sum();
        prop_assert_eq!(ac.find_all(&haystack).len(), naive);
    }

    #[test]
    fn dir24_8_agrees_with_trie(
        routes in proptest::collection::vec(
            (any::<u32>(), 0u8..=32, any::<u32>()), 1..40),
        probes in proptest::collection::vec(any::<u32>(), 20),
    ) {
        let routes: Vec<RouteV4> = routes
            .into_iter()
            .map(|(p, len, nh)| RouteV4 {
                prefix: if len == 0 { 0 } else { p >> (32 - u32::from(len)) << (32 - u32::from(len)) },
                len,
                next_hop: nh % 1000,
            })
            .collect();
        // Later duplicates of the same prefix/len overwrite earlier ones
        // in the trie; deduplicate to keep both structures consistent.
        let mut seen = std::collections::HashSet::new();
        let routes: Vec<RouteV4> = routes
            .into_iter()
            .rev()
            .filter(|r| seen.insert((r.prefix, r.len)))
            .collect();
        let mut trie = TrieV4::new();
        for r in &routes {
            trie.insert(*r);
        }
        let dir = Dir24_8::from_routes(&routes, 16);
        for a in probes {
            prop_assert_eq!(dir.lookup(a), trie.lookup(a), "addr {:#x}", a);
        }
    }

    #[test]
    fn waldvogel_agrees_with_linear_scan(
        raw in proptest::collection::vec((any::<u128>(), 1u8..=64, any::<u32>()), 1..30),
        probes in proptest::collection::vec(any::<u128>(), 15),
    ) {
        let routes: Vec<nfc_nf::lpm::RouteV6> = raw
            .into_iter()
            .map(|(p, len, nh)| nfc_nf::lpm::RouteV6 {
                prefix: p >> (128 - u32::from(len)) << (128 - u32::from(len)),
                len,
                next_hop: nh % 1000,
            })
            .collect();
        let mut seen = std::collections::HashSet::new();
        let routes: Vec<_> = routes
            .into_iter()
            .rev()
            .filter(|r| seen.insert((r.prefix, r.len)))
            .collect();
        let w = WaldvogelV6::build(&routes);
        for a in probes {
            prop_assert_eq!(w.lookup(a), WaldvogelV6::lookup_linear(&routes, a));
        }
        // Probe exact prefixes as addresses too (boundary cases).
        for r in routes.iter().take(10) {
            prop_assert_eq!(
                w.lookup(r.prefix),
                WaldvogelV6::lookup_linear(&routes, r.prefix)
            );
        }
    }

    #[test]
    fn ipsec_roundtrip_arbitrary_payloads(
        payload in proptest::collection::vec(any::<u8>(), 0..800),
        spi in any::<u32>(),
    ) {
        let mut sa = IpsecSa::example();
        sa.spi = spi;
        let mut enc = IpsecEncrypt::new(sa.clone());
        let mut dec = IpsecDecrypt::new(sa);
        let pkt = Packet::ipv4_udp([10, 0, 0, 1], [10, 0, 0, 2], 1, 2, &payload);
        let batch: Batch = [pkt].into_iter().collect();
        let mut ctx = RunCtx::default();
        let enc_out = enc.process(batch, &mut ctx).pop().expect("one port");
        let dec_out = dec.process(enc_out, &mut ctx).pop().expect("one port");
        prop_assert_eq!(dec_out.len(), 1);
        prop_assert_eq!(dec_out.get(0).unwrap().l4_payload().unwrap(), &payload[..]);
    }

    #[test]
    fn nat_preserves_checksum_validity(
        src in any::<[u8; 4]>(),
        sport in 1u16..65535,
        dport in 1u16..65535,
        payload in proptest::collection::vec(any::<u8>(), 0..100),
    ) {
        prop_assume!(src != [203, 0, 113, 1]);
        let mut nat = Nat::new([203, 0, 113, 1]);
        let pkt = Packet::ipv4_udp(src, [172, 16, 0, 9], sport, dport, &payload);
        let batch: Batch = [pkt].into_iter().collect();
        let mut ctx = RunCtx::default();
        let out = nat.process(batch, &mut ctx).pop().expect("one port");
        let p = out.get(0).unwrap();
        // IPv4 header checksum still verifies.
        let hdr = &p.data()[14..34];
        prop_assert_eq!(checksum::fold(checksum::sum(hdr, 0)), 0xFFFF);
        // UDP checksum still verifies (unless it was 0).
        let udp = p.udp().unwrap();
        if udp.checksum != 0 {
            let ip = p.ipv4().unwrap();
            let l4 = p.l4_offset().unwrap();
            let ph = checksum::pseudo_header_v4(
                ip.src, ip.dst, 17, (p.len() - l4) as u16);
            prop_assert_eq!(
                checksum::fold(checksum::sum(&p.data()[l4..], ph)), 0xFFFF);
        }
    }

    #[test]
    fn batch_split_merge_roundtrip(
        n in 0usize..64,
        ways in 1usize..5,
    ) {
        let batch: Batch = (0..n)
            .map(|i| {
                let mut p = Packet::ipv4_udp([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, b"x");
                p.meta.seq = i as u64;
                p
            })
            .collect();
        let parts = batch.clone().split_by(ways, |i, _| i % ways);
        let merged = Batch::merge_ordered(parts);
        prop_assert_eq!(merged.len(), n);
        let seqs: Vec<u64> = merged.iter().map(|p| p.meta.seq).collect();
        prop_assert_eq!(seqs, (0..n as u64).collect::<Vec<_>>());
    }
}
