//! Wide-word SIMD differential smoke: the SWAR/fixed-width kernels are
//! a pure execution-path choice inside the lane sweep. With lanes on,
//! forcing SIMD on and off must leave every observable — egress bytes,
//! per-element statistics, simulated timings, controller decisions —
//! identical under serial, parallel and adaptive execution. CI runs
//! this as the simd-on differential gate.

use nfc_core::{
    ControllerConfig, Deployment, Duplication, ExecMode, Policy, RunOutcome, Sfc, TelemetryMode,
};
use nfc_hetero::GpuMode;
use nfc_nf::acl::synth;
use nfc_nf::Nf;
use nfc_packet::traffic::{FlowSpec, PayloadPolicy, SizeDist, TrafficGenerator, TrafficSpec};
use nfc_packet::Batch;

/// Header-heavy chain: every stage has a wide-word kernel (batched ACL
/// compare, 8-wide LPM resolve, SWAR TTL decrement in the NAT/forward
/// rewrite), so a simd-on run actually exercises each ported kernel.
fn header_chain() -> Sfc {
    Sfc::new(
        "fw-rt-nat",
        vec![
            Nf::firewall_with("fw", synth::generate(128, 1), true),
            Nf::ipv4_forwarder("rt", 64, 3),
            Nf::nat("nat", [203, 0, 113, 1]),
        ],
    )
}

fn skewed_traffic(seed: u64) -> TrafficGenerator {
    let spec = TrafficSpec::udp(SizeDist::Fixed(256)).with_flows(FlowSpec {
        count: 128,
        ..FlowSpec::default().with_skew(1.0)
    });
    TrafficGenerator::new(spec, seed)
}

fn run_fixed(exec: ExecMode, simd: bool, seed: u64) -> (RunOutcome, Vec<Batch>) {
    let policy = Policy::FixedRatio {
        ratio: 0.5,
        mode: GpuMode::Persistent,
    };
    let mut dep = Deployment::new(header_chain(), policy)
        .with_batch_size(128)
        .with_exec_mode(exec)
        .with_duplication(Duplication::Cow)
        .with_lanes(true)
        .with_simd(simd);
    dep.run_collect(&mut skewed_traffic(seed), 12)
}

fn adaptive_phases() -> Vec<TrafficGenerator> {
    [0.0, 1.0]
        .iter()
        .enumerate()
        .map(|(i, &ratio)| {
            TrafficGenerator::new(
                TrafficSpec::udp(SizeDist::Fixed(512))
                    .with_rate_gbps(40.0)
                    .with_payload(PayloadPolicy::MatchRatio {
                        patterns: Nf::default_ids_signatures(),
                        ratio,
                    }),
                41 + i as u64,
            )
        })
        .collect()
}

fn run_adaptive(simd: bool) -> (Vec<RunOutcome>, nfc_core::ControllerReport, Vec<Batch>) {
    // DPI ahead of a firewall: the payload stage keeps the per-packet
    // path while the firewall sweeps lanes with batched compares,
    // exercising the mixed case under live re-partitioning.
    let sfc = Sfc::new("dpi-fw", vec![Nf::dpi("dpi"), Nf::firewall("fw", 128, 1)]);
    let mut dep = Deployment::new(sfc, Policy::nfcompass())
        .with_batch_size(128)
        .with_lanes(true)
        .with_simd(simd);
    let cfg = ControllerConfig {
        epoch_batches: 8,
        ..ControllerConfig::default()
    };
    dep.run_adaptive_collect(&mut adaptive_phases(), 24, &cfg)
}

fn assert_outcome_bits(label: &str, off: &RunOutcome, on: &RunOutcome) {
    assert_eq!(off.stage_stats, on.stage_stats, "{label}: element stats");
    assert_eq!(off.egress_packets, on.egress_packets, "{label}");
    assert_eq!(off.egress_bytes, on.egress_bytes, "{label}");
    for (name, a, b) in [
        (
            "throughput",
            off.report.throughput_gbps,
            on.report.throughput_gbps,
        ),
        (
            "mean latency",
            off.report.mean_latency_ns,
            on.report.mean_latency_ns,
        ),
        (
            "p99 latency",
            off.report.p99_latency_ns,
            on.report.p99_latency_ns,
        ),
    ] {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{label}: simulated {name} must be bit-identical simd on/off"
        );
    }
}

#[test]
fn simd_never_perturbs_serial_or_parallel_runs() {
    for (label, exec) in [
        ("serial", ExecMode::Serial),
        ("parallel4", ExecMode::Parallel { threads: 4 }),
    ] {
        let off = run_fixed(exec, false, 17);
        let on = run_fixed(exec, true, 17);
        assert_eq!(off.1, on.1, "{label}: egress must be byte-identical");
        assert_outcome_bits(label, &off.0, &on.0);
    }
}

#[test]
fn simd_never_perturbs_adaptive_runs() {
    let off = run_adaptive(false);
    let on = run_adaptive(true);
    assert_eq!(off.2, on.2, "adaptive: egress must be byte-identical");
    assert_eq!(
        off.1, on.1,
        "adaptive: controller report (triggers, swaps, timeline) must be identical simd on/off"
    );
    for (i, (a, b)) in off.0.iter().zip(on.0.iter()).enumerate() {
        assert_outcome_bits(&format!("adaptive phase {i}"), a, b);
    }
}

#[test]
fn simd_never_perturbs_telemetry_traces() {
    // SIMD on with telemetry recording: the digest (event counts and
    // categories) must match the simd-off instrumented run, so traces
    // stay comparable across the flag.
    let collect = |simd: bool| {
        let policy = Policy::FixedRatio {
            ratio: 0.5,
            mode: GpuMode::Persistent,
        };
        let mut dep = Deployment::new(header_chain(), policy)
            .with_batch_size(128)
            .with_lanes(true)
            .with_simd(simd)
            .with_telemetry(TelemetryMode::Memory);
        dep.run_collect(&mut skewed_traffic(23), 8)
    };
    let (out_off, egress_off) = collect(false);
    let (out_on, egress_on) = collect(true);
    assert_eq!(egress_off, egress_on);
    let d_off = out_off.telemetry.expect("digest");
    let d_on = out_on.telemetry.expect("digest");
    assert_eq!(d_off.events, d_on.events, "event counts differ");
    assert_eq!(d_off.dropped, d_on.dropped);
}
