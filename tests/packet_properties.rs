//! Property-based tests for the packet substrate: header round-trips,
//! checksum validity of constructed packets, and traffic-generator
//! invariants.

use nfc_packet::headers::{ip_proto, Ethernet, Ipv4, Ipv6, Tcp, Udp};
use nfc_packet::traffic::{
    FlowSpec, IpVersion, L4Proto, PayloadPolicy, SizeDist, TrafficGenerator, TrafficSpec,
};
use nfc_packet::{checksum, Packet};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ipv4_header_roundtrip(
        dscp in any::<u8>(),
        total_len in 20u16..1500,
        ident in any::<u16>(),
        ttl in 1u8..=255,
        proto in any::<u8>(),
        src in any::<[u8; 4]>(),
        dst in any::<[u8; 4]>(),
    ) {
        let mut ip = Ipv4 {
            dscp_ecn: dscp,
            total_len,
            ident,
            flags_frag: 0x4000,
            ttl,
            protocol: proto,
            checksum: 0,
            src,
            dst,
        };
        ip.compute_checksum();
        let mut buf = [0u8; Ipv4::LEN];
        ip.emit(&mut buf);
        prop_assert_eq!(Ipv4::parse(&buf).unwrap(), ip);
        // The emitted header self-verifies.
        prop_assert_eq!(checksum::fold(checksum::sum(&buf, 0)), 0xFFFF);
    }

    #[test]
    fn ipv6_header_roundtrip(
        tc in any::<u8>(),
        flow in 0u32..(1 << 20),
        payload_len in any::<u16>(),
        nh in any::<u8>(),
        hop in any::<u8>(),
        src in any::<[u8; 16]>(),
        dst in any::<[u8; 16]>(),
    ) {
        let ip6 = Ipv6 {
            traffic_class: tc,
            flow_label: flow,
            payload_len,
            next_header: nh,
            hop_limit: hop,
            src,
            dst,
        };
        let mut buf = [0u8; Ipv6::LEN];
        ip6.emit(&mut buf);
        prop_assert_eq!(Ipv6::parse(&buf).unwrap(), ip6);
    }

    #[test]
    fn udp_tcp_roundtrip(
        sp in any::<u16>(),
        dp in any::<u16>(),
        len in 8u16..1500,
        csum in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        flags in any::<u8>(),
    ) {
        let udp = Udp { src_port: sp, dst_port: dp, len, checksum: csum };
        let mut buf = [0u8; Udp::LEN];
        udp.emit(&mut buf);
        prop_assert_eq!(Udp::parse(&buf).unwrap(), udp);

        let tcp = Tcp {
            src_port: sp,
            dst_port: dp,
            seq,
            ack,
            flags,
            window: len,
            checksum: csum,
            urgent: 0,
        };
        let mut buf = [0u8; Tcp::LEN];
        tcp.emit(&mut buf);
        prop_assert_eq!(Tcp::parse(&buf).unwrap(), tcp);
    }

    #[test]
    fn constructed_packets_always_self_verify(
        src in any::<[u8; 4]>(),
        dst in any::<[u8; 4]>(),
        sp in any::<u16>(),
        dp in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..600),
        tcp in any::<bool>(),
    ) {
        let pkt = if tcp {
            Packet::ipv4_tcp(src, dst, sp, dp, &payload, 0x10)
        } else {
            Packet::ipv4_udp(src, dst, sp, dp, &payload)
        };
        // Ethernet + IP parse.
        prop_assert!(pkt.is_ipv4());
        let ip = pkt.ipv4().unwrap();
        prop_assert_eq!(ip.total_len as usize, pkt.len() - Ethernet::LEN);
        // IP header checksum verifies.
        let hdr = &pkt.data()[Ethernet::LEN..Ethernet::LEN + Ipv4::LEN];
        prop_assert_eq!(checksum::fold(checksum::sum(hdr, 0)), 0xFFFF);
        // L4 checksum verifies over pseudo header.
        let l4 = pkt.l4_offset().unwrap();
        let proto = if tcp { ip_proto::TCP } else { ip_proto::UDP };
        let ph = checksum::pseudo_header_v4(ip.src, ip.dst, proto, (pkt.len() - l4) as u16);
        prop_assert_eq!(checksum::fold(checksum::sum(&pkt.data()[l4..], ph)), 0xFFFF);
        // Payload round-trips.
        prop_assert_eq!(pkt.l4_payload().unwrap(), &payload[..]);
    }

    #[test]
    fn generator_respects_size_and_flow_bounds(
        pkt_size in 64usize..1500,
        n_flows in 1usize..64,
        tcp in any::<bool>(),
        v6 in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut spec = TrafficSpec {
            l4: if tcp { L4Proto::Tcp } else { L4Proto::Udp },
            ip: if v6 { IpVersion::V6 } else { IpVersion::V4 },
            size: SizeDist::Fixed(pkt_size),
            payload: PayloadPolicy::Random,
            flows: FlowSpec {
                count: n_flows,
                ..FlowSpec::default()
            },
            rate_gbps: 40.0,
        };
        // v6 TCP is generated as v6 UDP by the generator; normalize.
        if v6 {
            spec.l4 = L4Proto::Udp;
        }
        let mut gen = TrafficGenerator::new(spec, seed);
        let batch = gen.batch(64);
        let mut flows = std::collections::HashSet::new();
        let mut last_arrival = 0u64;
        for p in &batch {
            prop_assert!(p.len() >= 42 && p.len() <= pkt_size.max(62));
            let t = p.five_tuple().unwrap();
            flows.insert(t);
            prop_assert!(p.meta.arrival_ns >= last_arrival);
            last_arrival = p.meta.arrival_ns;
            prop_assert_eq!(p.meta.flow_hash, t.rss_hash());
        }
        prop_assert!(flows.len() <= n_flows);
    }

    #[test]
    fn incremental_ttl_decrement_chain_stays_valid(
        src in any::<[u8; 4]>(),
        dst in any::<[u8; 4]>(),
        hops in 1u8..30,
    ) {
        // Repeated incremental checksum updates never drift from a full
        // recompute (a router chain decrementing TTL at every hop).
        let pkt = Packet::ipv4_udp(src, dst, 9, 10, b"payload");
        let mut ip = pkt.ipv4().unwrap();
        prop_assume!(ip.ttl > hops);
        for _ in 0..hops {
            let old = u16::from_be_bytes([ip.ttl, ip.protocol]);
            ip.ttl -= 1;
            let new = u16::from_be_bytes([ip.ttl, ip.protocol]);
            ip.checksum = checksum::update16(ip.checksum, old, new);
        }
        let incremental = ip.checksum;
        ip.compute_checksum();
        prop_assert_eq!(incremental, ip.checksum);
    }
}
