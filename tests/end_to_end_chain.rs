//! End-to-end integration: full SFCs across crates, functional and
//! temporal layers together.

use nfc_core::allocator::PartitionAlgo;
use nfc_core::{Deployment, Policy, Sfc};
use nfc_hetero::GpuMode;
use nfc_nf::Nf;
use nfc_packet::traffic::{PayloadPolicy, SizeDist, TrafficGenerator, TrafficSpec};

fn security_chain() -> Sfc {
    Sfc::new(
        "e2e",
        vec![
            Nf::firewall("fw", 500, 1),
            Nf::ids("ids"),
            Nf::nat("nat", [203, 0, 113, 7]),
        ],
    )
}

fn spec() -> TrafficSpec {
    TrafficSpec::udp(SizeDist::Imix).with_payload(PayloadPolicy::MatchRatio {
        patterns: Nf::default_ids_signatures(),
        ratio: 0.15,
    })
}

#[test]
fn all_policies_produce_identical_functional_output() {
    // Scheduling decisions must never change packet processing results.
    let policies = vec![
        Policy::CpuOnly,
        Policy::GpuOnly {
            mode: GpuMode::Persistent,
        },
        Policy::FixedRatio {
            ratio: 0.5,
            mode: GpuMode::LaunchPerBatch,
        },
        Policy::NbaAdaptive,
        Policy::Optimal,
        Policy::NfCompass {
            algo: PartitionAlgo::Kl,
            max_branches: 4,
            synthesize: true,
        },
        Policy::NfCompass {
            algo: PartitionAlgo::Agglomerative,
            max_branches: 2,
            synthesize: false,
        },
    ];
    let mut reference: Option<(u64, u64)> = None;
    for policy in policies {
        let mut dep = Deployment::new(security_chain(), policy).with_batch_size(128);
        let mut traffic = TrafficGenerator::new(spec(), 77);
        let out = dep.run(&mut traffic, 8);
        assert_eq!(out.merge_conflicts, 0, "{}", policy.label());
        let key = (out.egress_packets, out.egress_bytes);
        match &reference {
            None => reference = Some(key),
            Some(r) => assert_eq!(
                *r,
                key,
                "policy {} changed functional output",
                policy.label()
            ),
        }
    }
}

#[test]
fn ids_drops_scale_with_match_ratio_through_full_chain() {
    for (ratio, lo, hi) in [(0.0, 0.97, 1.0), (0.5, 0.4, 0.65)] {
        let s = TrafficSpec::udp(SizeDist::Fixed(512)).with_payload(PayloadPolicy::MatchRatio {
            patterns: Nf::default_ids_signatures(),
            ratio,
        });
        let mut dep = Deployment::new(security_chain(), Policy::CpuOnly).with_batch_size(128);
        let mut traffic = TrafficGenerator::new(s, 5);
        let out = dep.run(&mut traffic, 10);
        let offered = 10 * 128;
        let frac = out.egress_packets as f64 / offered as f64;
        assert!(
            (lo..=hi).contains(&frac),
            "ratio {ratio}: pass fraction {frac}"
        );
    }
}

#[test]
fn nfcompass_improves_throughput_and_latency_on_heavy_chain() {
    let heavy = || {
        Sfc::new(
            "heavy",
            vec![Nf::ipsec("ipsec"), Nf::dpi("dpi"), Nf::probe("probe")],
        )
    };
    let run = |policy| {
        let mut dep = Deployment::new(heavy(), policy).with_batch_size(256);
        let mut t = TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(512)), 9);
        dep.run(&mut t, 25)
    };
    let cpu = run(Policy::CpuOnly);
    let nfc = run(Policy::nfcompass());
    assert!(
        nfc.report.throughput_gbps > 1.3 * cpu.report.throughput_gbps,
        "NFCompass {} vs CPU {}",
        nfc.report.throughput_gbps,
        cpu.report.throughput_gbps
    );
    assert!(nfc.report.p99_latency_ns < cpu.report.p99_latency_ns);
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut dep = Deployment::new(security_chain(), Policy::nfcompass()).with_batch_size(128);
        let mut traffic = TrafficGenerator::new(spec(), 123);
        let o = dep.run(&mut traffic, 10);
        (
            o.egress_packets,
            o.egress_bytes,
            o.report.throughput_gbps.to_bits(),
            o.report.p99_latency_ns.to_bits(),
        )
    };
    assert_eq!(run(), run(), "simulation must be bit-reproducible");
}

#[test]
fn reorg_width_reported_consistently() {
    // fw + probe + lb are mutually read-only -> full parallelization.
    let sfc = Sfc::new(
        "readonly",
        vec![
            Nf::firewall("fw", 100, 1),
            Nf::probe("probe"),
            Nf::load_balancer("lb", 2),
        ],
    );
    let mut dep = Deployment::new(sfc, Policy::nfcompass()).with_batch_size(64);
    let mut traffic = TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(64)), 3);
    let out = dep.run(&mut traffic, 6);
    assert_eq!(out.width, 3);
    assert_eq!(out.effective_length, 1);
    assert_eq!(out.merge_conflicts, 0);
}

#[test]
fn ipv6_chain_runs_end_to_end() {
    let sfc = Sfc::new("v6", vec![Nf::ipv6_forwarder("r6", 200, 4)]);
    let spec =
        TrafficSpec::udp(SizeDist::Fixed(128)).with_ip_version(nfc_packet::traffic::IpVersion::V6);
    let mut dep = Deployment::new(sfc, Policy::Optimal).with_batch_size(128);
    let mut traffic = TrafficGenerator::new(spec, 6);
    let out = dep.run(&mut traffic, 10);
    assert_eq!(out.egress_packets, 10 * 128);
    assert!(out.report.throughput_gbps > 0.0);
}
