//! Differential testing of the adaptive control plane: the controller is
//! a pure *temporal* optimization. For any schedule of workload shifts,
//! an adaptive run and the disabled-controller oracle must agree on every
//! egress byte and every per-element statistic as long as neither run
//! tail-drops — plans only move work between processors; they never touch
//! packets. Zero loss and zero reordering, by construction and by test.

use nfc_core::{ControllerConfig, Deployment, Policy, RunOutcome, Sfc};
use nfc_nf::Nf;
use nfc_packet::traffic::{PayloadPolicy, SizeDist, TrafficGenerator, TrafficSpec};
use nfc_packet::Batch;
use proptest::prelude::*;

/// One phase of the shift schedule: packet size, DPI match ratio and the
/// generator seed all drift between phases.
#[derive(Debug, Clone)]
struct Phase {
    pkt: usize,
    match_ratio: f64,
    seed: u64,
}

fn phase_strategy() -> impl Strategy<Value = Phase> {
    (0usize..4, 0.0f64..1.0, 1u64..1000).prop_map(|(i, match_ratio, seed)| Phase {
        pkt: [128, 256, 512, 1024][i],
        match_ratio,
        seed,
    })
}

/// Builds the traffic generators for a schedule, under-capacity (4 Gbps)
/// so neither the adaptive nor the oracle run ever tail-drops and the
/// bit-identity contract is unconditional.
fn generators(schedule: &[Phase]) -> Vec<TrafficGenerator> {
    schedule
        .iter()
        .map(|p| {
            TrafficGenerator::new(
                TrafficSpec::udp(SizeDist::Fixed(p.pkt))
                    .with_rate_gbps(4.0)
                    .with_payload(PayloadPolicy::MatchRatio {
                        patterns: Nf::default_ids_signatures(),
                        ratio: p.match_ratio,
                    }),
                p.seed,
            )
        })
        .collect()
}

fn run(
    schedule: &[Phase],
    cfg: &ControllerConfig,
    n_batches: usize,
) -> (Vec<RunOutcome>, nfc_core::ControllerReport, Vec<Batch>) {
    // DPI ahead of IPsec so the matcher sees plaintext (the encryptor
    // would otherwise hide the match-ratio shift from the detector).
    let sfc = Sfc::new("dpi-ipsec", vec![Nf::dpi("dpi"), Nf::ipsec("ipsec")]);
    let mut dep = Deployment::new(sfc, Policy::nfcompass()).with_batch_size(128);
    dep.run_adaptive_collect(&mut generators(schedule), n_batches, cfg)
}

fn twitchy_cfg() -> ControllerConfig {
    // Deliberately aggressive so random schedules actually provoke
    // swaps: short epochs, low threshold, minimal hysteresis/cooldown.
    ControllerConfig {
        epoch_batches: 6,
        window_epochs: 2,
        threshold: 0.2,
        hysteresis_epochs: 1,
        cooldown_epochs: 1,
        refine_latency_epochs: 1,
        enabled: true,
    }
}

fn assert_identical(
    label: &str,
    on: &(Vec<RunOutcome>, nfc_core::ControllerReport, Vec<Batch>),
    off: &(Vec<RunOutcome>, nfc_core::ControllerReport, Vec<Batch>),
) {
    for (i, o) in on.0.iter().chain(off.0.iter()).enumerate() {
        assert_eq!(
            o.report.dropped_batches, 0,
            "{label}: phase outcome {i} must stay under capacity"
        );
    }
    assert_eq!(
        on.2, off.2,
        "{label}: egress batches must be byte-identical"
    );
    assert_eq!(
        on.0[0].stage_stats, off.0[0].stage_stats,
        "{label}: per-element statistics must match"
    );
    assert_eq!(on.0[0].egress_packets, off.0[0].egress_packets, "{label}");
    assert_eq!(on.0[0].egress_bytes, off.0[0].egress_bytes, "{label}");
    assert_eq!(on.0[0].merge_conflicts, off.0[0].merge_conflicts, "{label}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For ANY workload-shift schedule: adaptive ≡ oracle on every
    /// functional observable.
    #[test]
    fn adaptive_matches_disabled_oracle_for_any_shift_schedule(
        schedule in proptest::collection::vec(phase_strategy(), 2..4),
    ) {
        let on = run(&schedule, &twitchy_cfg(), 18);
        let off = run(&schedule, &ControllerConfig::disabled(), 18);
        prop_assert_eq!(off.1.triggers, 0);
        assert_identical(&format!("{schedule:?}"), &on, &off);
    }
}

/// A hand-picked schedule that provably provokes swap activity, so the
/// differential above is known to cover the drain → migrate → relaunch
/// path and not just the Hold path.
#[test]
fn differential_holds_across_an_actual_swap() {
    let schedule = [
        Phase {
            pkt: 512,
            match_ratio: 0.0,
            seed: 11,
        },
        Phase {
            pkt: 512,
            match_ratio: 1.0,
            seed: 12,
        },
    ];
    let on = run(&schedule, &twitchy_cfg(), 36);
    let off = run(&schedule, &ControllerConfig::disabled(), 36);
    assert!(
        on.1.applied() >= 1,
        "the match-ratio flip must drive at least one applied swap: {:?}",
        on.1
    );
    assert_identical("match-ratio flip", &on, &off);
    // The swap is charged, not free: some applied adaptation carries a
    // positive reconfiguration time on the simulated timeline.
    assert!(on
        .1
        .adaptations
        .iter()
        .any(|a| a.applied && a.swap_ns > 0.0));
}

/// Stateful chains migrate state across the swap; the differential must
/// still hold (state lives in the functional layer and is never touched
/// by the controller — only its migration *cost* is charged).
#[test]
fn differential_holds_for_stateful_chain() {
    let mk = || {
        Sfc::new(
            "nat-dpi",
            vec![Nf::nat("nat", [192, 168, 0, 1]), Nf::dpi("dpi")],
        )
    };
    let schedule = [
        Phase {
            pkt: 256,
            match_ratio: 0.0,
            seed: 21,
        },
        Phase {
            pkt: 1024,
            match_ratio: 1.0,
            seed: 22,
        },
    ];
    let run_one = |cfg: &ControllerConfig| {
        let mut dep = Deployment::new(mk(), Policy::nfcompass()).with_batch_size(128);
        dep.run_adaptive_collect(&mut generators(&schedule), 30, cfg)
    };
    let on = run_one(&twitchy_cfg());
    let off = run_one(&ControllerConfig::disabled());
    assert_identical("stateful nat-dpi", &on, &off);
}
