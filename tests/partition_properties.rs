//! Property-based tests for the graph-partitioning algorithms: validity
//! invariants on random graphs and optimality comparisons against brute
//! force on small instances.

use nfc_graphpart::{agglomerative, kl, maxflow, Objective, PartGraph, Partition, Side};
use proptest::prelude::*;

/// Builds a random, connected-ish partition graph from proptest inputs.
fn build_graph(
    weights: &[(f64, f64, u8)], // (cpu, gpu, pin: 0=none 1=cpu 2=gpu-ish->none)
    extra_edges: &[(usize, usize, f64)],
) -> PartGraph {
    let mut g = PartGraph::new();
    for &(cpu, gpu, pin) in weights {
        match pin % 3 {
            1 => {
                g.add_pinned(cpu, f64::INFINITY, Side::Cpu);
            }
            _ => {
                g.add_node(cpu, gpu);
            }
        }
    }
    // Spanning chain keeps things connected.
    for i in 1..g.len() {
        g.add_edge(i - 1, i, 0.5);
    }
    for &(u, v, w) in extra_edges {
        let (u, v) = (u % g.len(), v % g.len());
        if u != v {
            g.add_edge(u.min(v), u.max(v), w);
        }
    }
    g
}

fn weight_strategy() -> impl Strategy<Value = Vec<(f64, f64, u8)>> {
    proptest::collection::vec((1.0f64..100.0, 1.0f64..100.0, any::<u8>()), 2..24)
}

fn edge_strategy() -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    proptest::collection::vec((any::<usize>(), any::<usize>(), 0.1f64..10.0), 0..16)
}

/// Exhaustive optimum for small graphs.
fn brute_force(g: &PartGraph, obj: &Objective) -> f64 {
    let free: Vec<usize> = (0..g.len()).filter(|&v| g.pin(v).is_none()).collect();
    let mut best = f64::INFINITY;
    for mask in 0u64..(1u64 << free.len()) {
        let mut sides: Vec<Side> = (0..g.len())
            .map(|v| g.pin(v).unwrap_or(Side::Cpu))
            .collect();
        for (bit, &v) in free.iter().enumerate() {
            if mask >> bit & 1 == 1 {
                sides[v] = Side::Gpu;
            }
        }
        best = best.min(obj.cost(g, &Partition(sides)));
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kl_always_respects_pins_and_assigns_everyone(
        weights in weight_strategy(),
        extra in edge_strategy(),
    ) {
        let g = build_graph(&weights, &extra);
        let part = kl::partition(&g, kl::KlOptions::default());
        prop_assert_eq!(part.0.len(), g.len());
        prop_assert!(part.respects_pins(&g));
    }

    #[test]
    fn agglomerative_respects_pins(
        weights in weight_strategy(),
        extra in edge_strategy(),
    ) {
        let g = build_graph(&weights, &extra);
        let seeds = agglomerative::default_seeds(&g);
        let part = agglomerative::partition(&g, &seeds, Objective::default());
        prop_assert_eq!(part.0.len(), g.len());
        prop_assert!(part.respects_pins(&g));
    }

    #[test]
    fn kl_never_worse_than_trivial_partitions(
        weights in weight_strategy(),
        extra in edge_strategy(),
    ) {
        let g = build_graph(&weights, &extra);
        let obj = Objective::default();
        let part = kl::partition(&g, kl::KlOptions::default());
        let cost = obj.cost(&g, &part);
        // All-CPU is always a legal plan (pins are CPU-only here).
        let all_cpu = Partition::all(g.len(), Side::Cpu);
        prop_assert!(
            cost <= obj.cost(&g, &all_cpu) + 1e-6,
            "KL {} worse than all-CPU {}",
            cost,
            obj.cost(&g, &all_cpu)
        );
    }

    #[test]
    fn kl_close_to_brute_force_on_small_graphs(
        weights in proptest::collection::vec((1.0f64..50.0, 1.0f64..50.0, any::<u8>()), 2..10),
        extra in proptest::collection::vec((any::<usize>(), any::<usize>(), 0.1f64..5.0), 0..6),
    ) {
        let g = build_graph(&weights, &extra);
        let obj = Objective::default();
        let part = kl::partition(&g, kl::KlOptions::default());
        let kl_cost = obj.cost(&g, &part);
        let opt = brute_force(&g, &obj);
        // Heuristic should land within 40% of the true optimum on tiny
        // instances (it is usually exact; KL is a local search).
        prop_assert!(
            kl_cost <= opt * 1.4 + 1e-6,
            "KL {} vs optimum {}",
            kl_cost,
            opt
        );
    }

    #[test]
    fn mfmc_matches_brute_force_energy(
        unary in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..9),
        edges in proptest::collection::vec((any::<usize>(), any::<usize>(), 0.0f64..5.0), 0..10),
    ) {
        let n = unary.len();
        let edges: Vec<(usize, usize, f64)> = edges
            .into_iter()
            .filter_map(|(u, v, w)| {
                let (u, v) = (u % n, v % n);
                (u != v).then_some((u, v, w))
            })
            .collect();
        let labels = maxflow::mfmc_assign(&unary, &edges);
        let energy = |ls: &[bool]| -> f64 {
            let mut e = 0.0;
            for (v, &(c, g)) in unary.iter().enumerate() {
                e += if ls[v] { g } else { c };
            }
            for &(u, v, w) in &edges {
                if ls[u] != ls[v] {
                    e += w;
                }
            }
            e
        };
        let got = energy(&labels);
        let mut best = f64::INFINITY;
        for mask in 0u32..(1u32 << n) {
            let ls: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
            best = best.min(energy(&ls));
        }
        prop_assert!((got - best).abs() < 1e-6, "mfmc {} vs optimum {}", got, best);
    }

    #[test]
    fn objective_cost_is_consistent(
        weights in weight_strategy(),
        extra in edge_strategy(),
        flips in any::<u64>(),
    ) {
        let g = build_graph(&weights, &extra);
        let obj = Objective::default();
        let sides: Vec<Side> = (0..g.len())
            .map(|v| {
                g.pin(v).unwrap_or(if flips >> (v % 64) & 1 == 1 {
                    Side::Gpu
                } else {
                    Side::Cpu
                })
            })
            .collect();
        let part = Partition(sides);
        let loads = obj.loads(&g, &part);
        let cut = obj.cut(&g, &part);
        prop_assert!(loads[0] >= 0.0 && loads[1] >= 0.0 && cut >= 0.0);
        prop_assert!((obj.cost(&g, &part) - (loads[0].max(loads[1]) + cut)).abs() < 1e-9);
    }
}

/// δ-ablation on the paper chains: refining the slice granularity from
/// 20 % through 10 % to 5 % while warm-starting each re-partition from
/// the coarser plan must never produce a worse execution-consistent
/// stage cost. The δ grids nest (1/5 ⊂ 1/10 ⊂ 1/20), so the previous
/// plan is always representable on the finer grid and the warm
/// allocator's carry candidate guarantees monotonicity.
mod delta_ablation {
    use nfc_core::allocator::{allocate_warm_traced, PartitionAlgo};
    use nfc_core::profiler::{GraphWeights, Profiler};
    use nfc_core::{Policy, Sfc};
    use nfc_hetero::{CoRunContext, CostModel, GpuMode, PlatformConfig};
    use nfc_nf::Nf;
    use nfc_packet::traffic::{SizeDist, TrafficGenerator, TrafficSpec};
    use nfc_telemetry::Recorder;

    fn profile(nf: &Nf, pkt: usize) -> GraphWeights {
        let mut run = nf.graph().clone().compile().expect("catalog compiles");
        let mut gen = TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(pkt)), 3);
        for _ in 0..8 {
            run.push_merged(nf.entry(), gen.batch(256));
        }
        let model = CostModel::new(PlatformConfig::hpca18());
        Profiler::new(model, GpuMode::Persistent).measure(&run)
    }

    fn ablate(nf: &Nf, pkt: usize, algo: PartitionAlgo) {
        let weights = profile(nf, pkt);
        let model = CostModel::new(PlatformConfig::hpca18());
        let corun = CoRunContext::solo();
        let mut prev_ratios = vec![0.0; weights.nodes.len()];
        let mut prev_cost = f64::INFINITY;
        for delta in [0.2, 0.1, 0.05] {
            let plan = allocate_warm_traced(
                nf.graph(),
                &weights,
                &prev_ratios,
                algo,
                delta,
                &model,
                &corun,
                GpuMode::Persistent,
                &mut Recorder::disabled(),
            );
            assert!(
                plan.predicted_cost_ns <= prev_cost + 1e-6,
                "{} {algo:?}: δ={delta} cost {} worse than coarser {}",
                nf.name(),
                plan.predicted_cost_ns,
                prev_cost
            );
            prev_cost = plan.predicted_cost_ns;
            prev_ratios = plan.ratios;
        }
    }

    #[test]
    fn finer_delta_never_worse_on_paper_chains() {
        for algo in [PartitionAlgo::Kl, PartitionAlgo::Agglomerative] {
            ablate(&Nf::ipsec("ipsec"), 512, algo);
            ablate(&Nf::dpi("dpi"), 512, algo);
            ablate(&Nf::ipv4_forwarder("router", 100, 2), 64, algo);
        }
    }

    /// The same monotonicity, end-to-end: the paper's default policy at
    /// finer δ must not lose throughput on the heavy chain.
    #[test]
    fn finer_delta_never_worse_end_to_end() {
        let run = |delta: f64| {
            let sfc = Sfc::new("heavy", vec![Nf::ipsec("ipsec"), Nf::dpi("dpi")]);
            let mut dep = nfc_core::Deployment::new(sfc, Policy::nfcompass()).with_batch_size(256);
            dep.delta = delta;
            let mut t = TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(512)), 42);
            dep.run(&mut t, 20).report.throughput_gbps
        };
        let coarse = run(0.2);
        let fine = run(0.05);
        assert!(
            fine >= 0.9 * coarse,
            "δ=0.05 throughput {fine} collapsed vs δ=0.2 {coarse}"
        );
    }
}
