//! Integration tests for the profiling pipeline: live statistics, co-run
//! aware weights, the offline dictionary, and their use by allocation.

use nfc_click::{KernelClass, WorkProfile};
use nfc_core::allocator::{allocate, stage_cost, PartitionAlgo};
use nfc_core::expansion::Expansion;
use nfc_core::profiler::{ProfileDictionary, Profiler};
use nfc_hetero::{CoRunContext, CostModel, GpuMode, PlatformConfig};
use nfc_nf::Nf;
use nfc_packet::traffic::{SizeDist, TrafficGenerator, TrafficSpec};

fn model() -> CostModel {
    CostModel::new(PlatformConfig::hpca18())
}

fn profiled(nf: &Nf, pkt: usize, batch: usize) -> nfc_core::profiler::GraphWeights {
    let mut run = nf.graph().clone().compile().expect("compiles");
    let mut gen = TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(pkt)), 3);
    for _ in 0..8 {
        run.push_merged(nf.entry(), gen.batch(batch));
    }
    Profiler::new(model(), GpuMode::Persistent).measure(&run)
}

#[test]
fn corun_context_raises_cpu_weights() {
    let nf = Nf::dpi("dpi");
    let mut run = nf.graph().clone().compile().expect("compiles");
    let mut gen = TrafficGenerator::new(TrafficSpec::udp(SizeDist::Fixed(512)), 3);
    for _ in 0..4 {
        run.push_merged(nf.entry(), gen.batch(128));
    }
    let profiler = Profiler::new(model(), GpuMode::Persistent);
    let solo = profiler.measure(&run);
    let busy = profiler.measure_with_corun(
        &run,
        &CoRunContext::new([Some(KernelClass::PatternMatch), Some(KernelClass::Lookup)]),
    );
    for (a, b) in solo.nodes.iter().zip(busy.nodes.iter()) {
        assert!(b.cpu_ns >= a.cpu_ns, "co-run must not cheapen CPU work");
        // GPU weights unaffected by CPU cache contention.
        assert_eq!(a.gpu.kernel_ns.to_bits(), b.gpu.kernel_ns.to_bits());
    }
    assert!(
        busy.nodes
            .iter()
            .zip(solo.nodes.iter())
            .any(|(b, a)| b.cpu_ns > a.cpu_ns),
        "at least one element must get slower"
    );
}

#[test]
fn stage_cost_tracks_plan_quality() {
    // A plan the allocator chose must not be worse than both trivial
    // extremes under the same evaluator.
    let nf = Nf::ipsec("e");
    let w = profiled(&nf, 512, 256);
    let m = model();
    let solo = CoRunContext::solo();
    let plan = allocate(nf.graph(), &w, PartitionAlgo::Kl, 0.1);
    let chosen = stage_cost(&m, &w, &solo, &plan.ratios, GpuMode::Persistent);
    let all_cpu = stage_cost(
        &m,
        &w,
        &solo,
        &vec![0.0; w.nodes.len()],
        GpuMode::Persistent,
    );
    let all_gpu_ratios: Vec<f64> = w
        .nodes
        .iter()
        .map(|n| if n.offloadable { 1.0 } else { 0.0 })
        .collect();
    let all_gpu = stage_cost(&m, &w, &solo, &all_gpu_ratios, GpuMode::Persistent);
    assert!(
        chosen <= all_cpu.min(all_gpu) * 1.3,
        "chosen {chosen} vs cpu {all_cpu} / gpu {all_gpu}"
    );
}

#[test]
fn expansion_edges_price_io_boundaries() {
    let nf = Nf::ipsec("e");
    let w = profiled(&nf, 256, 128);
    let exp = Expansion::expand(nf.graph(), &w, 0.1);
    // Moving every slice to the GPU must cut both I/O edges: total cut
    // weight roughly two batch transfers.
    use nfc_graphpart::{Objective, Partition, Side};
    let sides: Vec<Side> = (0..exp.part.len())
        .map(|v| {
            if exp.part.pin(v).is_some() {
                Side::Cpu
            } else {
                Side::Gpu
            }
        })
        .collect();
    let cut = Objective::default().cut(&exp.part, &Partition(sides));
    let one_transfer = 2_000.0 + w.entry_bytes / 12.0;
    assert!(
        (cut - 2.0 * one_transfer).abs() / (2.0 * one_transfer) < 0.05,
        "cut {cut} vs 2x transfer {one_transfer}"
    );
}

#[test]
fn offline_dictionary_covers_catalog_kinds_and_persists() {
    let kinds = vec![
        (
            "ipsec",
            WorkProfile::new(150.0, 22.0),
            Some(KernelClass::Crypto),
        ),
        (
            "dpi",
            WorkProfile::new(120.0, 9.0),
            Some(KernelClass::PatternMatch),
        ),
        (
            "ipv4",
            WorkProfile::per_packet(107.0),
            Some(KernelClass::Lookup),
        ),
    ];
    let dict = ProfileDictionary::build_offline(&model(), &kinds);
    // 3 kinds x 23 sizes x 6 batch sizes.
    assert_eq!(dict.len(), 3 * 23 * 6);
    // Rates decrease with packet size for payload-bound kinds.
    let small = dict.get("ipsec", 64, 256).expect("entry");
    let large = dict.get("ipsec", 1500, 256).expect("entry");
    assert!(small.cpu_pps > large.cpu_pps);
    // Round-trip through JSON keeps every record.
    let back = ProfileDictionary::from_json(&dict.to_json().expect("serialize")).expect("parse");
    assert_eq!(back.len(), dict.len());
    let a = dict.get("dpi", 512, 128).expect("entry");
    let b = back.get("dpi", 512, 128).expect("entry");
    // JSON may lose the last ULP of a float.
    assert!((a.cpu_pps - b.cpu_pps).abs() / a.cpu_pps < 1e-12);
    assert!((a.gpu_pps - b.gpu_pps).abs() / a.gpu_pps < 1e-12);
}

#[test]
fn drops_shrink_downstream_weights() {
    // An enforcing firewall that denies much of the traffic must leave
    // the downstream element with a smaller profiled load.
    use nfc_nf::acl::{synth, AclTable, Action};
    use nfc_nf::elements::FirewallFilter;
    use std::sync::Arc;
    let mut g = nfc_click::ElementGraph::new();
    let deny_all_tcp = nfc_nf::acl::Rule {
        proto: Some(6),
        ..nfc_nf::acl::Rule::any(Action::Deny)
    };
    let mut rules = vec![deny_all_tcp];
    rules.extend(synth::generate(10, 1));
    let fw = g.add(FirewallFilter::new(
        Arc::new(AclTable::new(rules, Action::Allow)),
        true,
    ));
    let probe = g.add(nfc_nf::elements::Probe::new());
    g.connect(fw, 0, probe).expect("wiring");
    let nf = Nf::from_graph("fw-probe", nfc_nf::NfKind::Firewall, g);
    let mut run = nf.graph().clone().compile().expect("compiles");
    let mut gen = TrafficGenerator::new(TrafficSpec::tcp(SizeDist::Fixed(64)), 5);
    for _ in 0..4 {
        run.push_merged(nf.entry(), gen.batch(128));
    }
    let w = Profiler::new(model(), GpuMode::Persistent).measure(&run);
    assert_eq!(w.nodes[0].load.packets, 128);
    assert!(
        w.nodes[1].load.packets < 64,
        "probe should see only surviving packets, got {}",
        w.nodes[1].load.packets
    );
}
