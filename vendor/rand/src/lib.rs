//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the small slice of `rand` it actually uses: a seedable small
//! PRNG ([`rngs::SmallRng`], xoshiro256++), the [`Rng`] extension trait
//! with `gen`/`gen_range`/`gen_bool`/`fill`, and [`SeedableRng`].
//! Streams are deterministic per seed but do not bit-match upstream
//! `rand`; every consumer in this repository treats seeds as opaque.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

/// A PRNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via splitmix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let w = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                let mut out: $t = 0;
                let mut bits = 0;
                while bits < <$t>::BITS {
                    out = out.wrapping_shl(64) | rng.next_u64() as $t;
                    bits += 64;
                }
                out
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Types with uniform sampling over a sub-range (`rng.gen_range`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draws uniformly from `[low, high]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: low > high");
                let span = (high as $wide).wrapping_sub(low as $wide).wrapping_add(1);
                if span == 0 {
                    // Full domain.
                    return <$t as Standard>::sample(rng);
                }
                // Modulo over the full wide domain with rejection of the
                // biased tail.
                let zone = <$wide>::MAX - (<$wide>::MAX % span + 1) % span;
                loop {
                    let v = <$wide as Standard>::sample(rng);
                    if v <= zone {
                        return low.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
    )*};
}
impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
    u128 => u128, i128 => u128
);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + <f64 as Standard>::sample(rng) * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + <f32 as Standard>::sample(rng) * (high - low)
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + One> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, self.end.minus_one())
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Internal helper: `end - 1` for half-open integer ranges; identity for
/// floats (where half-open vs closed is measure-zero).
pub trait One: Copy {
    /// The value one step below `self` for discrete domains.
    fn minus_one(self) -> Self;
}

macro_rules! impl_one_int {
    ($($t:ty),*) => {$(impl One for $t { fn minus_one(self) -> Self { self - 1 } })*};
}
impl_one_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);
impl One for f64 {
    fn minus_one(self) -> Self {
        self
    }
}
impl One for f32 {
    fn minus_one(self) -> Self {
        self
    }
}

/// Extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly over `T`'s domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }

    /// Fills a byte slice with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast PRNG (xoshiro256++), API-compatible with
    /// `rand::rngs::SmallRng` for the operations this workspace uses.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point; perturb it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5u8..=9);
            assert!((5..=9).contains(&w));
            let f = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_covers_slice() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_range_distribution_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[r.gen_range(0usize..4)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
