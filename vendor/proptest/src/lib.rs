//! Vendored, dependency-free subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the slice of `proptest` its tests use: the [`proptest!`] macro
//! family (`prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`,
//! `prop_assume!`), [`strategy::Strategy`] over ranges / `any::<T>()` /
//! tuples / [`collection::vec`], and
//! [`test_runner::ProptestConfig::with_cases`].
//!
//! Unlike real proptest there is no shrinking: a failing case panics
//! with its deterministic per-case seed so it can be replayed by rerun.
//! Case streams are derived from the test name, so runs are stable
//! across processes without `proptest-regressions` files (existing
//! regression files are simply ignored).

/// Strategies: how to generate values of a given type.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng as _;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (the real proptest's
        /// `prop_map`, minus shrinking).
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    // Strategies compose by reference (proptest helpers sometimes pass
    // `&strategy`).
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: rand::Standard> Arbitrary for T {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// The canonical strategy for `T`: uniform over its whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<T> Strategy for std::ops::Range<T>
    where
        T: Copy + PartialOrd,
        std::ops::Range<T>: rand::SampleRange<T>,
    {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        T: Copy + PartialOrd,
        std::ops::RangeInclusive<T>: rand::SampleRange<T>,
    {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;

    /// An inclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a
    /// [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// The case runner: configuration, error type, and driver loop.
pub mod test_runner {
    /// Deterministic per-case RNG (xoshiro256++ via the vendored rand).
    pub type TestRng = rand::rngs::SmallRng;

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the whole test fails.
        Fail(String),
        /// `prop_assume!` filtered this case out; draw another.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration (subset: case count).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drives one property: draws cases until `cfg.cases` pass, panics
    /// on the first failure (with the replayable case seed) or when
    /// rejection dominates.
    pub fn run<F>(cfg: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        use rand::SeedableRng as _;

        let base = fnv1a(name);
        let max_rejects = u64::from(cfg.cases) * 64 + 256;
        let mut passed: u32 = 0;
        let mut rejected: u64 = 0;
        let mut draw: u64 = 0;
        while passed < cfg.cases {
            let case_seed = base ^ draw.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            draw += 1;
            let mut rng = TestRng::seed_from_u64(case_seed);
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "proptest '{name}': too many rejected cases \
                         ({rejected}); last: {why}"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{name}' failed after {passed} passing \
                         cases (case seed {case_seed:#x}): {msg}"
                    );
                }
            }
        }
    }
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests; mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!(
            $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Internal case muncher for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            $crate::test_runner::run(&__cfg, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&{ $strat }, __rng);)*
                (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_cases!($cfg; $($rest)*);
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// process) so the runner can report the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
                    stringify!($left), stringify!($right), l, r, format!($($fmt)+));
            }
        }
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left), stringify!($right), l);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}\n {}",
                    stringify!($left), stringify!($right), l, format!($($fmt)+));
            }
        }
    };
}

/// Discards the current case when its inputs violate a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(format!($($fmt)+)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair_strategy() -> impl Strategy<Value = Vec<(u8, u16)>> {
        collection::vec((any::<u8>(), 1u16..=100), 1..8)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_and_vecs(
            xs in collection::vec(any::<u32>(), 3),
            n in 5usize..10,
            f in 0.25f64..0.75,
            pairs in pair_strategy(),
        ) {
            prop_assert_eq!(xs.len(), 3);
            prop_assert!((5..10).contains(&n), "n out of range: {}", n);
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!(!pairs.is_empty() && pairs.len() < 8);
            for (_a, b) in &pairs {
                prop_assert!((1..=100).contains(b));
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in any::<u8>()) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1);
        }
    }

    #[test]
    #[should_panic(expected = "proptest 'inner' failed")]
    fn failures_panic_with_seed() {
        crate::test_runner::run(&ProptestConfig::with_cases(4), "inner", |rng| {
            let v = Strategy::sample(&(0u8..10), rng);
            crate::prop_assert!(v == 255, "v was {}", v);
            Ok(())
        });
    }
}
