//! Vendored, dependency-free subset of the `serde_json` API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the slice of `serde_json` it actually uses: the [`Value`] tree,
//! the [`json!`] macro, [`to_string`] / [`to_string_pretty`] /
//! [`from_str`] over `Value`, string-key indexing and scalar accessors.
//! Objects use a `BTreeMap`, so emission order is deterministic.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; integers round-trip up to 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with deterministic (sorted) key order.
    Object(BTreeMap<String, Value>),
}

/// Errors from parsing or emitting JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// Builds an error with a caller-supplied message (mirrors
    /// `serde::de::Error::custom`).
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error::new(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

impl Value {
    /// Borrows the string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric content as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Numeric content as `i64`, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// Boolean content.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrows the array content.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the object content.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object lookup returning `Option` (non-panicking).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }

    fn write_escaped(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn write_number(n: f64, out: &mut String) {
        if !n.is_finite() {
            out.push_str("null"); // matches serde_json: non-finite -> null
        } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
            out.push_str(&format!("{}", n as i64));
        } else {
            out.push_str(&format!("{n}"));
        }
    }

    fn emit(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => Self::write_number(*n, out),
            Value::String(s) => Self::write_escaped(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(w) = indent {
                        out.push('\n');
                        out.push_str(&" ".repeat(w * (level + 1)));
                    }
                    item.emit(out, indent, level + 1);
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * level));
                }
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(w) = indent {
                        out.push('\n');
                        out.push_str(&" ".repeat(w * (level + 1)));
                    }
                    Self::write_escaped(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.emit(out, indent, level + 1);
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * level));
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.emit(&mut s, None, 0);
        f.write_str(&s)
    }
}

// ---------------------------------------------------------------------
// Conversions into Value (what the json! macro leans on)
// ---------------------------------------------------------------------

macro_rules! impl_from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(v as f64) }
        }
    )*};
}
impl_from_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>, const N: usize> From<[T; N]> for Value {
    fn from(v: [T; N]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<A: Into<Value>, B: Into<Value>> From<(A, B)> for Value {
    fn from((a, b): (A, B)) -> Value {
        Value::Array(vec![a.into(), b.into()])
    }
}

// References serialize by cloning, so `json!({"k": self.field})` works
// without consuming the field (matching real serde_json, which
// serializes behind a reference).
impl<T: Clone + Into<Value>> From<&T> for Value {
    fn from(v: &T) -> Value {
        v.clone().into()
    }
}

/// Converts anything `Value`-convertible; the [`json!`] macro routes
/// every interpolated expression through here by reference.
pub fn to_value<T: Into<Value>>(v: T) -> Value {
    v.into()
}

// ---------------------------------------------------------------------
// Indexing
// ---------------------------------------------------------------------

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if self.is_null() {
            *self = Value::Object(BTreeMap::new());
        }
        match self {
            Value::Object(map) => map.entry(key.to_string()).or_insert(Value::Null),
            other => panic!("cannot index non-object value {other} by string"),
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

// Comparisons against literals (`row["pkt"] == 64`).
macro_rules! impl_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other.as_f64() == Some(*self as f64)
            }
        }
    )*};
}
impl_eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

// ---------------------------------------------------------------------
// Emission / parsing entry points
// ---------------------------------------------------------------------

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for [`Value`]; the `Result` mirrors the serde_json API.
pub fn to_string<T: Into<Value> + Clone>(value: &T) -> Result<String> {
    let v: Value = value.clone().into();
    let mut s = String::new();
    v.emit(&mut s, None, 0);
    Ok(s)
}

/// Serializes a value to human-indented JSON.
///
/// # Errors
///
/// Infallible for [`Value`]; the `Result` mirrors the serde_json API.
pub fn to_string_pretty<T: Into<Value> + Clone>(value: &T) -> Result<String> {
    let v: Value = value.clone().into();
    let mut s = String::new();
    v.emit(&mut s, Some(2), 0);
    Ok(s)
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] on malformed input.
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| Error::new(format!("bad number at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(Error::new("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume a contiguous run of unescaped bytes at
                    // once. `"` and `\` never occur inside multi-byte
                    // UTF-8 sequences, so byte scanning is safe and the
                    // run is validated in one pass (a per-character
                    // `from_utf8` over the remaining input made parsing
                    // quadratic on multi-megabyte traces).
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }
}

// ---------------------------------------------------------------------
// json! macro (tt-muncher, adapted from serde_json's shape)
// ---------------------------------------------------------------------

/// Builds a [`Value`] from JSON-like syntax, mirroring `serde_json::json!`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => { $crate::json_array!([] $($tt)*) };
    ({ $($tt:tt)* }) => { $crate::json_object!({} $($tt)*) };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal array muncher for [`json!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    // Finished (with optional trailing comma).
    ([ $($done:expr),* ] $(,)?) => { $crate::Value::Array(vec![ $($done),* ]) };
    // Nested structures and literals first; each arm has a
    // comma-continues and a final form so the separator is consumed.
    ([ $($done:expr),* ] null , $($rest:tt)*) => {
        $crate::json_array!([ $($done,)* $crate::Value::Null ] $($rest)*)
    };
    ([ $($done:expr),* ] null) => {
        $crate::json_array!([ $($done,)* $crate::Value::Null ])
    };
    ([ $($done:expr),* ] [ $($inner:tt)* ] , $($rest:tt)*) => {
        $crate::json_array!([ $($done,)* $crate::json!([ $($inner)* ]) ] $($rest)*)
    };
    ([ $($done:expr),* ] [ $($inner:tt)* ]) => {
        $crate::json_array!([ $($done,)* $crate::json!([ $($inner)* ]) ])
    };
    ([ $($done:expr),* ] { $($inner:tt)* } , $($rest:tt)*) => {
        $crate::json_array!([ $($done,)* $crate::json!({ $($inner)* }) ] $($rest)*)
    };
    ([ $($done:expr),* ] { $($inner:tt)* }) => {
        $crate::json_array!([ $($done,)* $crate::json!({ $($inner)* }) ])
    };
    // Expression element (captures through the next comma).
    ([ $($done:expr),* ] $next:expr , $($rest:tt)*) => {
        $crate::json_array!([ $($done,)* $crate::to_value(&$next) ] $($rest)*)
    };
    ([ $($done:expr),* ] $next:expr) => {
        $crate::json_array!([ $($done,)* $crate::to_value(&$next) ])
    };
}

/// Internal object muncher for [`json!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    // Finished (with optional trailing comma).
    ({ $($key:expr => $val:expr),* } $(,)?) => {{
        #[allow(unused_mut)]
        let mut map = ::std::collections::BTreeMap::new();
        $( map.insert(::std::string::String::from($key), $val); )*
        $crate::Value::Object(map)
    }};
    // key: nested array.
    ({ $($done:expr => $dv:expr),* } $key:tt : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $crate::json_object!(
            { $($done => $dv,)* $key => $crate::json!([ $($inner)* ]) } $($rest)*)
    };
    ({ $($done:expr => $dv:expr),* } $key:tt : [ $($inner:tt)* ]) => {
        $crate::json_object!({ $($done => $dv,)* $key => $crate::json!([ $($inner)* ]) })
    };
    // key: nested object.
    ({ $($done:expr => $dv:expr),* } $key:tt : { $($inner:tt)* } , $($rest:tt)*) => {
        $crate::json_object!(
            { $($done => $dv,)* $key => $crate::json!({ $($inner)* }) } $($rest)*)
    };
    ({ $($done:expr => $dv:expr),* } $key:tt : { $($inner:tt)* }) => {
        $crate::json_object!({ $($done => $dv,)* $key => $crate::json!({ $($inner)* }) })
    };
    // key: null.
    ({ $($done:expr => $dv:expr),* } $key:tt : null , $($rest:tt)*) => {
        $crate::json_object!({ $($done => $dv,)* $key => $crate::Value::Null } $($rest)*)
    };
    ({ $($done:expr => $dv:expr),* } $key:tt : null) => {
        $crate::json_object!({ $($done => $dv,)* $key => $crate::Value::Null })
    };
    // key: expression up to the next comma.
    ({ $($done:expr => $dv:expr),* } $key:tt : $val:expr , $($rest:tt)*) => {
        $crate::json_object!(
            { $($done => $dv,)* $key => $crate::to_value(&$val) } $($rest)*)
    };
    // key: final expression.
    ({ $($done:expr => $dv:expr),* } $key:tt : $val:expr) => {
        $crate::json_object!({ $($done => $dv,)* $key => $crate::to_value(&$val) })
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_nested_values() {
        let series = vec![1.0f64, 2.5];
        let v = json!({
            "name": "fig6",
            "ok": true,
            "none": null,
            "series": series,
            "sum": 1.0 + 2.5,
            "nested": {"a": [1, 2, 3]},
        });
        assert_eq!(v["name"], "fig6");
        assert_eq!(v["sum"], 3.5);
        assert_eq!(v["series"].as_array().unwrap().len(), 2);
        assert_eq!(v["nested"]["a"][2], 3);
        assert!(v["none"].is_null());
        assert!(v["missing"].is_null());
    }

    #[test]
    fn round_trip_parse_emit() {
        let v = json!({"a": 1, "b": [true, null, "x\n"], "c": {"d": -2.5}});
        let s = to_string(&v).unwrap();
        let back = from_str(&s).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn index_mut_inserts() {
        let mut row = json!({"kind": "x"});
        row["gbps"] = json!(12.25);
        assert_eq!(row["gbps"], 12.25);
        assert_eq!(row["kind"], "x");
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(to_string(&json!(64usize)).unwrap(), "64");
        assert_eq!(to_string(&json!(2.5f64)).unwrap(), "2.5");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("{bad}").is_err());
        assert!(from_str("[1, 2").is_err());
        assert!(from_str("1 2").is_err());
    }
}
