//! Vendored, dependency-free subset of the `criterion` API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the slice of `criterion` its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`], [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up, the iteration count
//! is calibrated to the configured measurement time, and the best of a
//! few samples is reported as ns/iter (lowest-noise estimator for a
//! shared machine). Under `cargo test` (no `--bench` flag) every
//! benchmark body runs exactly once as a smoke test, mirroring real
//! criterion's test mode.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, used to derive throughput lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes per iteration (reported in MiB/s or GiB/s).
    Bytes(u64),
    /// Elements per iteration (reported in Melem/s).
    Elements(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`], accepted wherever a benchmark
/// name is expected.
pub trait IntoBenchmarkId {
    /// Converts to the concrete id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self }
    }
}

impl IntoBenchmarkId for &String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self.clone() }
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the calibrated number of iterations and records the
    /// wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver (a small subset of criterion's).
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    measurement_time: Duration,
    samples: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: true,
            filter: None,
            measurement_time: Duration::from_millis(300),
            samples: 3,
        }
    }
}

impl Criterion {
    /// Applies CLI arguments: `--bench` enables full measurement (cargo
    /// bench passes it; cargo test does not), a bare token filters by
    /// substring.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--profile-time" => self.test_mode = false,
                "--test" => self.test_mode = true,
                s if s.starts_with("--") => {
                    // Swallow unknown flags (and a value if present).
                    if !s.contains('=') {
                        let _ = args.next();
                    }
                }
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Sets the target measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Accepted for API compatibility; the shim keys sample count off
    /// measurement time instead.
    #[must_use]
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        self.run_one(&id.name, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    fn run_one<F>(&mut self, name: &str, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("test {name} ... ok");
            return;
        }

        // Calibrate: grow the iteration count until one sample spans a
        // meaningful fraction of the measurement budget.
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= self.measurement_time / 5 || iters >= (1 << 40) {
                break;
            }
            let elapsed_ns = b.elapsed.as_nanos().max(1);
            let target_ns = (self.measurement_time / 5).as_nanos();
            // Overshoot slightly so the loop converges in a few rounds.
            let scaled =
                (u128::from(iters) * target_ns / elapsed_ns + 1).min(u128::from(u64::MAX)) as u64;
            iters = scaled.clamp(iters * 2, iters * 128);
        }

        let mut best_ns_per_iter = f64::INFINITY;
        for _ in 0..self.samples {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            let per = b.elapsed.as_nanos() as f64 / iters as f64;
            if per < best_ns_per_iter {
                best_ns_per_iter = per;
            }
        }

        let thrpt = match throughput {
            Some(Throughput::Bytes(n)) => {
                let gib = n as f64 / best_ns_per_iter * 1e9 / (1024.0 * 1024.0 * 1024.0);
                if gib >= 1.0 {
                    format!("  thrpt: {gib:.3} GiB/s")
                } else {
                    format!("  thrpt: {:.3} MiB/s", gib * 1024.0)
                }
            }
            Some(Throughput::Elements(n)) => {
                format!(
                    "  thrpt: {:.3} Melem/s",
                    n as f64 / best_ns_per_iter * 1e9 / 1e6
                )
            }
            None => String::new(),
        };
        println!(
            "{name:<48} time: {:>12}{thrpt}",
            format_ns(best_ns_per_iter)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility (no-op in the shim).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (no-op in the shim).
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let full = format!("{}/{}", self.name, id.name);
        self.criterion.run_one(&full, self.throughput, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id();
        let full = format!("{}/{}", self.name, id.name);
        self.criterion
            .run_one(&full, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group function invoking each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg.configure_from_args();
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("shim_smoke", |b| b.iter(|| black_box(1u64 + 1)));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Bytes(64));
        g.bench_function("inner", |b| b.iter(|| black_box(2u64 * 3)));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
    }

    #[test]
    fn test_mode_runs_each_once() {
        let mut c = Criterion::default(); // test_mode = true
        target(&mut c);
    }

    #[test]
    fn measured_mode_completes_quickly() {
        let mut c = Criterion {
            test_mode: false,
            filter: None,
            measurement_time: Duration::from_millis(5),
            samples: 1,
        };
        target(&mut c);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            test_mode: false,
            filter: Some("no-such-bench".into()),
            measurement_time: Duration::from_secs(3600),
            samples: 1,
        };
        // Would hang for an hour if the filter failed to skip.
        target(&mut c);
    }
}
